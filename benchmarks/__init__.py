"""Benchmark package: one module per reproduced table/figure/ablation."""
