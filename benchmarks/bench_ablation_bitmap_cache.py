"""**Ablation A** — the MBM bitmap cache (paper section 6.3).

"Since accessing the main memory and fetching the bitmap data for every
write event in the same region is inefficient, we implemented a bitmap
cache in MBM."

This ablation runs the untar workload under word-granularity monitoring
with the bitmap cache enabled vs disabled and reports the MBM's DRAM
bitmap fetches and occupancy.  Expected shape: the cache absorbs the
overwhelming majority of bitmap lookups (events cluster on few slab
pages, i.e. few bitmap words).
"""

from benchmarks.conftest import bench_platform_config, bench_scale, save_result
from repro.analysis.compare import format_table
from repro.core.hypernel import build_hypernel
from repro.security import CredIntegrityMonitor, DentryIntegrityMonitor
from repro.workloads.apps import UntarWorkload


def _run_once(bitmap_cache_enabled: bool):
    system = build_hypernel(
        platform_config=bench_platform_config(),
        monitors=[CredIntegrityMonitor(), DentryIntegrityMonitor()],
        bitmap_cache_enabled=bitmap_cache_enabled,
    )
    shell = system.spawn_init()
    app = UntarWorkload(bench_scale())
    app.prepare(system, shell)
    app.run(system, shell)
    return {
        "events": system.mbm.events_detected,
        "checked": system.mbm.decision.stats.get("checked"),
        "dram_fetches": system.mbm.translator.stats.get("dram_fetches"),
        "busy_cycles": system.mbm.busy_cycles,
        "cache_hits": system.mbm.bitmap_cache.stats.get("hits"),
    }


def test_ablation_bitmap_cache(benchmark):
    results = {}

    def regenerate():
        results["with"] = _run_once(bitmap_cache_enabled=True)
        results["without"] = _run_once(bitmap_cache_enabled=False)
        return results

    benchmark.pedantic(regenerate, rounds=1, iterations=1)
    with_cache, without_cache = results["with"], results["without"]
    rows = [
        ["events detected", with_cache["events"], without_cache["events"]],
        ["write events checked", with_cache["checked"], without_cache["checked"]],
        ["bitmap DRAM fetches", with_cache["dram_fetches"],
         without_cache["dram_fetches"]],
        ["bitmap cache hits", with_cache["cache_hits"],
         without_cache["cache_hits"]],
        ["MBM occupancy (cycles)", with_cache["busy_cycles"],
         without_cache["busy_cycles"]],
    ]
    text = format_table(["metric", "with cache", "without cache"], rows)
    path = save_result("ablation_bitmap_cache", text)
    print("\n" + text)
    print(f"[saved to {path}]")
    fetch_reduction = without_cache["dram_fetches"] / max(1, with_cache["dram_fetches"])
    benchmark.extra_info["dram_fetch_reduction_x"] = round(fetch_reduction, 1)
    # Same detections either way; far less DRAM traffic with the cache.
    assert with_cache["events"] == without_cache["events"]
    assert fetch_reduction > 5.0
    assert with_cache["busy_cycles"] < without_cache["busy_cycles"]
