"""**Ablation B** — 4 KB-page vs 2 MB-section linear map under Hypernel
(paper section 6.2).

"Normally the Linux kernel for AArch64 allocates memory blocks in the
kernel linear region in 2MB sections ... if we directly enforce the
read-only policy on the vanilla kernel, we have to enforce it on each
section containing such page tables, leading to a protection
granularity gap issue.  To prevent this issue, we instead forced the
kernel to allocate memory spaces in 4KB pages."

The ablation runs the same fork+file workload on Hypernel built both
ways and reports runtime plus the number of collateral write faults
Hypersec had to emulate.  Expected shape: the section-mode kernel takes
orders of magnitude more Hypersec interventions and runs far slower —
the reason the paper patched the kernel.
"""

from benchmarks.conftest import bench_platform_config, save_result
from repro.analysis.compare import format_table
from repro.core.hypernel import build_hypernel
from repro.kernel.kernel import KernelConfig


def _drive(system, forks: int = 6, files: int = 20):
    kernel = system.kernel
    init = system.spawn_init()
    kernel.vfs.mkdir_p("/tmp")
    start = system.now
    for index in range(files):
        path = f"/tmp/f{index}"
        kernel.sys.creat(init, path)
        handle = kernel.sys.open(init, path)
        kernel.sys.write(init, handle, 4096)
        kernel.sys.close(init, handle)
    for _ in range(forks):
        child = kernel.sys.fork(init)
        kernel.procs.context_switch(child)
        kernel.sys.exit(child)
        kernel.procs.context_switch(init)
        kernel.sys.wait(init)
    return system.now - start


def test_ablation_linear_map_granularity(benchmark):
    results = {}

    def regenerate():
        for mode in ("page", "section"):
            system = build_hypernel(
                platform_config=bench_platform_config(),
                kernel_config=KernelConfig(linear_map_mode=mode),
                with_mbm=False,
            )
            cycles = _drive(system)
            results[mode] = {
                "cycles": cycles,
                "gap_faults": system.kernel.stats.get("granularity_gap_faults"),
                "emulated_writes": system.hypersec.stats.get("gap_emulated_writes"),
                "gap_sections": len(system.hypersec.gap_sections),
            }
        return results

    benchmark.pedantic(regenerate, rounds=1, iterations=1)
    page, section = results["page"], results["section"]
    rows = [
        ["workload cycles", page["cycles"], section["cycles"]],
        ["collateral write faults", page["gap_faults"], section["gap_faults"]],
        ["Hypersec-emulated writes", page["emulated_writes"],
         section["emulated_writes"]],
        ["read-only 2 MB sections", page["gap_sections"],
         section["gap_sections"]],
    ]
    text = format_table(["metric", "4 KB pages (paper)", "2 MB sections"], rows)
    path = save_result("ablation_granularity", text)
    print("\n" + text)
    print(f"[saved to {path}]")
    slowdown = section["cycles"] / page["cycles"]
    benchmark.extra_info["section_mode_slowdown_x"] = round(slowdown, 2)
    benchmark.extra_info["section_mode_gap_faults"] = section["gap_faults"]
    assert page["gap_faults"] == 0          # exact protection, no gap
    assert section["gap_faults"] > 1000     # the gap is severe
    assert slowdown > 1.5
