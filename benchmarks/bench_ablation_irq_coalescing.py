"""**Ablation D (extension)** — MBM interrupt coalescing.

The paper's MBM raises one interrupt per detection (Figure 4).  Under
event storms (untar with whole-object monitoring) every detection costs
an IRQ take plus an EL1->EL2 service round trip.  This extension lets
the MBM batch N detections per interrupt — events wait safely in the
ring buffer — and measures what that buys.

Expected shape: detection counts are identical (the ring preserves all
events), interrupt counts drop by ~N, and the monitored-run cycle cost
shrinks measurably, at the price of detection latency.
"""

from benchmarks.conftest import bench_platform_config, bench_scale, save_result
from repro.analysis.compare import format_table
from repro.core.hypernel import build_hypernel
from repro.security import WholeObjectMonitor
from repro.workloads.apps import UntarWorkload


def _run(irq_coalesce: int):
    system = build_hypernel(
        platform_config=bench_platform_config(),
        monitors=[WholeObjectMonitor(("cred", "dentry"))],
        irq_coalesce=irq_coalesce,
    )
    shell = system.spawn_init()
    app = UntarWorkload(bench_scale())
    app.prepare(system, shell)
    start = system.now
    app.run(system, shell)
    system.mbm.flush_events()
    return {
        "cycles": system.now - start,
        "events": system.mbm.events_detected,
        "irqs": system.mbm.stats.get("irqs_raised"),
        "dispatched": system.hypersec.stats.get("mbm_events_dispatched"),
    }


def test_ablation_irq_coalescing(benchmark):
    results = {}

    def regenerate():
        for batch in (1, 8, 32):
            results[batch] = _run(batch)
        return results

    benchmark.pedantic(regenerate, rounds=1, iterations=1)
    rows = [
        [f"coalesce={batch}", data["cycles"], data["events"], data["irqs"]]
        for batch, data in results.items()
    ]
    text = format_table(
        ["configuration", "workload cycles", "detections", "interrupts"], rows
    )
    path = save_result("ablation_irq_coalescing", text)
    print("\n" + text)
    print(f"[saved to {path}]")
    base, batched = results[1], results[32]
    benchmark.extra_info["irq_reduction_x"] = round(
        base["irqs"] / max(1, batched["irqs"]), 1
    )
    benchmark.extra_info["cycle_saving_pct"] = round(
        (1 - batched["cycles"] / base["cycles"]) * 100, 2
    )
    # No event is ever lost; interrupts drop roughly by the batch factor.
    for data in results.values():
        assert data["dispatched"] == data["events"]
    assert batched["irqs"] < base["irqs"] / 8
    assert batched["cycles"] < base["cycles"]
