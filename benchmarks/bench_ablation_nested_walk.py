"""**Ablation C** — the cost of nested page-table walks (paper sections
1 and 5.2: nested paging "requires two stages of address translation
for every memory access, obviously consuming extra execution time").

A synthetic pointer-chase sweeps a working set far larger than the TLB,
so every access walks.  We measure cycles per access with one-stage
translation (Native/Hypernel regime) vs two-stage (KVM regime) across
stage-2 TLB sizes, plus the raw descriptor-fetch counts — the
mechanistic source of the KVM column in Table 1.
"""

import random

from benchmarks.conftest import bench_platform_config, save_result
from repro.analysis.compare import format_table
from repro.config import PAGE_BYTES
from repro.hw.platform import Platform
from repro.arch.cpu import CPUCore
from repro.arch.pagetable import KERNEL_VA_BASE
from repro.arch.registers import HCR_VM, SCTLR_M
from tests.helpers import TableBuilder

PAGES = 1024          #: working set (2x the 512-entry stage-1 TLB)
ACCESSES = 3000


def _build_machine(nested: bool, stage2_tlb_entries: int):
    config = bench_platform_config()
    config.stage2_tlb_entries = stage2_tlb_entries
    platform = Platform(config)
    cpu = CPUCore(platform)
    base = config.dram_base
    s1 = TableBuilder(platform, base + 0x100_0000)
    for index in range(PAGES):
        s1.map_page(KERNEL_VA_BASE + index * PAGE_BYTES,
                    base + 0x800_0000 + index * PAGE_BYTES)
    cpu.regs.write("TTBR1_EL1", s1.root)
    cpu.regs.set_bits("SCTLR_EL1", SCTLR_M)
    if nested:
        s2 = TableBuilder(platform, base + 0x400_0000)
        # Identity stage-2 for the tables and the data pages.
        for index in range(0x100_0000 // PAGE_BYTES):
            pa = base + 0x100_0000 + index * PAGE_BYTES
            s2.map_page(pa, pa)
            if index < (PAGES * PAGE_BYTES) // PAGE_BYTES:
                data = base + 0x800_0000 + index * PAGE_BYTES
                s2.map_page(data, data)
        cpu.regs.write("VTTBR_EL2", s2.root)
        cpu.regs.set_bits("HCR_EL2", HCR_VM)
    return platform, cpu


def _chase(cpu, platform, seed: int = 7) -> float:
    rng = random.Random(seed)
    order = [rng.randrange(PAGES) for _ in range(ACCESSES)]
    # Warm the data caches (one line per page fits easily in L2) so the
    # measured loop isolates the *translation* cost: the TLB working set
    # still exceeds the 512-entry TLB, so almost every access walks.
    for page_index in range(PAGES):
        cpu.read(KERNEL_VA_BASE + page_index * PAGE_BYTES + 0x40)
    start = platform.clock.now
    for page_index in order:
        cpu.read(KERNEL_VA_BASE + page_index * PAGE_BYTES + 0x40)
    return (platform.clock.now - start) / ACCESSES


def test_ablation_nested_walk_cost(benchmark):
    results = {}

    def regenerate():
        platform, cpu = _build_machine(nested=False, stage2_tlb_entries=64)
        results["1-stage"] = {
            "cycles_per_access": _chase(cpu, platform),
            "desc_fetches": cpu.mmu.stats.get("stage1_desc_fetches")
            + cpu.mmu.stats.get("stage2_desc_fetches"),
        }
        for s2_entries in (16, 64, 256, 1024):
            platform, cpu = _build_machine(True, s2_entries)
            results[f"2-stage/s2tlb={s2_entries}"] = {
                "cycles_per_access": _chase(cpu, platform),
                "desc_fetches": cpu.mmu.stats.get("stage1_desc_fetches")
                + cpu.mmu.stats.get("stage2_desc_fetches"),
            }
        return results

    benchmark.pedantic(regenerate, rounds=1, iterations=1)
    rows = [
        [name, f"{data['cycles_per_access']:.1f}", data["desc_fetches"]]
        for name, data in results.items()
    ]
    text = format_table(
        ["translation regime", "cycles/access", "descriptor fetches"], rows
    )
    path = save_result("ablation_nested_walk", text)
    print("\n" + text)
    print(f"[saved to {path}]")
    one_stage = results["1-stage"]["cycles_per_access"]
    worst = results["2-stage/s2tlb=16"]["cycles_per_access"]
    best_nested = results["2-stage/s2tlb=1024"]["cycles_per_access"]
    benchmark.extra_info["nested_penalty_small_s2tlb_x"] = round(worst / one_stage, 2)
    benchmark.extra_info["nested_penalty_big_s2tlb_x"] = round(best_nested / one_stage, 2)
    # Shape: nested paging always costs more; a small stage-2 TLB hurts
    # most, and the descriptor-fetch counts expose the 2-stage blow-up.
    assert worst > best_nested >= one_stage * 0.99
    assert worst / one_stage > 1.15
    fetch_ratio = (results["2-stage/s2tlb=16"]["desc_fetches"]
                   / results["1-stage"]["desc_fetches"])
    benchmark.extra_info["desc_fetch_blowup_x"] = round(fetch_ratio, 2)
    assert fetch_ratio > 2.0
