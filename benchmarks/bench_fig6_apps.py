"""Regenerates **Figure 6**: application benchmarks, normalized runtime
on Native / KVM-guest / Hypernel (paper section 7.1.2).

Paper claim reproduced: average overheads of ~13.5% (KVM-guest) vs
~3.1% (Hypernel); compute-bound applications are nearly unaffected
everywhere, while syscall/I/O-heavy ones expose the hypervisor costs.
"""

from benchmarks.conftest import bench_jobs, bench_platform_config, bench_scale, save_result
from repro.analysis.figures import run_figure6


def test_figure6_applications(benchmark):
    result = {}

    def regenerate():
        result["fig6"] = run_figure6(
            scale=bench_scale(), platform_factory=bench_platform_config,
            jobs=bench_jobs(),
        )
        return result["fig6"]

    benchmark.pedantic(regenerate, rounds=1, iterations=1)
    fig6 = result["fig6"]
    text = fig6.format()
    path = save_result("figure6_applications", text)
    print("\n" + text)
    print(f"[saved to {path}]")
    benchmark.extra_info["kvm_avg_overhead_pct"] = round(
        fig6.average_overhead("kvm-guest"), 2
    )
    benchmark.extra_info["hypernel_avg_overhead_pct"] = round(
        fig6.average_overhead("hypernel"), 2
    )
    benchmark.extra_info["paper_kvm_avg_pct"] = 13.5
    benchmark.extra_info["paper_hypernel_avg_pct"] = 3.1
    assert fig6.average_overhead("hypernel") < fig6.average_overhead("kvm-guest")
    for app, row in fig6.normalized.items():
        assert row["hypernel"] <= row["kvm-guest"], app
