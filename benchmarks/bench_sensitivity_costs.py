"""**Sensitivity analysis** — do the paper's conclusions survive the
calibration uncertainty?

DESIGN.md section 5 documents which cost constants are calibrated
rather than architecture-sourced.  This benchmark perturbs the most
influential ones (hypercall round-trip cost, KVM world-switch cost) by
0.5x and 2x and re-measures the fork+exit row of Table 1.  The claim
that must hold across the whole sweep: **Native < Hypernel < KVM**, and
Hypernel's overhead stays below KVM's.  If the reproduction's headline
orderings depended on a lucky constant, this sweep would expose it.
"""

import dataclasses

from benchmarks.conftest import bench_platform_config, save_result
from repro.analysis.compare import format_table
from repro.core.hypernel import build_system
from repro.workloads.lmbench import LmbenchSuite


def _fork_exit_us(system_name: str, mutate) -> float:
    config = bench_platform_config()
    mutate(config.costs)
    kwargs = {"platform_config": config}
    if system_name == "hypernel":
        kwargs["with_mbm"] = False
    if system_name == "kvm-guest":
        kwargs["prepopulate_stage2"] = True
    system = build_system(system_name, **kwargs)
    suite = LmbenchSuite(system, warmup=3, iterations=8)
    suite.setup()
    return suite.run_op("fork+exit").microseconds


def _sweep(mutators):
    results = {}
    for label, mutate in mutators.items():
        results[label] = {
            name: _fork_exit_us(name, mutate)
            for name in ("native", "kvm-guest", "hypernel")
        }
    return results


def test_sensitivity_fork_exit_orderings(benchmark):
    mutators = {
        "baseline": lambda costs: None,
        "hvc x0.5": lambda costs: _scale(costs, "hvc_entry", "hvc_exit", factor=0.5),
        "hvc x2": lambda costs: _scale(costs, "hvc_entry", "hvc_exit", factor=2.0),
        "vmexit x0.5": lambda costs: _scale(costs, "vm_exit", "vm_enter", factor=0.5),
        "vmexit x2": lambda costs: _scale(costs, "vm_exit", "vm_enter", factor=2.0),
        "trap x2": lambda costs: _scale(costs, "trap_entry", "trap_exit", factor=2.0),
    }
    results = {}

    def regenerate():
        results.update(_sweep(mutators))
        return results

    benchmark.pedantic(regenerate, rounds=1, iterations=1)
    rows = []
    ordering_holds = True
    for label, row in results.items():
        native, kvm, hypernel = (row["native"], row["kvm-guest"],
                                 row["hypernel"])
        holds = native < hypernel < kvm
        ordering_holds &= holds
        rows.append([label, f"{native:.1f}", f"{hypernel:.1f}",
                     f"{kvm:.1f}", "yes" if holds else "NO"])
    text = format_table(
        ["perturbation", "native µs", "hypernel µs", "kvm µs",
         "native<HN<KVM"],
        rows,
    )
    path = save_result("sensitivity_costs", text)
    print("\n" + text)
    print(f"[saved to {path}]")
    benchmark.extra_info["ordering_holds_everywhere"] = ordering_holds
    assert ordering_holds, text


def _scale(costs, *field_names, factor):
    for name in field_names:
        setattr(costs, name, int(getattr(costs, name) * factor))


# Keep dataclasses import meaningful for potential future field checks.
assert dataclasses.is_dataclass(type(bench_platform_config().costs))
