"""Simulation wall-clock speed benchmark (opt-in: ``-m simspeed``).

Unlike the other benchmarks in this directory, which regenerate the
paper's tables and figures on the *simulated* clock, this one measures
the engine itself: simulated accesses per wall-clock second on the
``repro.tools.perf`` workloads, gated against the committed
``BENCH_simspeed.json`` baseline.

Run::

    PYTHONPATH=src python -m pytest benchmarks/bench_simspeed.py -m simspeed -s

The marker keeps it out of tier-1 runs (wall-clock assertions are
machine sensitive); the determinism assertions, however, are exact.
"""

import pathlib
import tempfile
import time

import pytest

from benchmarks.conftest import save_result
from repro.tools import perf

pytestmark = pytest.mark.simspeed

BASELINE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_simspeed.json"


def test_simspeed_vs_baseline():
    results = perf.run_simspeed(repeats=3)
    text = perf.format_report(results)
    path = save_result("simspeed", text)
    print("\n" + text)
    print(f"[saved to {path}]")
    assert BASELINE.exists(), (
        "no committed baseline; run "
        "`PYTHONPATH=src python scripts/check_simspeed.py --update`"
    )
    baseline = perf.load_report(str(BASELINE))
    failures = perf.compare_to_baseline(
        perf.report_as_dict(results), baseline
    )
    assert not failures, "\n".join(failures)


def test_snapshot_roundtrip_speed():
    """Wall-clock cost of save/restore, plus the exact replay contract.

    The timings are informational (machine sensitive); the assertions —
    a restored machine replays a workload cycle-for-cycle against the
    one it was captured from — are exact.
    """
    from repro.core.hypernel import build_system
    from repro.state import restore_system, save_snapshot
    from repro.workloads.lmbench import LmbenchSuite

    lines = []
    with tempfile.TemporaryDirectory(prefix="repro-snapbench-") as tmp:
        for name, kwargs in [
            ("native", {}),
            ("hypernel", {"with_mbm": False}),
        ]:
            path = pathlib.Path(tmp) / f"{name}.snap"
            cold = build_system(name, **kwargs)
            start = time.perf_counter()
            save_snapshot(cold, path)
            save_s = time.perf_counter() - start
            start = time.perf_counter()
            warm = restore_system(path)
            restore_s = time.perf_counter() - start
            for system in (cold, warm):
                suite = LmbenchSuite(system, warmup=1, iterations=2)
                suite.setup()
                suite.run_op("fork+execv")
            assert warm.platform.clock.now == cold.platform.clock.now
            assert perf.count_accesses(warm) == perf.count_accesses(cold)
            lines.append(
                f"{name:10s} save {save_s:6.3f}s  restore {restore_s:6.3f}s "
                f"({path.stat().st_size >> 10} KB on disk)"
            )
    text = "\n".join(lines)
    path = save_result("simspeed_snapshot", text)
    print("\n" + text)
    print(f"[saved to {path}]")
