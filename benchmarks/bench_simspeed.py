"""Simulation wall-clock speed benchmark (opt-in: ``-m simspeed``).

Unlike the other benchmarks in this directory, which regenerate the
paper's tables and figures on the *simulated* clock, this one measures
the engine itself: simulated accesses per wall-clock second on the
``repro.tools.perf`` workloads, gated against the committed
``BENCH_simspeed.json`` baseline.

Run::

    PYTHONPATH=src python -m pytest benchmarks/bench_simspeed.py -m simspeed -s

The marker keeps it out of tier-1 runs (wall-clock assertions are
machine sensitive); the determinism assertions, however, are exact.
"""

import pathlib

import pytest

from benchmarks.conftest import save_result
from repro.tools import perf

pytestmark = pytest.mark.simspeed

BASELINE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_simspeed.json"


def test_simspeed_vs_baseline():
    results = perf.run_simspeed(repeats=3)
    text = perf.format_report(results)
    path = save_result("simspeed", text)
    print("\n" + text)
    print(f"[saved to {path}]")
    assert BASELINE.exists(), (
        "no committed baseline; run "
        "`PYTHONPATH=src python scripts/check_simspeed.py --update`"
    )
    baseline = perf.load_report(str(BASELINE))
    failures = perf.compare_to_baseline(
        perf.report_as_dict(results), baseline
    )
    assert not failures, "\n".join(failures)
