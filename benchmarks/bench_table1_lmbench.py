"""Regenerates **Table 1**: LMbench kernel-operation latencies (µs) on
Native / KVM-guest / Hypernel (paper section 7.1.1).

Paper claim reproduced: both hypervisor-class systems slow kernel
operations; Hypernel's average overhead is roughly half of KVM's
(paper: +8.8% vs +15.5%), with the page-table-heavy fork family showing
the largest absolute deltas.
"""

from benchmarks.conftest import bench_jobs, bench_platform_config, save_result
from repro.analysis.tables import run_table1


def test_table1_lmbench(benchmark):
    result = {}

    def regenerate():
        result["table1"] = run_table1(
            platform_factory=bench_platform_config,
            warmup=4,
            iterations=12,
            jobs=bench_jobs(),
        )
        return result["table1"]

    benchmark.pedantic(regenerate, rounds=1, iterations=1)
    table1 = result["table1"]
    text = table1.format()
    path = save_result("table1_lmbench", text)
    print("\n" + text)
    print(f"[saved to {path}]")
    benchmark.extra_info["kvm_avg_overhead_pct"] = round(
        table1.average_overhead("kvm-guest"), 2
    )
    benchmark.extra_info["hypernel_avg_overhead_pct"] = round(
        table1.average_overhead("hypernel"), 2
    )
    benchmark.extra_info["paper_kvm_avg_pct"] = 15.5
    benchmark.extra_info["paper_hypernel_avg_pct"] = 8.8
    # Shape assertions (who wins, roughly by what factor).
    assert 0 < table1.average_overhead("hypernel") < table1.average_overhead("kvm-guest")
    for op in ("fork+exit", "fork+execv"):
        row = table1.rows[op]
        assert row["native"] < row["hypernel"] < row["kvm-guest"]
