"""Regenerates **Table 2**: MBM trap counts under word- vs
page-granularity monitoring of cred/dentry objects (paper section 7.2).

Paper claim reproduced: monitoring only the sensitive words suppresses
the overwhelming majority of trap events — single-digit-percent ratios
per application (paper: 4.4%-9.2%, 6.2% overall).

Counts scale linearly with the workload scale (the test suite asserts
ratio scale-invariance); the paper's absolute untar count (2.17M) would
correspond to extracting a much larger tree than the default scaled run.
"""

from benchmarks.conftest import bench_jobs, bench_platform_config, bench_scale, save_result
from repro.analysis.monitoring import run_table2


def test_table2_monitoring_granularity(benchmark):
    result = {}

    def regenerate():
        result["table2"] = run_table2(
            scale=bench_scale(), platform_factory=bench_platform_config,
            jobs=bench_jobs(),
        )
        return result["table2"]

    benchmark.pedantic(regenerate, rounds=1, iterations=1)
    table2 = result["table2"]
    text = table2.format()
    path = save_result("table2_monitoring", text)
    print("\n" + text)
    print(f"[saved to {path}]")
    benchmark.extra_info["overall_word_page_ratio_pct"] = round(
        table2.mean_ratio_percent(), 2
    )
    benchmark.extra_info["paper_overall_ratio_pct"] = 6.2
    for app in table2.counts:
        benchmark.extra_info[f"{app}_ratio_pct"] = round(
            table2.ratio_percent(app), 2
        )
    for app, row in table2.counts.items():
        assert 0 < row["word"] < row["page"], app
    assert table2.mean_ratio_percent() < 15.0
