"""Shared benchmark configuration.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — application-workload scale factor (default
  0.25; 1.0 approximates the paper's full runs but takes minutes).
* ``REPRO_BENCH_DRAM_MB`` — simulated DRAM size (default 192 MB; the
  paper's performance platform had 2 GB, which only slows boot here).
* ``REPRO_BENCH_JOBS`` — worker processes for independent experiment
  cells (default 1 = serial; the table/figure benchmarks fan their
  per-system cells out over ``repro.tools.runner``).
* ``REPRO_BENCH_BACKEND`` — cell execution backend
  (``auto``/``forkserver``/``pool``/``serial``).  Resolved inside
  ``run_cells`` itself, overriding whatever backend the caller pinned —
  including the per-workload pins in ``repro.tools.perf`` — so one
  variable switches the whole benchmark fleet (CI uses ``pool`` to
  exercise the fork-server fallback path).

Each benchmark regenerates one table/figure, writes the formatted
result to ``benchmarks/results/`` and attaches the headline numbers to
pytest-benchmark's ``extra_info``.
"""

import os
import pathlib

import pytest

from repro.config import PlatformConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))


def bench_jobs() -> int:
    return int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def bench_platform_config() -> PlatformConfig:
    dram_mb = int(os.environ.get("REPRO_BENCH_DRAM_MB", "192"))
    return PlatformConfig(
        dram_bytes=dram_mb * 1024 * 1024,
        secure_bytes=max(16, dram_mb // 8) * 1024 * 1024,
    )


def save_result(name: str, text: str) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


@pytest.fixture
def platform_factory():
    return bench_platform_config
