#!/usr/bin/env python3
"""ATRA: why a bus monitor alone is not enough (paper sections 2, 5.3).

The Address Translation Redirection Attack (Jang et al., CCS'14)
relocates the kernel's *mapping* of a monitored object: the external
monitor keeps watching the stale physical frame while the kernel uses
an attacker-controlled copy.  This example mounts ATRA against

1. a stand-alone external bus monitor (KI-Mon-like, no Hypersec) —
   the attack succeeds and the monitor's shadow state goes stale;
2. Hypernel — the page-table redirect itself is refused, because
   Hypersec mediates every kernel page-table write.

Run:  python examples/atra_attack.py
"""

from repro import (
    CredIntegrityMonitor,
    ExternalOnlyMonitor,
    KernelConfig,
    MemoryBusMonitor,
    PlatformConfig,
    build_hypernel,
    build_native,
)
from repro.attacks import AtraAttack
from repro.config import PAGE_BYTES
from repro.kernel.objects import CRED
from repro.arch.pagetable import DESC_NC
from repro.utils.bitops import align_down


def small_config() -> PlatformConfig:
    return PlatformConfig(
        dram_bytes=128 * 1024 * 1024, secure_bytes=16 * 1024 * 1024
    )


def make_victim(system):
    kernel = system.kernel
    init = system.spawn_init()
    victim = kernel.sys.fork(init)
    kernel.procs.context_switch(victim)
    kernel.sys.setuid(victim, 1000)
    return victim


def main() -> None:
    print("=== scenario 1: stand-alone external bus monitor ===\n")
    system = build_native(
        platform_config=small_config(),
        kernel_config=KernelConfig(linear_map_mode="page"),
    )
    mbm = MemoryBusMonitor(system.platform, raise_interrupts=False)
    mbm.attach()
    system.mbm = mbm
    victim = make_victim(system)

    monitor = ExternalOnlyMonitor(mbm)
    for base, size in CRED.sensitive_ranges(victim.cred_pa):
        monitor.watch_range(base, size)
    # Boot-time integration: the watched page is uncacheable so the
    # monitor sees bus traffic (external monitors need this too).
    page = align_down(victim.cred_pa, PAGE_BYTES)
    desc_addr, _ = system.kernel.linear_map.leaf_desc_addr(page)
    system.platform.bus.poke(
        desc_addr, system.platform.bus.peek(desc_addr) | DESC_NC
    )
    system.cpu.tlbi_all()
    print(f"external monitor armed on victim cred at PA {victim.cred_pa:#x} "
          f"(uid=1000)")

    outcome = AtraAttack().mount(system, victim)
    monitor.poll()
    uid_pa = victim.cred_pa + CRED.field("uid").byte_offset
    kernel_uid = system.kernel.cpu.read(
        system.kernel.linear_map.kva(uid_pa)
    )
    print("ATRA mounted:")
    for note in outcome.notes:
        print(f"  - {note}")
    print(f"  kernel now sees uid = {kernel_uid} (root!)")
    print(f"  monitor alerts: {len(monitor.alerts)}")
    print(f"  monitor still believes uid = {monitor.shadow_value(uid_pa)}")
    assert outcome.succeeded and not monitor.alerts
    print("  => the external monitor was BYPASSED\n")

    print("=== scenario 2: the same attack under Hypernel ===\n")
    hypernel = build_hypernel(
        platform_config=small_config(),
        monitors=[CredIntegrityMonitor()],
    )
    victim = make_victim(hypernel)
    outcome = AtraAttack().mount(hypernel, victim)
    print("ATRA mounted:")
    for note in outcome.notes:
        print(f"  - {note}")
    print(f"  Hypersec alerts: "
          f"{hypernel.hypersec.stats.get('alert.atra_remap')} (atra_remap)")
    assert outcome.blocked and not outcome.succeeded
    print("  => the redirect was REFUSED: Hypersec sees the processor "
          "state external monitors cannot.")


if __name__ == "__main__":
    main()
