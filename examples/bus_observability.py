#!/usr/bin/env python3
"""Observability walkthrough: trace the bus, then audit the machine.

Uses the developer tooling that ships with the reproduction:

* :class:`repro.tools.BusTracer` — a logic-analyzer view of exactly the
  transactions an exploit generated (the MBM's perspective);
* ``Hypersec.audit()`` — verifies every Hypernel security invariant
  against live machine state (real table walks, real bitmap words).

Run:  python examples/bus_observability.py
"""

from repro import (
    CredIntegrityMonitor,
    PlatformConfig,
    build_hypernel,
)
from repro.hw.bus import TxnKind
from repro.kernel.objects import CRED
from repro.tools import BusTracer


def main() -> None:
    system = build_hypernel(
        platform_config=PlatformConfig(
            dram_bytes=128 * 1024 * 1024, secure_bytes=16 * 1024 * 1024
        ),
        monitors=[CredIntegrityMonitor()],
    )
    kernel = system.kernel
    init = system.spawn_init()
    kernel.sys.setuid(init, 1000)

    print("=== tracing the victim cred's bus traffic ===\n")
    tracer = BusTracer(
        system.platform,
        base=init.cred_pa,
        size=CRED.size_bytes,
        kinds=[TxnKind.WRITE],
    )
    with tracer:
        # Benign: a fork reads the parent cred and blips its refcount.
        child = kernel.sys.fork(init)
        kernel.procs.context_switch(child)
        kernel.sys.exit(child)
        kernel.procs.context_switch(init)
        kernel.sys.wait(init)
        # Hostile: the exploit's single store.
        euid_pa = init.cred_pa + CRED.field("euid").byte_offset
        kernel.cpu.write(kernel.linear_map.kva(euid_pa), 0)

    print(tracer.to_text())
    print("\ntrace summary:", tracer.summary())
    hostile = tracer.writes_to(euid_pa)
    print(f"\nwrites to euid word: {len(hostile)} "
          f"(value {hostile[-1].value} <- the exploit)")

    print("\n=== monitor verdict ===")
    app = system.monitor_by_name("cred_monitor")
    for alert in app.alerts:
        print(f"  ALERT: {alert.reason} at {alert.addr:#x}")
    assert app.alerts

    print("\n=== machine-state audit ===")
    report = system.hypersec.audit()
    print(report)
    assert report.clean  # detection apps flag writes; invariants held


if __name__ == "__main__":
    main()
