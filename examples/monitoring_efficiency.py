#!/usr/bin/env python3
"""Reproduce the kernel-monitoring efficiency result (paper Table 2).

Runs the five applications twice on a monitored Hypernel system:

* word granularity — the cred/dentry monitors register only sensitive
  fields (Hypernel's MBM capability);
* page granularity (estimated) — whole objects are registered, counting
  the traps a conventional page-protection framework would take.

The ratio is the paper's headline monitoring result (~6% overall).

Run:  python examples/monitoring_efficiency.py [--scale 0.25]
"""

import argparse

from repro.config import PlatformConfig
from repro.analysis.monitoring import run_table2


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--dram-mb", type=int, default=128)
    args = parser.parse_args()

    def platform_factory() -> PlatformConfig:
        return PlatformConfig(
            dram_bytes=args.dram_mb * 1024 * 1024,
            secure_bytes=max(16, args.dram_mb // 8) * 1024 * 1024,
        )

    print("=== Table 2: trap counts, page- vs word-granularity ===\n")
    table2 = run_table2(scale=args.scale, platform_factory=platform_factory)
    print(table2.format())
    print()
    for app in table2.counts:
        ratio = table2.ratio_percent(app)
        bar = "#" * max(1, int(ratio))
        print(f"{app:>10s} |{bar:<30s} {ratio:4.1f}% of page-granularity traps")
    print("\n(counts scale with --scale; the ratios do not — that is the")
    print(" paper's point: the MBM's word granularity removes the noise.)")


if __name__ == "__main__":
    main()
