#!/usr/bin/env python3
"""Reproduce the performance evaluation (paper Table 1 and Figure 6).

Runs the LMbench micro-operations and the five application benchmarks on
all three system configurations and prints the tables next to the
paper's numbers.

Run:  python examples/performance_comparison.py [--scale 0.25] [--dram-mb 192]
"""

import argparse

from repro.config import PlatformConfig
from repro.analysis.figures import run_figure6
from repro.analysis.tables import run_table1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25,
                        help="application workload scale (1.0 = full)")
    parser.add_argument("--dram-mb", type=int, default=192,
                        help="simulated DRAM size in MB")
    parser.add_argument("--skip-apps", action="store_true",
                        help="run only Table 1 (faster)")
    args = parser.parse_args()

    def platform_factory() -> PlatformConfig:
        return PlatformConfig(
            dram_bytes=args.dram_mb * 1024 * 1024,
            secure_bytes=max(16, args.dram_mb // 8) * 1024 * 1024,
        )

    print("=== Table 1: LMbench kernel operations (µs) ===\n")
    table1 = run_table1(platform_factory=platform_factory)
    print(table1.format())

    if not args.skip_apps:
        print("\n\n=== Figure 6: application benchmarks (normalized) ===\n")
        fig6 = run_figure6(scale=args.scale, platform_factory=platform_factory)
        print(fig6.format())


if __name__ == "__main__":
    main()
