#!/usr/bin/env python3
"""Quickstart: build a Hypernel-protected machine and watch it work.

Builds the full stack — simulated Juno-like platform, Linux-like kernel,
Hypersec at EL2, the MBM on the memory bus, and a credential-integrity
monitor — then:

1. runs a small benign workload (no alerts),
2. performs a legitimate setuid (announced: no alerts),
3. simulates a kernel exploit writing the cred directly (alert!).

Run:  python examples/quickstart.py
"""

from repro import (
    CredIntegrityMonitor,
    PlatformConfig,
    build_hypernel,
)
from repro.kernel.objects import CRED


def main() -> None:
    print("=== Hypernel quickstart ===\n")
    system = build_hypernel(
        platform_config=PlatformConfig(
            dram_bytes=128 * 1024 * 1024, secure_bytes=16 * 1024 * 1024
        ),
        monitors=[CredIntegrityMonitor()],
    )
    kernel = system.kernel
    print(f"built {system.name!r}: Hypersec at EL2, MBM on the bus,")
    print(f"  TVM trapping: {system.cpu.regs.tvm_enabled}")
    print(f"  nested paging: {system.cpu.regs.stage2_enabled}  <- the point\n")

    init = system.spawn_init()
    monitor = system.monitor_by_name("cred_monitor")
    print(f"init spawned (pid {init.pid}); its cred's sensitive words are")
    print(f"  now monitored at word granularity "
          f"({system.hypersec.monitored_word_count()} words registered)\n")

    # 1. Benign kernel activity.
    kernel.vfs.mkdir_p("/home/user")
    kernel.sys.creat(init, "/home/user/notes.txt")
    handle = kernel.sys.open(init, "/home/user/notes.txt")
    kernel.sys.write(init, handle, 4096)
    kernel.sys.close(init, handle)
    child = kernel.sys.fork(init)
    kernel.procs.context_switch(child)
    kernel.sys.exit(child)
    kernel.procs.context_switch(init)
    kernel.sys.wait(init)
    print(f"benign workload done: {monitor.event_count} MBM events seen, "
          f"{len(monitor.alerts)} alerts")

    # 2. A legitimate, announced credential change.
    kernel.sys.setuid(init, 1000)
    print(f"setuid(1000) done:    {monitor.event_count} events, "
          f"{len(monitor.alerts)} alerts (announced update)")

    # 3. The exploit: an arbitrary kernel write sets euid back to root.
    euid_kva = kernel.linear_map.kva(
        init.cred_pa + CRED.field("euid").byte_offset
    )
    kernel.cpu.write(euid_kva, 0)
    print(f"exploit write done:   {monitor.event_count} events, "
          f"{len(monitor.alerts)} alerts")
    for alert in monitor.alerts:
        print(f"  ALERT: {alert.reason} at {alert.addr:#x} "
              f"(observed {alert.observed}, expected {alert.expected})")

    print("\nsystem counters:", system.stats_summary())
    assert monitor.alerts, "the exploit should have been detected"
    print("\nOK: the unauthorized credential change was detected.")


if __name__ == "__main__":
    main()
