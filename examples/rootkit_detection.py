#!/usr/bin/env python3
"""Rootkit scenario: the same attacks on an unprotected kernel vs Hypernel.

Story (paper sections 4, 5.3 and footnote 2): an attacker with a kernel
arbitrary-write exploit (a) elevates a process to root by rewriting its
``cred`` and (b) hijacks ``/etc/passwd``'s dentry to point at a rogue
inode.  On a native kernel both succeed silently; under Hypernel the
MBM observes every monitored-word write and the security applications
flag both within the very write that performed them.  The attacker then
escalates to the translation machinery — and Hypersec blocks that
outright.

Run:  python examples/rootkit_detection.py
"""

from repro import (
    CredIntegrityMonitor,
    DentryIntegrityMonitor,
    KernelConfig,
    PlatformConfig,
    build_hypernel,
    build_native,
)
from repro.attacks import (
    CredEscalationAttack,
    DentryHijackAttack,
    MmuDisableAttack,
    PageTableTamperAttack,
    TtbrSwitchAttack,
)


def small_config() -> PlatformConfig:
    return PlatformConfig(
        dram_bytes=128 * 1024 * 1024, secure_bytes=16 * 1024 * 1024
    )


def make_victim(system):
    kernel = system.kernel
    init = system.spawn_init()
    victim = kernel.sys.fork(init)
    kernel.procs.context_switch(victim)
    kernel.sys.setuid(victim, 1000)  # an ordinary unprivileged daemon
    kernel.vfs.mkdir_p("/etc")
    kernel.sys.creat(victim, "/etc/passwd")
    return victim


def mount_all(system, victim):
    outcomes = [
        CredEscalationAttack().mount(system, victim),
        DentryHijackAttack().mount(system, "/etc/passwd"),
        PageTableTamperAttack().mount(system),
        TtbrSwitchAttack().mount(system),
        MmuDisableAttack().mount(system),
    ]
    for outcome in outcomes:
        verdict = ("BLOCKED" if outcome.blocked
                   else "detected" if outcome.detected
                   else "SILENT SUCCESS")
        print(f"  {outcome.attack:18s} -> {verdict:15s} "
              f"({'; '.join(outcome.notes)})")
    return outcomes


def main() -> None:
    print("=== unprotected native kernel ===")
    native = build_native(
        platform_config=small_config(),
        kernel_config=KernelConfig(linear_map_mode="page"),
    )
    victim = make_victim(native)
    native_outcomes = mount_all(native, victim)

    print("\n=== the same kernel under Hypernel ===")
    hypernel = build_hypernel(
        platform_config=small_config(),
        monitors=[CredIntegrityMonitor(), DentryIntegrityMonitor()],
    )
    victim = make_victim(hypernel)
    hypernel_outcomes = mount_all(hypernel, victim)

    print("\nmonitor alerts under Hypernel:")
    for app in hypernel.monitors:
        for alert in app.alerts:
            print(f"  [{app.name}] {alert.reason} at {alert.addr:#x}")

    assert all(o.succeeded and not o.detected for o in native_outcomes)
    assert all(o.detected or o.blocked for o in hypernel_outcomes)
    print("\nOK: every attack was silent on native, caught under Hypernel.")


if __name__ == "__main__":
    main()
