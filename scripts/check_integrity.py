#!/usr/bin/env python3
"""Zero-loss integrity gate.

Runs one small Table 1 cell sweep with run-integrity enforcement turned
on (``repro.obs``): the run fails loudly (exit 1) if any cell's MBM
pipeline lost events — FIFO overrun, capture drops, ring overflow — or
recorded a write-back hazard.  A lossy monitoring pipeline silently
undercounts Table 2 and skews the paper's overhead numbers, so CI
treats loss as a hard failure, not a statistic.

The sweep runs on *both* execution backends (serial in-process and the
fork-server/pool fan-out) to prove the enforcement point in
``run_cells`` covers every dispatch path, including cached payloads and
the fork-server's early-return path.

With ``--jsonl PATH`` the gate instead replays over a file of streamed
metrics records (one ``{"label": ..., "metrics": {...}}`` object per
line, as written by ``scripts/check_service.py`` from a ``repro serve``
job): every record's integrity checks must pass, and the file must not
be vacuous.  This is how CI proves the daemon streams the same
enforceable metrics the in-process runner does.

Usage::

    PYTHONPATH=src python scripts/check_integrity.py           # gate
    PYTHONPATH=src python scripts/check_integrity.py --ops null-call
    PYTHONPATH=src python scripts/check_integrity.py --jsonl streamed.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.monitoring import run_table2
from repro.analysis.tables import run_table1
from repro.config import PlatformConfig
from repro.errors import IntegrityError
from repro.obs import verify_payload_integrity


def gate_jsonl(path: str, waive: tuple = ()) -> int:
    """Gate a file of streamed metrics records (see module docstring)."""
    labels = []
    payloads = []
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                print(f"FAIL: {path}:{line_no}: not JSON: {exc}")
                return 1
            labels.append(str(record.get("label", f"record{line_no}")))
            payloads.append({"metrics": record.get("metrics") or {}})
    checked = sum(
        len(payload["metrics"].get("checks", [])) for payload in payloads
    )
    if not checked:
        print(f"FAIL: {path}: gate is vacuous — no record carries "
              f"integrity checks")
        return 1
    try:
        verify_payload_integrity(labels, payloads, waive=waive)
    except IntegrityError as exc:
        print(f"INTEGRITY FAILURE: {exc}")
        return 1
    print(f"integrity ok — {checked} checks across {len(labels)} streamed "
          f"record(s): {', '.join(labels)}")
    return 0


def small_platform() -> PlatformConfig:
    return PlatformConfig(
        dram_bytes=64 * 1024 * 1024, secure_bytes=8 * 1024 * 1024
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--ops", nargs="+", default=["syscall stat", "signal install"],
        help="LMbench ops for the gate cell (default: a fast pair)",
    )
    parser.add_argument("--warmup", type=int, default=1)
    parser.add_argument("--iterations", type=int, default=2)
    parser.add_argument(
        "--scale", type=float, default=0.02,
        help="workload scale for the monitored (table2) leg",
    )
    parser.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="gate a file of streamed metrics records instead of "
        "running the sweep (one {label, metrics} object per line)",
    )
    parser.add_argument(
        "--waive", action="append", default=[], metavar="CHECK",
        help="accept a named integrity check; repeatable",
    )
    args = parser.parse_args(argv)

    if args.jsonl:
        return gate_jsonl(args.jsonl, waive=tuple(args.waive))

    failures = 0
    for backend in ("serial", "auto"):
        label = "serial" if backend == "serial" else "fan-out"
        jobs = 1 if backend == "serial" else 2
        try:
            table1 = run_table1(
                platform_factory=small_platform,
                ops=args.ops,
                warmup=args.warmup,
                iterations=args.iterations,
                jobs=jobs,
                backend=backend,
                enforce_integrity=True,
            )
            # Table 1 runs Hypersec-only (no MBM), so its checks are
            # vacuous; the table2 leg drives the full MBM pipeline and
            # is the part of the gate that can actually trip.
            table2 = run_table2(
                scale=args.scale,
                platform_factory=small_platform,
                jobs=jobs,
                backend=backend,
                enforce_integrity=True,
            )
        except IntegrityError as exc:
            print(f"[{label}] INTEGRITY FAILURE: {exc}")
            failures += 1
            continue
        checked = 0
        for result in (table1, table2):
            for environment, data in sorted(result.health.items()):
                checks = data.get("checks", [])
                checked += len(checks)
                if checks:
                    detail = ", ".join(
                        f"{c['component']}.{c['counter']}={c['value']}"
                        for c in checks
                    )
                    print(f"  [{label}] {environment}: {detail}")
        if not checked:
            print(f"[{label}] gate is vacuous: no cell reported "
                  f"integrity checks")
            failures += 1
            continue
        cells = ", ".join(
            sorted(set(table1.health) | set(table2.health))
        )
        print(f"[{label}] integrity ok — zero event loss across: {cells}")

        # Macro-op memoizer counters (repro.tools.macroops): every
        # replayed cycle must have passed its constructive integrity
        # check — a hit without a recorded check would mean effects
        # were applied unverified.
        memo = {"hits": 0, "misses": 0, "integrity_checks": 0,
                "replay_divergence": 0, "replayed_sim_cycles": 0}
        seen = False
        for result in (table1, table2):
            for data in result.health.values():
                counters = data.get("components", {}).get("macroops")
                if counters is None:
                    continue
                seen = True
                for key in memo:
                    memo[key] += counters.get(key, 0)
        if seen:
            print(f"  [{label}] macroops: " + ", ".join(
                f"{key}={value}" for key, value in memo.items()
            ))
            if memo["hits"] > 0 and memo["integrity_checks"] == 0:
                print(f"[{label}] INTEGRITY FAILURE: macro-op replays "
                      f"occurred without a single constructive "
                      f"integrity check")
                failures += 1
            if memo["replay_divergence"] > memo["integrity_checks"]:
                print(f"[{label}] INTEGRITY FAILURE: more replay "
                      f"divergences than checks recorded — the memoizer's "
                      f"accounting is inconsistent")
                failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
