#!/usr/bin/env python3
"""Service smoke gate: daemon round trip, warm pools, streamed metrics.

Boots a real ``python -m repro serve`` daemon on a private socket and
drives it the way a tenant would, gating the ``repro.service``
contract (DESIGN.md §5g):

1. a small Table 1 batch submitted through ``reproctl``'s client path
   returns payloads **byte-identical** to a local serial ``run_cells``
   run, and the merged table renders identically;
2. a second batch on the same environments rides the **warm pool**:
   its per-job pool accounting must show zero cold boots (skipped when
   the platform cannot fork — the daemon runs serially there);
3. the streamed per-cell metrics are written as JSONL for
   ``scripts/check_integrity.py --jsonl`` — CI chains the two so the
   daemon provably streams the same enforceable integrity evidence the
   in-process runner produces;
4. SIGTERM drains cleanly: exit code 0, socket unlinked.

With ``--fabric`` (the default; ``--no-fabric`` skips) the shard-fabric
phases (DESIGN.md §5h) follow:

5. a sharded table1+table2 grid (table1 cells adaptively split into
   per-op subcells) run on a **2-shard local fabric** returns payloads
   byte-identical to a serial ``run_cells`` run, and the merged table
   renders identically to the unsplit serial table;
6. the 2-shard run is at least ``--min-fabric-speedup`` (default 1.5x,
   env ``REPRO_MIN_FABRIC_SPEEDUP``) faster than the same grid through
   a **single daemon** — gated on hosts with >= 4 cores, report-only on
   smaller hosts (a 1-core machine cannot exhibit the speedup);
7. SIGKILLing one shard mid-batch still completes the batch
   byte-identically (dead-shard detection requeues its cells onto the
   survivor), and after the coordinator drains, this process has **zero
   leaked children** (verified via /proc) — every spawned daemon was
   reaped.

The fabric-run monitored payloads are appended to the ``--jsonl`` file,
so the integrity gate also covers payloads that crossed shard sockets.

Usage::

    PYTHONPATH=src python scripts/check_service.py
    PYTHONPATH=src python scripts/check_service.py --jsonl streamed.jsonl
    PYTHONPATH=src python scripts/check_integrity.py --jsonl streamed.jsonl
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import threading
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.monitoring import table2_cells  # noqa: E402
from repro.analysis.tables import merge_table1, table1_cells  # noqa: E402
from repro.config import PlatformConfig  # noqa: E402
from repro.service.client import ReproServiceClient  # noqa: E402
from repro.tools import forkserver  # noqa: E402
from repro.tools.runner import run_cells  # noqa: E402

GATE_OPS = ["syscall stat", "signal install"]

#: The fabric speedup gate only binds where the parallelism can exist.
SPEEDUP_GATE_MIN_CORES = 4

#: How many times the kill-one-shard phase may retry until the SIGKILL
#: provably lands mid-batch (timing is host-dependent).
KILL_ATTEMPTS = 3


def small_platform() -> PlatformConfig:
    return PlatformConfig(
        dram_bytes=64 * 1024 * 1024, secure_bytes=8 * 1024 * 1024
    )


def boot_daemon(socket_path: str, cache_dir: str) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"),
               REPRO_CACHE_DIR=cache_dir)
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", socket_path,
         "--jobs", "2"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, cwd=str(REPO_ROOT),
    )
    deadline = time.monotonic() + 30
    while not os.path.exists(socket_path):
        if daemon.poll() is not None:
            print(daemon.communicate()[0])
            raise SystemExit("FAIL: daemon exited before binding")
        if time.monotonic() > deadline:
            daemon.kill()
            raise SystemExit("FAIL: daemon never bound its socket")
        time.sleep(0.1)
    return daemon


def live_children():
    """PIDs of this process's direct children, via /proc.

    Returns None where procfs is unavailable (the leak check is then
    skipped rather than guessed at).
    """
    pids = set()
    try:
        for task in os.listdir("/proc/self/task"):
            with open(f"/proc/self/task/{task}/children",
                      encoding="ascii") as handle:
                pids.update(int(pid) for pid in handle.read().split())
    except OSError:
        return None
    return pids


def timed_fabric_run(grid, shards, socket_dir, label):
    """Run ``grid`` on a fresh ``shards``-wide fabric; time the batch.

    The coordinator is spawned cache-less so the single-daemon and
    2-shard timings compare pure execution, not cache luck.
    """
    from repro.service import fabric

    config = fabric.FabricConfig(shards=shards, jobs=2, no_cache=True,
                                 socket_dir=socket_dir)
    coordinator = fabric.FabricCoordinator(config)
    try:
        coordinator.start()
        started = time.monotonic()
        payloads = coordinator.run_cells(grid, label=label)
        wall = time.monotonic() - started
        snapshot = coordinator.stats_snapshot()
    finally:
        coordinator.stop()
    return payloads, wall, snapshot


def kill_one_shard_run(grid, socket_dir, delay):
    """Run ``grid`` on a 2-shard fabric, SIGKILLing one shard mid-batch."""
    from repro.service import fabric

    config = fabric.FabricConfig(shards=2, jobs=2, no_cache=True,
                                 socket_dir=socket_dir)
    coordinator = fabric.FabricCoordinator(config)
    try:
        coordinator.start()
        victim = coordinator.live_shards()[0]
        timer = threading.Timer(delay, victim.process.kill)
        timer.start()
        try:
            payloads = coordinator.run_cells(grid, label="smoke-kill")
        finally:
            timer.cancel()
        snapshot = coordinator.stats_snapshot()
    finally:
        coordinator.stop()
    return payloads, snapshot


def run_fabric_phases(args, workdir, jsonl_path) -> int:
    """Phases 5-7: sharded identity, speedup gate, kill-one-shard."""
    from repro.service import fabric

    failures = 0
    before = live_children()

    # The gated grid: table1 cells adaptively split into per-op
    # subcells (the fabric's load-balance transform) plus a monitored
    # table2 batch so shard traffic includes MBM integrity evidence.
    table1 = table1_cells(small_platform, warmup=args.warmup,
                          iterations=args.iterations, ops=GATE_OPS)
    split = fabric.adaptive_split(table1, 2 * len(table1))
    mon_cells = table2_cells(scale=args.scale,
                             platform_factory=small_platform)
    grid = split + mon_cells
    serial = run_cells(grid, backend="serial", cache=None,
                       integrity="enforce")

    # 5. 2-shard byte-identity (payloads AND the merged rendering,
    # which must match the *unsplit* serial table exactly).
    sharded, two_wall, _ = timed_fabric_run(
        grid, 2, os.path.join(workdir, "fabric2"), "smoke-fabric2")
    unsplit_serial = run_cells(table1, backend="serial", cache=None,
                               integrity="enforce")
    if json.dumps(sharded) != json.dumps(serial):
        print("FAIL: 2-shard fabric payloads differ from serial run_cells")
        failures += 1
    elif (merge_table1(split, sharded[:len(split)]).format()
            != merge_table1(table1, unsplit_serial).format()):
        print("FAIL: fabric-merged table renders differently from the "
              "unsplit serial table")
        failures += 1
    else:
        print(f"ok: 2-shard fabric byte-identical to serial "
              f"({len(grid)} cells, {len(split)} table1 subcells)")

    # 6. speedup vs a single daemon — gated only where the parallelism
    # can physically exist.
    single, single_wall, _ = timed_fabric_run(
        grid, 1, os.path.join(workdir, "fabric1"), "smoke-fabric1")
    if json.dumps(single) != json.dumps(serial):
        print("FAIL: single-daemon fabric payloads differ from serial")
        failures += 1
    cores = os.cpu_count() or 1
    speedup = single_wall / two_wall if two_wall > 0 else float("inf")
    print(f"fabric speedup: single daemon {single_wall:.2f}s, "
          f"2 shards {two_wall:.2f}s -> {speedup:.2f}x "
          f"(host has {cores} core(s))")
    if cores < SPEEDUP_GATE_MIN_CORES:
        print(f"note: speedup gate is report-only below "
              f"{SPEEDUP_GATE_MIN_CORES} cores")
    elif speedup < args.min_fabric_speedup:
        print(f"FAIL: 2-shard speedup {speedup:.2f}x < required "
              f"{args.min_fabric_speedup:.2f}x on a {cores}-core host")
        failures += 1
    else:
        print(f"ok: 2-shard speedup {speedup:.2f}x >= "
              f"{args.min_fabric_speedup:.2f}x")

    # 7. SIGKILL one shard mid-batch: the batch must still complete
    # byte-identically via dead-shard requeue.  The kill delay is a
    # fraction of the measured batch wall; retry until it provably
    # landed mid-batch (shard_failures observed).
    observed = None
    for attempt in range(KILL_ATTEMPTS):
        delay = max(0.1, min(1.0, 0.25 * two_wall))
        payloads, snapshot = kill_one_shard_run(
            grid, os.path.join(workdir, f"fabric-kill{attempt}"), delay)
        if json.dumps(payloads) != json.dumps(serial):
            print("FAIL: post-kill fabric payloads differ from serial "
                  "run_cells")
            failures += 1
            observed = snapshot
            break
        if snapshot["counters"].get("shard_failures"):
            observed = snapshot
            counters = snapshot["counters"]
            print(f"ok: shard killed mid-batch, completed "
                  f"byte-identically (requeued="
                  f"{counters.get('cells_requeued', 0)}, "
                  f"local_fallback="
                  f"{counters.get('cells_local_fallback', 0)})")
            break
        print(f"note: kill attempt {attempt + 1} landed after batch "
              f"completion; retrying")
    if observed is None:
        print(f"FAIL: shard kill never landed mid-batch in "
              f"{KILL_ATTEMPTS} attempts")
        failures += 1

    # Zero leaked children: every daemon the fabric spawned (including
    # the SIGKILLed one) must be reaped once the coordinators drain.
    after = live_children()
    if before is None or after is None:
        print("skip: /proc child-leak check (no procfs here)")
    elif after - before:
        print(f"FAIL: fabric leaked children: {sorted(after - before)}")
        failures += 1
    else:
        print("ok: zero leaked children after fabric drain (/proc)")

    # Feed the shard-crossed monitored payloads to the integrity gate
    # too, so enforcement provably covers the fabric path.
    with open(jsonl_path, "a", encoding="utf-8") as handle:
        for cell, payload in zip(mon_cells, sharded[len(split):]):
            record = {"label": cell.label(),
                      "metrics": payload.get("metrics", {})}
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    print(f"fabric monitored metrics appended: {jsonl_path} "
          f"({len(mon_cells)} records)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jsonl", default=None, metavar="PATH",
                        help="where to write the streamed metrics records "
                        "(default: a temp file, path printed)")
    parser.add_argument("--warmup", type=int, default=1)
    parser.add_argument("--iterations", type=int, default=2)
    parser.add_argument("--scale", type=float, default=0.02,
                        help="workload scale for the monitored (table2) "
                        "batch that feeds the integrity gate")
    parser.add_argument("--fabric", dest="fabric", action="store_true",
                        default=True,
                        help="run the shard-fabric phases (default)")
    parser.add_argument("--no-fabric", dest="fabric", action="store_false",
                        help="skip the shard-fabric phases")
    parser.add_argument(
        "--min-fabric-speedup", type=float,
        default=float(os.environ.get("REPRO_MIN_FABRIC_SPEEDUP", "1.5")),
        help="required 2-shard speedup vs a single daemon on hosts with "
        f">= {SPEEDUP_GATE_MIN_CORES} cores (report-only below)")
    args = parser.parse_args(argv)

    workdir = tempfile.mkdtemp(prefix="repro-service-smoke-")
    socket_path = os.path.join(workdir, "serve.sock")
    cache_dir = os.path.join(workdir, "cache")
    jsonl_path = args.jsonl or os.path.join(workdir, "streamed.jsonl")
    failures = 0

    daemon = boot_daemon(socket_path, cache_dir)
    try:
        cells = table1_cells(small_platform, warmup=args.warmup,
                             iterations=args.iterations, ops=GATE_OPS)
        with ReproServiceClient(socket_path=socket_path, timeout=600,
                                client="smoke") as client:
            served = client.run_cells(cells, label="smoke-table1")

            # 1. byte-identity vs a local serial run
            serial = run_cells(cells, backend="serial", cache=None,
                               integrity="enforce")
            # No sort_keys: payload dict order is semantic (table rows
            # render in counts order) and must survive the wire exactly.
            if json.dumps(served) != json.dumps(serial):
                print("FAIL: daemon payloads differ from serial run_cells")
                failures += 1
            elif (merge_table1(cells, served).format()
                    != merge_table1(cells, serial).format()):
                print("FAIL: merged tables render differently")
                failures += 1
            else:
                print("ok: daemon round trip byte-identical to serial "
                      f"({len(cells)} cells)")

            # 2. second batch rides the warm pool (different spec, same
            # environments -> cache miss, warm dispatch)
            warm_cells = table1_cells(
                small_platform, warmup=args.warmup,
                iterations=args.iterations + 1, ops=GATE_OPS)
            reply = client.submit(warm_cells, label="smoke-warm",
                                  stream=False)
            final = client.result(reply["job"], wait=True)
            pool = final.get("pool", {})
            if final["state"] != "done":
                print(f"FAIL: warm batch ended {final['state']}: "
                      f"{final.get('error')}")
                failures += 1
            elif not forkserver.fork_available():
                print("skip: warm-pool accounting (no os.fork here)")
            elif pool.get("cold_boots", 0) != 0:
                print(f"FAIL: second batch paid {pool['cold_boots']} cold "
                      f"boot(s); the pool was not shared warm")
                failures += 1
            elif pool.get("warm_dispatches", 0) < len(warm_cells):
                print(f"FAIL: second batch warm-dispatched only "
                      f"{pool.get('warm_dispatches', 0)}/{len(warm_cells)} "
                      f"cells")
                failures += 1
            else:
                print(f"ok: warm batch — 0 cold boots, "
                      f"{pool['warm_dispatches']} warm dispatches")

            # 3. streamed metrics out to JSONL for the integrity gate.
            # Table 1 is Hypersec-only (no MBM), so its checks are
            # vacuous; a small monitored (table2) batch drives the full
            # MBM pipeline and gives the gate real checks to verify.
            mon_cells = table2_cells(scale=args.scale,
                                     platform_factory=small_platform)
            monitored = client.run_cells(mon_cells, label="smoke-table2")
            with open(jsonl_path, "w", encoding="utf-8") as handle:
                for cell, payload in zip(cells + mon_cells,
                                         served + monitored):
                    record = {"label": cell.label(),
                              "metrics": payload.get("metrics", {})}
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
            print(f"streamed metrics written: {jsonl_path} "
                  f"({len(cells) + len(mon_cells)} records)")

        # 4. graceful SIGTERM drain
        daemon.send_signal(signal.SIGTERM)
        out, _ = daemon.communicate(timeout=60)
        if daemon.returncode != 0:
            print(f"FAIL: daemon exited {daemon.returncode} on SIGTERM:\n"
                  f"{out}")
            failures += 1
        elif os.path.exists(socket_path):
            print("FAIL: daemon left its socket behind after draining")
            failures += 1
        else:
            print("ok: SIGTERM drain clean (exit 0, socket unlinked)")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.communicate()

    if args.fabric:
        failures += run_fabric_phases(args, workdir, jsonl_path)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
