#!/usr/bin/env python3
"""Service smoke gate: daemon round trip, warm pools, streamed metrics.

Boots a real ``python -m repro serve`` daemon on a private socket and
drives it the way a tenant would, gating the ``repro.service``
contract (DESIGN.md §5g):

1. a small Table 1 batch submitted through ``reproctl``'s client path
   returns payloads **byte-identical** to a local serial ``run_cells``
   run, and the merged table renders identically;
2. a second batch on the same environments rides the **warm pool**:
   its per-job pool accounting must show zero cold boots (skipped when
   the platform cannot fork — the daemon runs serially there);
3. the streamed per-cell metrics are written as JSONL for
   ``scripts/check_integrity.py --jsonl`` — CI chains the two so the
   daemon provably streams the same enforceable integrity evidence the
   in-process runner produces;
4. SIGTERM drains cleanly: exit code 0, socket unlinked.

Usage::

    PYTHONPATH=src python scripts/check_service.py
    PYTHONPATH=src python scripts/check_service.py --jsonl streamed.jsonl
    PYTHONPATH=src python scripts/check_integrity.py --jsonl streamed.jsonl
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.monitoring import table2_cells  # noqa: E402
from repro.analysis.tables import merge_table1, table1_cells  # noqa: E402
from repro.config import PlatformConfig  # noqa: E402
from repro.service.client import ReproServiceClient  # noqa: E402
from repro.tools import forkserver  # noqa: E402
from repro.tools.runner import run_cells  # noqa: E402

GATE_OPS = ["syscall stat", "signal install"]


def small_platform() -> PlatformConfig:
    return PlatformConfig(
        dram_bytes=64 * 1024 * 1024, secure_bytes=8 * 1024 * 1024
    )


def boot_daemon(socket_path: str, cache_dir: str) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"),
               REPRO_CACHE_DIR=cache_dir)
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", socket_path,
         "--jobs", "2"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, cwd=str(REPO_ROOT),
    )
    deadline = time.monotonic() + 30
    while not os.path.exists(socket_path):
        if daemon.poll() is not None:
            print(daemon.communicate()[0])
            raise SystemExit("FAIL: daemon exited before binding")
        if time.monotonic() > deadline:
            daemon.kill()
            raise SystemExit("FAIL: daemon never bound its socket")
        time.sleep(0.1)
    return daemon


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jsonl", default=None, metavar="PATH",
                        help="where to write the streamed metrics records "
                        "(default: a temp file, path printed)")
    parser.add_argument("--warmup", type=int, default=1)
    parser.add_argument("--iterations", type=int, default=2)
    parser.add_argument("--scale", type=float, default=0.02,
                        help="workload scale for the monitored (table2) "
                        "batch that feeds the integrity gate")
    args = parser.parse_args(argv)

    workdir = tempfile.mkdtemp(prefix="repro-service-smoke-")
    socket_path = os.path.join(workdir, "serve.sock")
    cache_dir = os.path.join(workdir, "cache")
    jsonl_path = args.jsonl or os.path.join(workdir, "streamed.jsonl")
    failures = 0

    daemon = boot_daemon(socket_path, cache_dir)
    try:
        cells = table1_cells(small_platform, warmup=args.warmup,
                             iterations=args.iterations, ops=GATE_OPS)
        with ReproServiceClient(socket_path=socket_path, timeout=600,
                                client="smoke") as client:
            served = client.run_cells(cells, label="smoke-table1")

            # 1. byte-identity vs a local serial run
            serial = run_cells(cells, backend="serial", cache=None,
                               integrity="enforce")
            # No sort_keys: payload dict order is semantic (table rows
            # render in counts order) and must survive the wire exactly.
            if json.dumps(served) != json.dumps(serial):
                print("FAIL: daemon payloads differ from serial run_cells")
                failures += 1
            elif (merge_table1(cells, served).format()
                    != merge_table1(cells, serial).format()):
                print("FAIL: merged tables render differently")
                failures += 1
            else:
                print("ok: daemon round trip byte-identical to serial "
                      f"({len(cells)} cells)")

            # 2. second batch rides the warm pool (different spec, same
            # environments -> cache miss, warm dispatch)
            warm_cells = table1_cells(
                small_platform, warmup=args.warmup,
                iterations=args.iterations + 1, ops=GATE_OPS)
            reply = client.submit(warm_cells, label="smoke-warm",
                                  stream=False)
            final = client.result(reply["job"], wait=True)
            pool = final.get("pool", {})
            if final["state"] != "done":
                print(f"FAIL: warm batch ended {final['state']}: "
                      f"{final.get('error')}")
                failures += 1
            elif not forkserver.fork_available():
                print("skip: warm-pool accounting (no os.fork here)")
            elif pool.get("cold_boots", 0) != 0:
                print(f"FAIL: second batch paid {pool['cold_boots']} cold "
                      f"boot(s); the pool was not shared warm")
                failures += 1
            elif pool.get("warm_dispatches", 0) < len(warm_cells):
                print(f"FAIL: second batch warm-dispatched only "
                      f"{pool.get('warm_dispatches', 0)}/{len(warm_cells)} "
                      f"cells")
                failures += 1
            else:
                print(f"ok: warm batch — 0 cold boots, "
                      f"{pool['warm_dispatches']} warm dispatches")

            # 3. streamed metrics out to JSONL for the integrity gate.
            # Table 1 is Hypersec-only (no MBM), so its checks are
            # vacuous; a small monitored (table2) batch drives the full
            # MBM pipeline and gives the gate real checks to verify.
            mon_cells = table2_cells(scale=args.scale,
                                     platform_factory=small_platform)
            monitored = client.run_cells(mon_cells, label="smoke-table2")
            with open(jsonl_path, "w", encoding="utf-8") as handle:
                for cell, payload in zip(cells + mon_cells,
                                         served + monitored):
                    record = {"label": cell.label(),
                              "metrics": payload.get("metrics", {})}
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
            print(f"streamed metrics written: {jsonl_path} "
                  f"({len(cells) + len(mon_cells)} records)")

        # 4. graceful SIGTERM drain
        daemon.send_signal(signal.SIGTERM)
        out, _ = daemon.communicate(timeout=60)
        if daemon.returncode != 0:
            print(f"FAIL: daemon exited {daemon.returncode} on SIGTERM:\n"
                  f"{out}")
            failures += 1
        elif os.path.exists(socket_path):
            print("FAIL: daemon left its socket behind after draining")
            failures += 1
        else:
            print("ok: SIGTERM drain clean (exit 0, socket unlinked)")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.communicate()
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
