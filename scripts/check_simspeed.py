#!/usr/bin/env python3
"""Sim-speed regression gate.

Runs the simulation-speed benchmark (``repro.tools.perf``) and compares
it against the committed baseline ``BENCH_simspeed.json``:

* fails (exit 1) when any workload's wall-clock throughput drops more
  than the tolerance below the baseline (default 20%, machine-sensitive
  — override with ``--tolerance`` or ``REPRO_SIMSPEED_TOLERANCE``);
* fails when the *simulated* access or cycle counts differ from the
  baseline at equal iteration counts — those are exact, machine
  independent invariants: perf work must never change simulated
  behaviour;
* verifies the parallel-runner entries: both ``table1_runner_*``
  workloads must be present in the baseline, serial and parallel runs
  must report *identical* simulated accesses/sim_cycles (fan-out must
  not change simulated behaviour), and on hosts with >= 4 cores the
  parallel run must be at least ``--min-parallel-speedup`` (default
  2.0x, env ``REPRO_MIN_PARALLEL_SPEEDUP``) faster than the serial
  run.  On smaller hosts the speedup is reported but not gated;
* verifies the warm-start entry: ``table1_runner_warmstart`` (cells
  restored from shared post-boot snapshots, see ``repro.state``) must
  report simulated accesses/sim_cycles *identical* to
  ``table1_runner_serial`` — restore-then-run equals boot-then-run —
  and the boot-time saving vs the serial run is reported (wall clock,
  machine sensitive, so informational only);
* verifies the macro-op memoization legs: each workload in
  ``perf.NOMEMO_WORKLOADS`` is measured twice — memoizer on (the plain
  entry) and off (the ``*_nomemo`` twin) — and the two legs must report
  *identical* simulated accesses/sim_cycles (replay must not change
  simulated behaviour).  The check also fails vacuously: the memoized
  ``monitored_write_storm`` leg must actually replay ops
  (``extras.replayed_ops > 0``), otherwise the exactness comparison
  proves nothing.  Skipped entirely when ``REPRO_MACROOPS=0`` disables
  the memoizer (the twins are redundant then);
* verifies the fork-server entry: ``table1_runner_forkserver``
  (persistent warm servers forking copy-on-write workers, see
  ``repro.tools.forkserver``) must report simulated
  accesses/sim_cycles *identical* to ``table1_runner_serial``, and on
  hosts with >= 4 cores must be at least ``--min-forkserver-speedup``
  (default 1.3x, env ``REPRO_MIN_FORKSERVER_SPEEDUP``) faster than the
  pool-based ``table1_runner_parallel``.  The speedup is reported but
  not gated on smaller hosts, or when the fork-server backend is not
  actually in effect (``REPRO_BENCH_BACKEND`` forcing another backend,
  or a platform without ``os.fork``);
* verifies the service entry: ``table1_runner_service`` (the same
  regeneration submitted to a live ``repro serve`` daemon over its
  unix socket) must report simulated accesses/sim_cycles *identical*
  to ``table1_runner_serial`` — the JSON wire round trip must not
  change simulated behaviour — and the service dispatch overhead vs
  the serial run is reported (wall clock, machine sensitive, so
  informational only).

Usage::

    PYTHONPATH=src python scripts/check_simspeed.py            # gate
    PYTHONPATH=src python scripts/check_simspeed.py --update   # re-baseline

Also exposed as an opt-in pytest marker: ``pytest benchmarks -m simspeed``.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.tools import perf  # noqa: E402

DEFAULT_BASELINE = REPO_ROOT / "BENCH_simspeed.json"

#: Gate the parallel speedup only on hosts that can actually exhibit it.
SPEEDUP_GATE_MIN_CORES = 4


def runner_failures(current: dict, baseline: dict,
                    min_speedup: float) -> list:
    """Check the parallel-runner workload pair (see module docstring)."""
    failures = []
    serial_name = perf.RUNNER_SERIAL_WORKLOAD
    parallel_name = perf.RUNNER_PARALLEL_WORKLOAD
    for name in (serial_name, parallel_name):
        if name not in baseline.get("workloads", {}):
            failures.append(
                f"{name}: missing from the baseline — re-run with --update"
            )
    current_workloads = current.get("workloads", {})
    serial = current_workloads.get(serial_name)
    parallel = current_workloads.get(parallel_name)
    if not serial or not parallel:
        return failures
    for field in ("accesses", "sim_cycles"):
        if serial[field] != parallel[field]:
            failures.append(
                f"parallel runner changed simulated {field} vs serial "
                f"({serial[field]} vs {parallel[field]}) — fan-out must "
                f"not change simulated behaviour"
            )
    cores = os.cpu_count() or 1
    if parallel["wall_seconds"] > 0:
        speedup = serial["wall_seconds"] / parallel["wall_seconds"]
        print(f"parallel table1 runner speedup: {speedup:.2f}x "
              f"(jobs=4 on {cores} cores)")
        if cores >= SPEEDUP_GATE_MIN_CORES and speedup < min_speedup:
            failures.append(
                f"parallel table1 runner speedup {speedup:.2f}x is below "
                f"the required {min_speedup:.2f}x on a {cores}-core host"
            )
    return failures


def forkserver_failures(current: dict, baseline: dict,
                        min_speedup: float) -> list:
    """Check the fork-server runner entry (see module docstring)."""
    from repro.tools import forkserver

    failures = []
    fork_name = perf.RUNNER_FORKSERVER_WORKLOAD
    if fork_name not in baseline.get("workloads", {}):
        failures.append(
            f"{fork_name}: missing from the baseline — re-run with --update"
        )
    current_workloads = current.get("workloads", {})
    serial = current_workloads.get(perf.RUNNER_SERIAL_WORKLOAD)
    parallel = current_workloads.get(perf.RUNNER_PARALLEL_WORKLOAD)
    fork = current_workloads.get(fork_name)
    if not serial or not fork:
        return failures
    for field in ("accesses", "sim_cycles"):
        if serial[field] != fork[field]:
            failures.append(
                f"fork-server runner changed simulated {field} vs serial "
                f"({serial[field]} vs {fork[field]}) — copy-on-write "
                f"fan-out must not change simulated behaviour"
            )
    # The speedup gate only means something when the workload really ran
    # on the fork server: REPRO_BENCH_BACKEND overrides the pinned
    # backend inside run_cells, and fork-less platforms silently degrade
    # to the pool.
    forced = os.environ.get("REPRO_BENCH_BACKEND")
    in_effect = (forkserver.fork_available()
                 and forced in (None, "", "forkserver", "auto"))
    cores = os.cpu_count() or 1
    if parallel and parallel["wall_seconds"] > 0 and fork["wall_seconds"] > 0:
        speedup = parallel["wall_seconds"] / fork["wall_seconds"]
        print(f"fork-server table1 runner speedup vs pool: {speedup:.2f}x "
              f"(jobs=4 on {cores} cores"
              f"{'' if in_effect else '; backend not in effect'})")
        if (in_effect and cores >= SPEEDUP_GATE_MIN_CORES
                and speedup < min_speedup):
            failures.append(
                f"fork-server table1 runner speedup {speedup:.2f}x vs the "
                f"pool is below the required {min_speedup:.2f}x on a "
                f"{cores}-core host"
            )
    return failures


def macroop_failures(current: dict, baseline: dict) -> list:
    """Check the memoizer-on vs memoizer-off legs (see module docstring)."""
    from repro.tools.macroops import memoization_enabled

    if not memoization_enabled():
        print("macro-op memoizer disabled (REPRO_MACROOPS=0); "
              "skipping the memoization legs")
        return []
    failures = []
    current_workloads = current.get("workloads", {})
    for base_name in perf.NOMEMO_WORKLOADS:
        twin_name = base_name + perf.NOMEMO_SUFFIX
        if twin_name not in baseline.get("workloads", {}):
            failures.append(
                f"{twin_name}: missing from the baseline — re-run with "
                f"--update"
            )
        memo = current_workloads.get(base_name)
        raw = current_workloads.get(twin_name)
        if not memo or not raw:
            continue
        for field in ("accesses", "sim_cycles"):
            if memo[field] != raw[field]:
                failures.append(
                    f"{base_name}: macro-op memoization changed simulated "
                    f"{field} ({raw[field]} without vs {memo[field]} with) "
                    f"— replay must not change simulated behaviour"
                )
        if raw["wall_seconds"] > 0 and memo["wall_seconds"] > 0:
            speedup = raw["wall_seconds"] / memo["wall_seconds"]
            print(f"macro-op memoization speedup on {base_name}: "
                  f"{speedup:.2f}x")
    # Vacuity: the exactness comparison above proves nothing unless the
    # memoized storm leg actually replayed ops.
    storm = current_workloads.get("monitored_write_storm")
    if storm is not None:
        extras = storm.get("extras", {})
        if extras.get("memoized") and not extras.get("replayed_ops"):
            failures.append(
                "monitored_write_storm: memoizer enabled but zero ops were "
                "replayed (bail_reason="
                f"{extras.get('bail_reason', '?')!r}) — the memoization "
                "legs are vacuous"
            )
    return failures


def warmstart_failures(current: dict, baseline: dict) -> list:
    """Check the warm-start runner entry (see module docstring)."""
    failures = []
    warm_name = perf.RUNNER_WARMSTART_WORKLOAD
    if warm_name not in baseline.get("workloads", {}):
        failures.append(
            f"{warm_name}: missing from the baseline — re-run with --update"
        )
    current_workloads = current.get("workloads", {})
    serial = current_workloads.get(perf.RUNNER_SERIAL_WORKLOAD)
    warm = current_workloads.get(warm_name)
    if not serial or not warm:
        return failures
    for field in ("accesses", "sim_cycles"):
        if serial[field] != warm[field]:
            failures.append(
                f"warm-start runner changed simulated {field} vs cold boot "
                f"({serial[field]} vs {warm[field]}) — restore-then-run "
                f"must be bit-identical to boot-then-run"
            )
    if serial["wall_seconds"] > 0 and warm["wall_seconds"] > 0:
        saving = 1.0 - warm["wall_seconds"] / serial["wall_seconds"]
        print(f"warm-start table1 runner boot-time saving: {saving:+.0%} "
              f"({serial['wall_seconds']:.2f}s cold -> "
              f"{warm['wall_seconds']:.2f}s warm)")
    return failures


def service_failures(current: dict, baseline: dict) -> list:
    """Check the daemon-backed runner entry (see module docstring)."""
    failures = []
    service_name = perf.RUNNER_SERVICE_WORKLOAD
    if service_name not in baseline.get("workloads", {}):
        failures.append(
            f"{service_name}: missing from the baseline — re-run with "
            f"--update"
        )
    current_workloads = current.get("workloads", {})
    serial = current_workloads.get(perf.RUNNER_SERIAL_WORKLOAD)
    service = current_workloads.get(service_name)
    if not serial or not service:
        return failures
    for field in ("accesses", "sim_cycles"):
        if serial[field] != service[field]:
            failures.append(
                f"service runner changed simulated {field} vs serial "
                f"({serial[field]} vs {service[field]}) — the daemon wire "
                f"round trip must not change simulated behaviour"
            )
    if serial["wall_seconds"] > 0 and service["wall_seconds"] > 0:
        overhead = service["wall_seconds"] / serial["wall_seconds"] - 1.0
        print(f"service table1 runner dispatch overhead vs serial: "
              f"{overhead:+.0%} ({serial['wall_seconds']:.2f}s local -> "
              f"{service['wall_seconds']:.2f}s via daemon)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        help="baseline JSON path (default: repo root)")
    parser.add_argument("--iters-scale", type=float, default=1.0,
                        help="scale on per-workload iteration counts; "
                        "determinism checks only apply at the baseline's scale")
    parser.add_argument("--tolerance", type=float,
                        default=float(os.environ.get(
                            "REPRO_SIMSPEED_TOLERANCE", perf.DEFAULT_TOLERANCE)),
                        help="allowed wall-clock slowdown fraction")
    parser.add_argument("--repeats", type=int, default=3,
                        help="measure each workload N times and gate on the "
                        "best run (wall clock is noisy; simulation is not)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline with this run's numbers")
    parser.add_argument("--min-parallel-speedup", type=float,
                        default=float(os.environ.get(
                            "REPRO_MIN_PARALLEL_SPEEDUP", "2.0")),
                        help="required table1 runner speedup at jobs=4 "
                        "(gated only on hosts with >= 4 cores)")
    parser.add_argument("--min-forkserver-speedup", type=float,
                        default=float(os.environ.get(
                            "REPRO_MIN_FORKSERVER_SPEEDUP", "1.3")),
                        help="required fork-server speedup vs the pool at "
                        "jobs=4 (gated only on hosts with >= 4 cores and "
                        "when the fork-server backend is in effect)")
    args = parser.parse_args(argv)

    # Fail fast on a mistyped backend override: a bad value used to be
    # reported as "backend not in effect" (silently skipping the
    # fork-server gate) instead of stopping the run.
    forced_backend = os.environ.get("REPRO_BENCH_BACKEND")
    if forced_backend:
        from repro.tools.runner import validate_backend

        validate_backend(forced_backend, source="REPRO_BENCH_BACKEND")

    results = perf.run_simspeed(iters_scale=args.iters_scale,
                                repeats=args.repeats)
    print(perf.format_report(results))

    if args.update:
        perf.write_report(results, args.baseline, iters_scale=args.iters_scale)
        print(f"baseline updated: {args.baseline}")
        return 0

    baseline_path = pathlib.Path(args.baseline)
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; run with --update to create one")
        return 1
    baseline = perf.load_report(str(baseline_path))
    current = perf.report_as_dict(results, iters_scale=args.iters_scale)
    failures = perf.compare_to_baseline(current, baseline,
                                        tolerance=args.tolerance)
    failures += runner_failures(current, baseline,
                                min_speedup=args.min_parallel_speedup)
    failures += macroop_failures(current, baseline)
    failures += warmstart_failures(current, baseline)
    failures += forkserver_failures(current, baseline,
                                    min_speedup=args.min_forkserver_speedup)
    failures += service_failures(current, baseline)
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print(f"ok: all workloads within {args.tolerance:.0%} of "
          f"{baseline_path.name} and deterministically identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
