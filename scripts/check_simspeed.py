#!/usr/bin/env python3
"""Sim-speed regression gate.

Runs the simulation-speed benchmark (``repro.tools.perf``) and compares
it against the committed baseline ``BENCH_simspeed.json``:

* fails (exit 1) when any workload's wall-clock throughput drops more
  than the tolerance below the baseline (default 20%, machine-sensitive
  — override with ``--tolerance`` or ``REPRO_SIMSPEED_TOLERANCE``);
* fails when the *simulated* access or cycle counts differ from the
  baseline at equal iteration counts — those are exact, machine
  independent invariants: perf work must never change simulated
  behaviour.

Usage::

    PYTHONPATH=src python scripts/check_simspeed.py            # gate
    PYTHONPATH=src python scripts/check_simspeed.py --update   # re-baseline

Also exposed as an opt-in pytest marker: ``pytest benchmarks -m simspeed``.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.tools import perf  # noqa: E402

DEFAULT_BASELINE = REPO_ROOT / "BENCH_simspeed.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        help="baseline JSON path (default: repo root)")
    parser.add_argument("--iters-scale", type=float, default=1.0,
                        help="scale on per-workload iteration counts; "
                        "determinism checks only apply at the baseline's scale")
    parser.add_argument("--tolerance", type=float,
                        default=float(os.environ.get(
                            "REPRO_SIMSPEED_TOLERANCE", perf.DEFAULT_TOLERANCE)),
                        help="allowed wall-clock slowdown fraction")
    parser.add_argument("--repeats", type=int, default=3,
                        help="measure each workload N times and gate on the "
                        "best run (wall clock is noisy; simulation is not)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline with this run's numbers")
    args = parser.parse_args(argv)

    results = perf.run_simspeed(iters_scale=args.iters_scale,
                                repeats=args.repeats)
    print(perf.format_report(results))

    if args.update:
        perf.write_report(results, args.baseline, iters_scale=args.iters_scale)
        print(f"baseline updated: {args.baseline}")
        return 0

    baseline_path = pathlib.Path(args.baseline)
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; run with --update to create one")
        return 1
    baseline = perf.load_report(str(baseline_path))
    current = perf.report_as_dict(results, iters_scale=args.iters_scale)
    failures = perf.compare_to_baseline(current, baseline,
                                        tolerance=args.tolerance)
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print(f"ok: all workloads within {args.tolerance:.0%} of "
          f"{baseline_path.name} and deterministically identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
