"""Evaluation harness: runners and formatters for the paper's results.

* :mod:`repro.analysis.paper` — the numbers the paper reports (Table 1,
  Table 2, Figure 6 averages), used for side-by-side comparison.
* :mod:`repro.analysis.tables` — Table 1 runner (LMbench, three systems).
* :mod:`repro.analysis.figures` — Figure 6 runner (application
  benchmarks, normalized) and an ASCII bar chart.
* :mod:`repro.analysis.monitoring` — Table 2 runner (word- vs
  page-granularity trap counts).
* :mod:`repro.analysis.compare` — overhead math and shape checks.
"""

from repro.analysis.compare import overhead_percent, geometric_mean
from repro.analysis.figures import Figure6Result, run_figure6
from repro.analysis.monitoring import Table2Result, run_table2
from repro.analysis.report import generate_report
from repro.analysis.tables import Table1Result, run_table1

__all__ = [
    "Figure6Result",
    "Table1Result",
    "Table2Result",
    "generate_report",
    "geometric_mean",
    "overhead_percent",
    "run_figure6",
    "run_table1",
    "run_table2",
]
