"""Small numeric helpers for the evaluation harness."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence


def overhead_percent(value: float, baseline: float) -> float:
    """Slowdown of ``value`` relative to ``baseline`` in percent."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return (value / baseline - 1.0) * 100.0


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the usual aggregate for normalized runtimes)."""
    if not values:
        raise ValueError("geometric mean of no values")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def arithmetic_mean(values: Sequence[float]) -> float:
    """Plain average (the paper reports arithmetic-average overheads)."""
    values = list(values)
    if not values:
        raise ValueError("mean of no values")
    return sum(values) / len(values)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Fixed-width text table (right-aligned numeric-ish columns)."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(row):
        return "  ".join(cell.rjust(width) if index else cell.ljust(width)
                         for index, (cell, width) in enumerate(zip(row, widths)))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def shape_report(measured: Dict[str, float], paper: Dict[str, float]) -> str:
    """One-line comparison of measured vs paper percentages."""
    parts = []
    for key in paper:
        measured_value = measured.get(key, float("nan"))
        parts.append(
            f"{key}: measured {measured_value:+.1f}% vs paper {paper[key]:+.1f}%"
        )
    return "; ".join(parts)
