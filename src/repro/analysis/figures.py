"""Figure 6 runner: application benchmarks, normalized to native.

Like Table 1, each system configuration is one independent
:class:`~repro.tools.runner.Cell`; normalization to native happens at
merge time in the parent, so the parallel path and the serial path
produce byte-identical results (see DESIGN.md §5b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.config import PlatformConfig
from repro.core.hypernel import build_system
from repro.analysis import paper
from repro.analysis.compare import arithmetic_mean, format_table
from repro.tools.runner import Cell, CellCache, attach_boot_snapshots, run_cells
from repro.workloads.apps import ApplicationWorkload, default_applications

SYSTEMS = ["native", "kvm-guest", "hypernel"]


@dataclass
class Figure6Result:
    """Measured Figure 6: app -> system -> normalized runtime."""

    normalized: Dict[str, Dict[str, float]] = field(default_factory=dict)
    raw_us: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Per-cell observability reports (environment -> RunMetrics dict);
    #: display-only — never feeds the normalized values.
    health: Dict[str, dict] = field(default_factory=dict)

    def average_overhead(self, system: str) -> float:
        values = [row[system] for row in self.normalized.values()]
        return (arithmetic_mean(values) - 1.0) * 100.0

    def format(self) -> str:
        headers = ["Benchmark"] + [f"{s} (norm.)" for s in SYSTEMS]
        body = [
            [app] + [f"{self.normalized[app][s]:.3f}" for s in SYSTEMS]
            for app in self.normalized
        ]
        table = format_table(headers, body)
        footer = (
            f"\naverage overhead vs native: "
            f"kvm-guest {self.average_overhead('kvm-guest'):+.1f}% "
            f"(paper {paper.APP_AVG_OVERHEAD['kvm-guest']:+.1f}%), "
            f"hypernel {self.average_overhead('hypernel'):+.1f}% "
            f"(paper {paper.APP_AVG_OVERHEAD['hypernel']:+.1f}%)"
        )
        return table + "\n" + self.ascii_chart() + footer

    def ascii_chart(self, width: int = 48) -> str:
        """A bar chart of normalized runtimes (the Figure 6 visual)."""
        lines = ["normalized execution time (native = 1.0)"]
        peak = max(
            value for row in self.normalized.values() for value in row.values()
        )
        for app, row in self.normalized.items():
            for system in SYSTEMS:
                bar = "#" * max(1, int(row[system] / peak * width))
                lines.append(f"{app:>10s} {system:>9s} |{bar} {row[system]:.3f}")
            lines.append("")
        return "\n".join(lines)


def figure6_cells(
    scale: float = 0.25,
    platform_factory: Optional[Callable[[], PlatformConfig]] = None,
    apps: Optional[List[ApplicationWorkload]] = None,
) -> List[Cell]:
    """One cell per system configuration, in ``SYSTEMS`` order.

    With the default app set, cells carry only the scale (the worker
    rebuilds the apps) and are cacheable; caller-supplied workload
    objects travel inside the spec and make the cell uncacheable.
    """
    spec: Dict[str, Any] = {"scale": scale}
    if apps is not None:
        spec["apps"] = apps
    return [
        Cell(
            kind="figure6",
            environment=system_name,
            workload="apps",
            spec=dict(spec),
            platform_config=(
                platform_factory() if platform_factory is not None else None
            ),
            cacheable=apps is None,
        )
        for system_name in SYSTEMS
    ]


def cell_build_args(cell: Cell) -> tuple:
    """``(system_name, build_kwargs)`` for this cell's environment."""
    kwargs: Dict[str, Any] = {}
    if cell.environment == "hypernel":
        kwargs["with_mbm"] = False  # paper 7.1: only Hypersec active
    if cell.environment == "kvm-guest":
        kwargs["prepopulate_stage2"] = True  # steady-state guest
    return cell.environment, kwargs


def cell_system(cell: Cell):
    """Boot the cell's system — or restore its warm-start snapshot."""
    name, kwargs = cell_build_args(cell)
    if cell.snapshot_path:
        return build_system(name, from_snapshot=cell.snapshot_path)
    if cell.platform_config is not None:
        kwargs["platform_config"] = cell.platform_config
    return build_system(name, **kwargs)


def execute_cell_on(cell: Cell, system) -> Dict[str, Any]:
    """Run every application on a pristine, pre-built ``system``.

    Shared workload body for all runner backends; the fork-server
    backend calls it in a copy-on-write child with the server's
    inherited machine (see :mod:`repro.tools.forkserver`).
    """
    from repro.obs import collect_metrics
    from repro.tools.perf import count_accesses

    apps = cell.spec.get("apps")
    if apps is None:
        apps = default_applications(cell.spec["scale"])
    shell = system.spawn_init()
    raw_us: Dict[str, float] = {}
    for app in apps:
        app.prepare(system, shell)
        run = app.run(system, shell)
        raw_us[app.name] = run.microseconds
    return {
        "raw_us": raw_us,
        "accesses": count_accesses(system),
        "sim_cycles": system.platform.clock.now,
        "metrics": collect_metrics(system).to_dict(),
    }


def execute_cell(cell: Cell) -> Dict[str, Any]:
    """Worker body: build one system, run every application on it."""
    return execute_cell_on(cell, cell_system(cell))


def merge_figure6(
    cells: List[Cell], payloads: List[Dict[str, Any]]
) -> Figure6Result:
    """Fold per-cell payloads into a :class:`Figure6Result`.

    Shared by :func:`run_figure6` and the ``reproctl`` client, so a
    figure assembled from daemon-streamed payloads is byte-identical to
    one produced by a local serial run.
    """
    result = Figure6Result()
    for cell, payload in zip(cells, payloads):
        for app_name, microseconds in payload["raw_us"].items():
            result.raw_us.setdefault(app_name, {})[cell.environment] = microseconds
        if "metrics" in payload:
            result.health[cell.environment] = payload["metrics"]
    for app_name, row in result.raw_us.items():
        native = row["native"]
        result.normalized[app_name] = {
            system: row[system] / native for system in SYSTEMS
        }
    return result


def run_figure6(
    scale: float = 0.25,
    platform_factory: Optional[Callable[[], PlatformConfig]] = None,
    apps: Optional[List[ApplicationWorkload]] = None,
    jobs: int = 1,
    cache: Optional[CellCache] = None,
    warm_start: bool = False,
    backend: str = "auto",
    enforce_integrity: bool = False,
    waive: tuple = (),
    shards: int = 2,
) -> Figure6Result:
    """Run each application on each system; normalize to native.

    ``warm_start`` restores each cell's system from a shared post-boot
    snapshot instead of booting it (see repro.state); ``backend`` picks
    the cell execution backend (see ``run_cells``).
    ``enforce_integrity`` fails the run (IntegrityError) if any cell's
    monitoring pipeline lost events; ``waive`` accepts named checks.
    """
    cells = figure6_cells(scale, platform_factory, apps)
    if warm_start:
        attach_boot_snapshots(
            cells, cache_dir=cache.directory if cache is not None else None
        )
    payloads = run_cells(
        cells, jobs=jobs, cache=cache, backend=backend,
        integrity="enforce" if enforce_integrity else "ignore", waive=waive,
        shards=shards,
    )
    return merge_figure6(cells, payloads)
