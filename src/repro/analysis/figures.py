"""Figure 6 runner: application benchmarks, normalized to native."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.config import PlatformConfig
from repro.core.hypernel import build_system
from repro.analysis import paper
from repro.analysis.compare import arithmetic_mean, format_table
from repro.workloads.apps import ApplicationWorkload, default_applications

SYSTEMS = ["native", "kvm-guest", "hypernel"]


@dataclass
class Figure6Result:
    """Measured Figure 6: app -> system -> normalized runtime."""

    normalized: Dict[str, Dict[str, float]] = field(default_factory=dict)
    raw_us: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def average_overhead(self, system: str) -> float:
        values = [row[system] for row in self.normalized.values()]
        return (arithmetic_mean(values) - 1.0) * 100.0

    def format(self) -> str:
        headers = ["Benchmark"] + [f"{s} (norm.)" for s in SYSTEMS]
        body = [
            [app] + [f"{self.normalized[app][s]:.3f}" for s in SYSTEMS]
            for app in self.normalized
        ]
        table = format_table(headers, body)
        footer = (
            f"\naverage overhead vs native: "
            f"kvm-guest {self.average_overhead('kvm-guest'):+.1f}% "
            f"(paper {paper.APP_AVG_OVERHEAD['kvm-guest']:+.1f}%), "
            f"hypernel {self.average_overhead('hypernel'):+.1f}% "
            f"(paper {paper.APP_AVG_OVERHEAD['hypernel']:+.1f}%)"
        )
        return table + "\n" + self.ascii_chart() + footer

    def ascii_chart(self, width: int = 48) -> str:
        """A bar chart of normalized runtimes (the Figure 6 visual)."""
        lines = ["normalized execution time (native = 1.0)"]
        peak = max(
            value for row in self.normalized.values() for value in row.values()
        )
        for app, row in self.normalized.items():
            for system in SYSTEMS:
                bar = "#" * max(1, int(row[system] / peak * width))
                lines.append(f"{app:>10s} {system:>9s} |{bar} {row[system]:.3f}")
            lines.append("")
        return "\n".join(lines)


def run_figure6(
    scale: float = 0.25,
    platform_factory: Optional[Callable[[], PlatformConfig]] = None,
    apps: Optional[List[ApplicationWorkload]] = None,
) -> Figure6Result:
    """Run each application on each system; normalize to native."""
    result = Figure6Result()
    apps = apps if apps is not None else default_applications(scale)
    for system_name in SYSTEMS:
        kwargs = {}
        if platform_factory is not None:
            kwargs["platform_config"] = platform_factory()
        if system_name == "hypernel":
            kwargs["with_mbm"] = False  # paper 7.1: only Hypersec active
        if system_name == "kvm-guest":
            kwargs["prepopulate_stage2"] = True  # steady-state guest
        system = build_system(system_name, **kwargs)
        shell = system.spawn_init()
        for app in apps:
            app.prepare(system, shell)
            run = app.run(system, shell)
            result.raw_us.setdefault(app.name, {})[system_name] = run.microseconds
    for app_name, row in result.raw_us.items():
        native = row["native"]
        result.normalized[app_name] = {
            system: row[system] / native for system in SYSTEMS
        }
    return result
