"""Table 2 runner: word- vs page-granularity monitoring trap counts.

Reproduces the paper's section 7.2 methodology exactly:

* **word granularity** — the cred and dentry monitors register only the
  sensitive fields of their objects; every MBM detection is one trap.
* **page granularity (estimated)** — a second configuration registers
  the *entire* objects; its detection count equals the permission
  faults a page-granularity (stage-2 read-only) framework would take
  if the target objects were aggregated onto monitored pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.config import PlatformConfig
from repro.core.hypernel import build_hypernel, build_system
from repro.analysis import paper
from repro.analysis.compare import format_table
from repro.security.baseline_page import WholeObjectMonitor
from repro.security.cred_monitor import CredIntegrityMonitor
from repro.security.dentry_monitor import DentryIntegrityMonitor
from repro.tools.runner import Cell, CellCache, attach_boot_snapshots, run_cells
from repro.workloads.apps import ApplicationWorkload, default_applications

GRANULARITIES = ["page", "word"]


@dataclass
class Table2Result:
    """Measured Table 2: app -> granularity -> trap count."""

    counts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    scale: float = 1.0
    #: Per-cell observability reports (granularity -> RunMetrics dict).
    #: Table 2 *is* a detection count, so a failed integrity check here
    #: means the counts themselves are short — see repro.obs.
    health: Dict[str, dict] = field(default_factory=dict)

    def ratio_percent(self, app: str) -> float:
        row = self.counts[app]
        if row["page"] == 0:
            return 0.0
        return row["word"] / row["page"] * 100.0

    def mean_ratio_percent(self) -> float:
        total_word = sum(row["word"] for row in self.counts.values())
        total_page = sum(row["page"] for row in self.counts.values())
        if total_page == 0:
            return 0.0
        return total_word / total_page * 100.0

    def format(self, include_paper: bool = True) -> str:
        headers = ["benchmark", "page-granularity", "word-granularity", "ratio"]
        if include_paper:
            headers += ["paper page", "paper word", "paper ratio"]
        body = []
        for app, row in self.counts.items():
            line = [
                app,
                str(row["page"]),
                str(row["word"]),
                f"{self.ratio_percent(app):.1f}%",
            ]
            if include_paper and app in paper.TABLE2:
                p = paper.TABLE2[app]
                line += [str(p["page"]), str(p["word"]),
                         f"{p['word'] / p['page'] * 100:.1f}%"]
            body.append(line)
        table = format_table(headers, body)
        footer = (
            f"\noverall word/page ratio: {self.mean_ratio_percent():.1f}% "
            f"(paper: {paper.TABLE2_MEAN_RATIO:.1f}%)"
            f"   [workload scale = {self.scale}]"
        )
        return table + footer


def _word_granularity_monitors():
    return [CredIntegrityMonitor(), DentryIntegrityMonitor()]


def _page_granularity_monitors():
    return [WholeObjectMonitor(("cred", "dentry"))]


def table2_cells(
    scale: float = 0.25,
    platform_factory: Optional[Callable[[], PlatformConfig]] = None,
    apps: Optional[List[ApplicationWorkload]] = None,
) -> List[Cell]:
    """One cell per monitoring granularity, in ``GRANULARITIES`` order."""
    spec: Dict[str, Any] = {"scale": scale}
    if apps is not None:
        spec["apps"] = apps
    return [
        Cell(
            kind="table2",
            environment=granularity,
            workload="apps",
            spec=dict(spec),
            platform_config=(
                platform_factory() if platform_factory is not None else None
            ),
            cacheable=apps is None,
        )
        for granularity in GRANULARITIES
    ]


def cell_build_args(cell: Cell) -> tuple:
    """``(system_name, build_kwargs)`` for this cell's granularity."""
    monitors = (
        _page_granularity_monitors()
        if cell.environment == "page"
        else _word_granularity_monitors()
    )
    return "hypernel", {"with_mbm": True, "monitors": monitors}


def cell_system(cell: Cell):
    """Boot the cell's monitored system — or restore its snapshot."""
    name, kwargs = cell_build_args(cell)
    if cell.snapshot_path:
        return build_system(name, from_snapshot=cell.snapshot_path)
    if cell.platform_config is not None:
        kwargs["platform_config"] = cell.platform_config
    return build_hypernel(**kwargs)


def execute_cell_on(cell: Cell, system) -> Dict[str, Any]:
    """Run all applications on a pristine, pre-built monitored system.

    Shared workload body for all runner backends; the fork-server
    backend calls it in a copy-on-write child with the server's
    inherited machine (see :mod:`repro.tools.forkserver`).
    """
    from repro.obs import collect_metrics
    from repro.tools.perf import count_accesses

    apps = cell.spec.get("apps")
    if apps is None:
        apps = default_applications(cell.spec["scale"])
    shell = system.spawn_init()
    counts: Dict[str, int] = {}
    for app in apps:
        app.prepare(system, shell)
        before = system.mbm.events_detected
        app.run(system, shell)
        counts[app.name] = system.mbm.events_detected - before
    return {
        "counts": counts,
        "accesses": count_accesses(system),
        "sim_cycles": system.platform.clock.now,
        "metrics": collect_metrics(system).to_dict(),
    }


def execute_cell(cell: Cell) -> Dict[str, Any]:
    """Worker body: one monitored Hypernel system, all applications."""
    return execute_cell_on(cell, cell_system(cell))


def merge_table2(
    cells: List[Cell], payloads: List[Dict[str, Any]], scale: float
) -> Table2Result:
    """Fold per-cell payloads into a :class:`Table2Result`.

    Shared by :func:`run_table2` and the ``reproctl`` client, so a table
    assembled from daemon-streamed payloads is byte-identical to one
    produced by a local serial run.
    """
    result = Table2Result(scale=scale)
    for cell, payload in zip(cells, payloads):
        for app_name, delta in payload["counts"].items():
            result.counts.setdefault(app_name, {})[cell.environment] = delta
        if "metrics" in payload:
            result.health[cell.environment] = payload["metrics"]
    return result


def run_table2(
    scale: float = 0.25,
    platform_factory: Optional[Callable[[], PlatformConfig]] = None,
    apps: Optional[List[ApplicationWorkload]] = None,
    jobs: int = 1,
    cache: Optional[CellCache] = None,
    warm_start: bool = False,
    backend: str = "auto",
    enforce_integrity: bool = False,
    waive: tuple = (),
    shards: int = 2,
) -> Table2Result:
    """Run the five applications under both monitoring configurations.

    ``warm_start`` restores each granularity's monitored system from a
    shared post-boot snapshot instead of booting it (see repro.state);
    ``backend`` picks the cell execution backend (see ``run_cells``).
    ``enforce_integrity`` fails the run (IntegrityError) if the MBM
    pipeline lost events — for Table 2 that means the trap counts
    themselves would be short; ``waive`` accepts named checks.
    """
    cells = table2_cells(scale, platform_factory, apps)
    if warm_start:
        attach_boot_snapshots(
            cells, cache_dir=cache.directory if cache is not None else None
        )
    payloads = run_cells(
        cells, jobs=jobs, cache=cache, backend=backend,
        integrity="enforce" if enforce_integrity else "ignore", waive=waive,
        shards=shards,
    )
    return merge_table2(cells, payloads, scale)
