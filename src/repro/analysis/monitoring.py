"""Table 2 runner: word- vs page-granularity monitoring trap counts.

Reproduces the paper's section 7.2 methodology exactly:

* **word granularity** — the cred and dentry monitors register only the
  sensitive fields of their objects; every MBM detection is one trap.
* **page granularity (estimated)** — a second configuration registers
  the *entire* objects; its detection count equals the permission
  faults a page-granularity (stage-2 read-only) framework would take
  if the target objects were aggregated onto monitored pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.config import PlatformConfig
from repro.core.hypernel import build_hypernel
from repro.analysis import paper
from repro.analysis.compare import format_table
from repro.security.baseline_page import WholeObjectMonitor
from repro.security.cred_monitor import CredIntegrityMonitor
from repro.security.dentry_monitor import DentryIntegrityMonitor
from repro.workloads.apps import ApplicationWorkload, default_applications

GRANULARITIES = ["page", "word"]


@dataclass
class Table2Result:
    """Measured Table 2: app -> granularity -> trap count."""

    counts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    scale: float = 1.0

    def ratio_percent(self, app: str) -> float:
        row = self.counts[app]
        if row["page"] == 0:
            return 0.0
        return row["word"] / row["page"] * 100.0

    def mean_ratio_percent(self) -> float:
        total_word = sum(row["word"] for row in self.counts.values())
        total_page = sum(row["page"] for row in self.counts.values())
        if total_page == 0:
            return 0.0
        return total_word / total_page * 100.0

    def format(self, include_paper: bool = True) -> str:
        headers = ["benchmark", "page-granularity", "word-granularity", "ratio"]
        if include_paper:
            headers += ["paper page", "paper word", "paper ratio"]
        body = []
        for app, row in self.counts.items():
            line = [
                app,
                str(row["page"]),
                str(row["word"]),
                f"{self.ratio_percent(app):.1f}%",
            ]
            if include_paper and app in paper.TABLE2:
                p = paper.TABLE2[app]
                line += [str(p["page"]), str(p["word"]),
                         f"{p['word'] / p['page'] * 100:.1f}%"]
            body.append(line)
        table = format_table(headers, body)
        footer = (
            f"\noverall word/page ratio: {self.mean_ratio_percent():.1f}% "
            f"(paper: {paper.TABLE2_MEAN_RATIO:.1f}%)"
            f"   [workload scale = {self.scale}]"
        )
        return table + footer


def _word_granularity_monitors():
    return [CredIntegrityMonitor(), DentryIntegrityMonitor()]


def _page_granularity_monitors():
    return [WholeObjectMonitor(("cred", "dentry"))]


def run_table2(
    scale: float = 0.25,
    platform_factory: Optional[Callable[[], PlatformConfig]] = None,
    apps: Optional[List[ApplicationWorkload]] = None,
) -> Table2Result:
    """Run the five applications under both monitoring configurations."""
    result = Table2Result(scale=scale)
    for granularity in GRANULARITIES:
        monitors = (
            _page_granularity_monitors()
            if granularity == "page"
            else _word_granularity_monitors()
        )
        kwargs = {}
        if platform_factory is not None:
            kwargs["platform_config"] = platform_factory()
        system = build_hypernel(with_mbm=True, monitors=monitors, **kwargs)
        shell = system.spawn_init()
        run_apps = apps if apps is not None else default_applications(scale)
        for app in run_apps:
            app.prepare(system, shell)
            before = system.mbm.events_detected
            app.run(system, shell)
            delta = system.mbm.events_detected - before
            result.counts.setdefault(app.name, {})[granularity] = delta
    return result
