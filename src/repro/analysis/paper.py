"""The values reported in the paper (for comparison output).

Source: Kwon et al., "Hypernel: A Hardware-Assisted Framework for Kernel
Protection without Nested Paging", DAC 2018 — Tables 1, 2 and the
Figure 6 / section 7.1.1 averages.
"""

#: Table 1: LMbench kernel-operation latencies (µs).
TABLE1 = {
    "syscall stat": {"native": 1.92, "kvm-guest": 1.83, "hypernel": 1.94},
    "signal install": {"native": 0.68, "kvm-guest": 0.75, "hypernel": 0.68},
    "signal ovh": {"native": 2.96, "kvm-guest": 3.38, "hypernel": 2.98},
    "pipe lat": {"native": 10.07, "kvm-guest": 11.45, "hypernel": 10.68},
    "socket lat": {"native": 13.76, "kvm-guest": 16.08, "hypernel": 14.51},
    "fork+exit": {"native": 271.68, "kvm-guest": 337.84, "hypernel": 314.77},
    "fork+execv": {"native": 285.53, "kvm-guest": 351.81, "hypernel": 340.70},
    "page fault": {"native": 1.57, "kvm-guest": 1.98, "hypernel": 1.89},
    "mmap": {"native": 24.60, "kvm-guest": 28.40, "hypernel": 27.50},
}

#: Section 7.1.1: average LMbench slowdown vs native (%).
LMBENCH_AVG_OVERHEAD = {"kvm-guest": 15.5, "hypernel": 8.8}

#: Figure 6 / section 7.1.2: average application overhead vs native (%).
APP_AVG_OVERHEAD = {"kvm-guest": 13.5, "hypernel": 3.1}

#: Table 2: MBM trap counts, page- vs word-granularity monitoring.
TABLE2 = {
    "whetstone": {"page": 525, "word": 48},
    "dhrystone": {"page": 637, "word": 39},
    "untar": {"page": 2_173_870, "word": 96_467},
    "iozone": {"page": 1_510, "word": 117},
    "apache": {"page": 48_650, "word": 1_754},
}

#: Section 7.2: overall word/page trap ratio (%).
TABLE2_MEAN_RATIO = 6.2
