"""One-shot evaluation report: every reproduced result as markdown.

:func:`generate_report` runs Table 1, Figure 6 and Table 2 (and,
optionally, the attack matrix) and renders a self-contained markdown
document with measured-vs-paper columns — the programmatic counterpart
of EXPERIMENTS.md, for users who changed the cost model or workloads
and want a fresh record.

::

    from repro.analysis.report import generate_report
    print(generate_report(scale=0.25))
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.config import PlatformConfig
from repro.analysis import paper
from repro.analysis.figures import run_figure6
from repro.analysis.monitoring import run_table2
from repro.analysis.tables import run_table1
from repro.obs.metrics import RunMetrics
from repro.tools.runner import CellCache
from repro.workloads.lmbench import LMBENCH_OPS


def _attack_matrix(platform_factory) -> List[str]:
    from repro.core.hypernel import build_hypernel, build_native
    from repro.kernel.kernel import KernelConfig
    from repro.security import CredIntegrityMonitor, DentryIntegrityMonitor
    from repro.attacks import (
        AtraAttack,
        CredEscalationAttack,
        DentryHijackAttack,
        MmuDisableAttack,
        PageTableTamperAttack,
        TtbrSwitchAttack,
    )

    def verdict(outcome) -> str:
        if outcome.blocked:
            return "blocked"
        if outcome.detected:
            return "detected"
        return "silent success"

    lines = ["| attack | native | hypernel |", "|---|---|---|"]
    systems = {}
    victims = {}
    for name in ("native", "hypernel"):
        if name == "native":
            system = build_native(
                platform_config=platform_factory(),
                kernel_config=KernelConfig(linear_map_mode="page"),
            )
        else:
            system = build_hypernel(
                platform_config=platform_factory(),
                monitors=[CredIntegrityMonitor(), DentryIntegrityMonitor()],
            )
        kernel = system.kernel
        init = system.spawn_init()
        victim = kernel.sys.fork(init)
        kernel.procs.context_switch(victim)
        kernel.sys.setuid(victim, 1000)
        kernel.vfs.mkdir_p("/etc")
        kernel.sys.creat(victim, "/etc/passwd")
        systems[name], victims[name] = system, victim
    scenarios = [
        ("cred escalation", lambda s, v: CredEscalationAttack().mount(s, v)),
        ("dentry hijack", lambda s, v: DentryHijackAttack().mount(s, "/etc/passwd")),
        ("page-table tamper", lambda s, v: PageTableTamperAttack().mount(s)),
        ("TTBR switch", lambda s, v: TtbrSwitchAttack().mount(s)),
        ("MMU disable", lambda s, v: MmuDisableAttack().mount(s)),
        ("ATRA", lambda s, v: AtraAttack().mount(s, v)),
    ]
    for label, mount in scenarios:
        row = [label]
        for name in ("native", "hypernel"):
            row.append(verdict(mount(systems[name], victims[name])))
        lines.append("| " + " | ".join(row) + " |")
    return lines


def health_lines(sections: Dict[str, Dict[str, dict]]) -> List[str]:
    """Render the run-health table from per-experiment health maps.

    ``sections`` maps an experiment title to its result's ``health``
    attribute (cell name -> serialized RunMetrics).  Cells without an
    MBM report ``n/a`` integrity; cells with one report ``ok``,
    ``WAIVED`` or ``FAILED <check> = <value>`` per failing counter, so
    a lossy run is visible (and nameable) straight from the report.
    """
    lines = [
        "| experiment | cell | integrity | events | lost | fifo high-water "
        "| bitmap-cache hits | irqs/event |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for experiment, health in sections.items():
        for cell_name, data in health.items():
            metrics = RunMetrics.from_dict(data)
            if not metrics.checks:
                lines.append(
                    f"| {experiment} | {cell_name} | n/a (no MBM) "
                    f"| - | - | - | - | - |"
                )
                continue
            failures = metrics.failures
            if failures:
                verdict = "FAILED " + ", ".join(
                    f"{check.name} = {check.value}" for check in failures
                )
            elif any(check.waived and not check.passed
                     for check in metrics.checks):
                verdict = "WAIVED"
            else:
                verdict = "ok"
            gauges = metrics.gauges
            lines.append(
                f"| {experiment} | {cell_name} | {verdict} "
                f"| {int(gauges.get('events_detected', 0))} "
                f"| {int(gauges.get('events_lost', 0))} "
                f"| {int(gauges.get('fifo_high_water', 0))}"
                f"/{int(gauges.get('fifo_depth', 0))} "
                f"| {gauges.get('bitmap_cache_hit_rate', 0.0) * 100:.1f}% "
                f"| {gauges.get('irqs_per_detection', 0.0):.2f} |"
            )
    return lines


def generate_report(
    scale: float = 0.25,
    platform_factory: Optional[Callable[[], PlatformConfig]] = None,
    include_attacks: bool = True,
    jobs: int = 1,
    cache: Optional[CellCache] = None,
    warm_start: bool = False,
    backend: str = "auto",
    enforce_integrity: bool = False,
    waive: tuple = (),
    shards: int = 2,
) -> str:
    """Run the full evaluation and return it as a markdown document.

    ``jobs``, ``cache``, ``warm_start`` and ``backend`` are forwarded to
    the three cell-based experiment runners (the attack matrix stays
    in-process: its scenarios share mutable victim systems).  The report
    always ends with a run-health section; ``enforce_integrity``
    additionally *fails* generation with an IntegrityError when the
    monitoring pipeline lost events (``waive`` accepts named checks).
    """
    if platform_factory is None:
        platform_factory = lambda: PlatformConfig(  # noqa: E731
            dram_bytes=192 * 1024 * 1024, secure_bytes=24 * 1024 * 1024
        )
    runner_kwargs = {"jobs": jobs, "cache": cache, "warm_start": warm_start,
                     "backend": backend, "shards": shards,
                     "enforce_integrity": enforce_integrity, "waive": waive}
    lines: List[str] = [
        "# Hypernel reproduction — evaluation report",
        "",
        f"Workload scale: {scale}; platform: "
        f"{platform_factory().dram_bytes // (1 << 20)} MB DRAM.",
        "",
        "## Table 1 — LMbench kernel operations (µs)",
        "",
        "| test | native | kvm-guest | hypernel | paper native | paper kvm | paper hypernel |",
        "|---|---|---|---|---|---|---|",
    ]
    table1 = run_table1(platform_factory=platform_factory, **runner_kwargs)
    for op in LMBENCH_OPS:
        row = table1.rows[op]
        p = paper.TABLE1[op]
        lines.append(
            f"| {op} | {row['native']:.2f} | {row['kvm-guest']:.2f} | "
            f"{row['hypernel']:.2f} | {p['native']:.2f} | "
            f"{p['kvm-guest']:.2f} | {p['hypernel']:.2f} |"
        )
    lines += [
        "",
        f"Average overhead vs native: kvm-guest "
        f"{table1.average_overhead('kvm-guest'):+.1f}% (paper "
        f"{paper.LMBENCH_AVG_OVERHEAD['kvm-guest']:+.1f}%), hypernel "
        f"{table1.average_overhead('hypernel'):+.1f}% (paper "
        f"{paper.LMBENCH_AVG_OVERHEAD['hypernel']:+.1f}%).",
        "",
        "## Figure 6 — application benchmarks (normalized)",
        "",
        "| benchmark | kvm-guest | hypernel |",
        "|---|---|---|",
    ]
    fig6 = run_figure6(scale=scale, platform_factory=platform_factory,
                       **runner_kwargs)
    for app, row in fig6.normalized.items():
        lines.append(
            f"| {app} | {row['kvm-guest']:.3f} | {row['hypernel']:.3f} |"
        )
    lines += [
        "",
        f"Average overhead: kvm-guest "
        f"{fig6.average_overhead('kvm-guest'):+.1f}% (paper "
        f"{paper.APP_AVG_OVERHEAD['kvm-guest']:+.1f}%), hypernel "
        f"{fig6.average_overhead('hypernel'):+.1f}% (paper "
        f"{paper.APP_AVG_OVERHEAD['hypernel']:+.1f}%).",
        "",
        "## Table 2 — monitoring trap counts",
        "",
        "| benchmark | page | word | ratio | paper ratio |",
        "|---|---|---|---|---|",
    ]
    table2 = run_table2(scale=scale, platform_factory=platform_factory,
                        **runner_kwargs)
    for app, row in table2.counts.items():
        p = paper.TABLE2.get(app)
        paper_ratio = (
            f"{p['word'] / p['page'] * 100:.1f}%" if p else "-"
        )
        lines.append(
            f"| {app} | {row['page']} | {row['word']} | "
            f"{table2.ratio_percent(app):.1f}% | {paper_ratio} |"
        )
    lines += [
        "",
        f"Overall word/page ratio: {table2.mean_ratio_percent():.1f}% "
        f"(paper {paper.TABLE2_MEAN_RATIO:.1f}%).",
    ]
    if include_attacks:
        lines += ["", "## Attack matrix", ""]
        lines += _attack_matrix(platform_factory)
    lines += ["", "## Run health", ""]
    lines += health_lines(
        {
            "table1": table1.health,
            "figure6": fig6.health,
            "table2": table2.health,
        }
    )
    lines.append("")
    return "\n".join(lines)
