"""Table 1 runner: LMbench kernel operations on the three systems.

Each system configuration is one independent :class:`~repro.tools.runner.Cell`
(fresh machine, full op sweep), so Table 1 regenerates in parallel with
``jobs > 1`` and caches per-system results content-addressed; the merged
table is byte-identical to a serial run (see DESIGN.md §5b).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.config import PlatformConfig
from repro.core.hypernel import build_system
from repro.analysis import paper
from repro.analysis.compare import arithmetic_mean, format_table, overhead_percent
from repro.tools.runner import Cell, CellCache, attach_boot_snapshots, run_cells
from repro.workloads.lmbench import LMBENCH_OPS, LmbenchSuite

SYSTEMS = ["native", "kvm-guest", "hypernel"]


@dataclass
class Table1Result:
    """Measured Table 1: op -> system -> µs."""

    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Per-cell observability reports (environment -> RunMetrics dict);
    #: rendered by the report's run-health section.  Never feeds the
    #: table values, so the table stays byte-identical either way.
    health: Dict[str, dict] = field(default_factory=dict)

    def average_overhead(self, system: str) -> float:
        """Average slowdown vs native over all ops (paper section 7.1.1)."""
        overheads = [
            overhead_percent(values[system], values["native"])
            for values in self.rows.values()
        ]
        return arithmetic_mean(overheads)

    def format(self, include_paper: bool = True) -> str:
        headers = ["Test"] + [f"{s} (µs)" for s in SYSTEMS]
        if include_paper:
            headers += [f"paper {s}" for s in SYSTEMS]
        body = []
        for op in self.rows:
            row = [op] + [f"{self.rows[op][s]:.2f}" for s in SYSTEMS]
            if include_paper:
                row += [f"{paper.TABLE1[op][s]:.2f}" for s in SYSTEMS]
            body.append(row)
        table = format_table(headers, body)
        footer = (
            f"\naverage overhead vs native: "
            f"kvm-guest {self.average_overhead('kvm-guest'):+.1f}% "
            f"(paper {paper.LMBENCH_AVG_OVERHEAD['kvm-guest']:+.1f}%), "
            f"hypernel {self.average_overhead('hypernel'):+.1f}% "
            f"(paper {paper.LMBENCH_AVG_OVERHEAD['hypernel']:+.1f}%)"
        )
        return table + footer


def table1_cells(
    platform_factory: Optional[Callable[[], PlatformConfig]] = None,
    warmup: int = 4,
    iterations: int = 16,
    ops: Optional[List[str]] = None,
) -> List[Cell]:
    """One cell per system configuration, in ``SYSTEMS`` order."""
    ops = list(ops or LMBENCH_OPS)
    return [
        Cell(
            kind="table1",
            environment=system_name,
            workload="lmbench",
            spec={"ops": ops, "warmup": warmup, "iterations": iterations},
            platform_config=(
                platform_factory() if platform_factory is not None else None
            ),
        )
        for system_name in SYSTEMS
    ]


def cell_build_args(cell: Cell) -> tuple:
    """``(system_name, build_kwargs)`` for this cell's environment."""
    kwargs: Dict[str, Any] = {}
    if cell.environment == "hypernel":
        kwargs["with_mbm"] = False  # paper 7.1: only Hypersec active
    if cell.environment == "kvm-guest":
        # Steady-state measurement: a long-running guest has its
        # memory stage-2-mapped already (cold faults are boot noise).
        kwargs["prepopulate_stage2"] = True
    return cell.environment, kwargs


def cell_system(cell: Cell):
    """Boot the cell's system — or restore its warm-start snapshot."""
    name, kwargs = cell_build_args(cell)
    if cell.snapshot_path:
        return build_system(name, from_snapshot=cell.snapshot_path)
    if cell.platform_config is not None:
        kwargs["platform_config"] = cell.platform_config
    return build_system(name, **kwargs)


def execute_cell_on(cell: Cell, system) -> Dict[str, Any]:
    """Run the cell's LMbench sweep on a pristine, pre-built ``system``.

    The fork-server backend boots (or restores) one system per
    environment and forks a copy-on-write child per cell; the child
    lands here with the inherited machine.  The serial and pool paths
    reach the same code through :func:`execute_cell`, so every backend
    runs the identical workload body.
    """
    from repro.obs import collect_metrics
    from repro.tools.macroops import MacroOpEngine, memoization_enabled
    from repro.tools.perf import count_accesses

    spec = cell.spec
    suite = LmbenchSuite(
        system, warmup=spec["warmup"], iterations=spec["iterations"],
        engine=MacroOpEngine(system) if memoization_enabled() else None,
    )
    suite.setup()
    # Fabric subcells carry the ops preceding their slice (the machine's
    # state evolves op by op); re-executing them unrecorded reproduces
    # the unsplit run's exact state sequence, so the measured rows merge
    # byte-identically into the unsplit table (repro.service.fabric).
    for op in spec.get("context_ops", ()):
        suite.run_op(op)
    rows = {op: suite.run_op(op).microseconds for op in spec["ops"]}
    return {
        "rows": rows,
        "accesses": count_accesses(system),
        "sim_cycles": system.platform.clock.now,
        "metrics": collect_metrics(system).to_dict(),
    }


def execute_cell(cell: Cell) -> Dict[str, Any]:
    """Worker body: build one system, run its LMbench sweep."""
    return execute_cell_on(cell, cell_system(cell))


def merge_table1(
    cells: List[Cell], payloads: List[Dict[str, Any]],
    ops: Optional[List[str]] = None,
) -> Table1Result:
    """Fold per-cell payloads into a :class:`Table1Result`.

    Shared by :func:`run_table1` and the ``reproctl`` client, so a table
    assembled from daemon-streamed payloads is byte-identical to one
    produced by a local serial run.

    Accepts fabric-split subcells (``repro.service.fabric.split_cell``)
    transparently: each subcell payload carries a subset of the rows,
    measured after re-executing the preceding ops unrecorded (the
    worker honours ``context_ops``), so folding the subsets rebuilds
    the unsplit table byte for byte.  Without an explicit
    ``ops`` list the row order is the first-seen union across cells,
    which for subcells reproduces the original op order (splitting is
    contiguous and order-preserving).  ``health`` keeps the last
    payload seen per environment; it is advisory (never rendered into
    the table) and any subcell's metrics block answers the same
    "did monitoring lose events" question.
    """
    if ops is None:
        seen: List[str] = []
        for cell in cells:
            for op in cell.spec.get("ops", []):
                if op not in seen:
                    seen.append(op)
        ops = seen or list(LMBENCH_OPS)
    else:
        ops = list(ops)
    result = Table1Result(rows={op: {} for op in ops})
    for cell, payload in zip(cells, payloads):
        for op in ops:
            if op in payload["rows"]:
                result.rows[op][cell.environment] = payload["rows"][op]
        if "metrics" in payload:
            result.health[cell.environment] = payload["metrics"]
    return result


def run_table1(
    platform_factory: Optional[Callable[[], PlatformConfig]] = None,
    warmup: int = 4,
    iterations: int = 16,
    ops: Optional[List[str]] = None,
    jobs: int = 1,
    cache: Optional[CellCache] = None,
    warm_start: bool = False,
    backend: str = "auto",
    enforce_integrity: bool = False,
    waive: tuple = (),
    shards: int = 2,
) -> Table1Result:
    """Build each system, run the LMbench suite, collect Table 1.

    With ``warm_start``, each cell restores a shared post-boot snapshot
    of its system instead of booting (bit-identical by the repro.state
    contract, so the table itself is byte-identical either way).
    ``backend`` picks the cell execution backend (see ``run_cells``);
    headed for the fabric, the three system cells are adaptively split
    into per-op-subset subcells so ``shards`` daemons all get work —
    :func:`merge_table1` folds the subsets back byte-identically.
    ``enforce_integrity`` fails the run (IntegrityError) if any cell's
    monitoring pipeline lost events; ``waive`` accepts named checks.
    """
    ops = list(ops or LMBENCH_OPS)
    cells = table1_cells(platform_factory, warmup, iterations, ops)
    if backend == "fabric" or os.environ.get("REPRO_BENCH_BACKEND"):
        from repro.service.fabric import maybe_split_for_fabric

        cells = maybe_split_for_fabric(cells, backend, shards, jobs)
    if warm_start:
        attach_boot_snapshots(
            cells, cache_dir=cache.directory if cache is not None else None
        )
    payloads = run_cells(
        cells, jobs=jobs, cache=cache, backend=backend,
        integrity="enforce" if enforce_integrity else "ignore", waive=waive,
        shards=shards,
    )
    return merge_table1(cells, payloads, ops)
