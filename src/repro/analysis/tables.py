"""Table 1 runner: LMbench kernel operations on the three systems."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.config import PlatformConfig
from repro.core.hypernel import build_system
from repro.analysis import paper
from repro.analysis.compare import arithmetic_mean, format_table, overhead_percent
from repro.workloads.lmbench import LMBENCH_OPS, LmbenchSuite

SYSTEMS = ["native", "kvm-guest", "hypernel"]


@dataclass
class Table1Result:
    """Measured Table 1: op -> system -> µs."""

    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def average_overhead(self, system: str) -> float:
        """Average slowdown vs native over all ops (paper section 7.1.1)."""
        overheads = [
            overhead_percent(values[system], values["native"])
            for values in self.rows.values()
        ]
        return arithmetic_mean(overheads)

    def format(self, include_paper: bool = True) -> str:
        headers = ["Test"] + [f"{s} (µs)" for s in SYSTEMS]
        if include_paper:
            headers += [f"paper {s}" for s in SYSTEMS]
        body = []
        for op in LMBENCH_OPS:
            row = [op] + [f"{self.rows[op][s]:.2f}" for s in SYSTEMS]
            if include_paper:
                row += [f"{paper.TABLE1[op][s]:.2f}" for s in SYSTEMS]
            body.append(row)
        table = format_table(headers, body)
        footer = (
            f"\naverage overhead vs native: "
            f"kvm-guest {self.average_overhead('kvm-guest'):+.1f}% "
            f"(paper {paper.LMBENCH_AVG_OVERHEAD['kvm-guest']:+.1f}%), "
            f"hypernel {self.average_overhead('hypernel'):+.1f}% "
            f"(paper {paper.LMBENCH_AVG_OVERHEAD['hypernel']:+.1f}%)"
        )
        return table + footer


def run_table1(
    platform_factory: Optional[Callable[[], PlatformConfig]] = None,
    warmup: int = 4,
    iterations: int = 16,
    ops: Optional[List[str]] = None,
) -> Table1Result:
    """Build each system, run the LMbench suite, collect Table 1."""
    ops = ops or LMBENCH_OPS
    result = Table1Result(rows={op: {} for op in ops})
    for system_name in SYSTEMS:
        kwargs = {}
        if platform_factory is not None:
            kwargs["platform_config"] = platform_factory()
        if system_name == "hypernel":
            kwargs["with_mbm"] = False  # paper 7.1: only Hypersec active
        if system_name == "kvm-guest":
            # Steady-state measurement: a long-running guest has its
            # memory stage-2-mapped already (cold faults are boot noise).
            kwargs["prepopulate_stage2"] = True
        system = build_system(system_name, **kwargs)
        suite = LmbenchSuite(system, warmup=warmup, iterations=iterations)
        suite.setup()
        for op in ops:
            result.rows[op][system_name] = suite.run_op(op).microseconds
    return result
