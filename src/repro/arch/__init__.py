"""Architecture layer: an AArch64-flavoured machine model.

Models the subset of the 64-bit ARM architecture that Hypernel depends
on (paper section 3): exception levels EL0/EL1/EL2, the virtualization
extension (HVC hypercalls, HCR_EL2.TVM instruction trapping, optional
stage-2 translation), and a 3-level 4 KB-granule translation regime with
TTBR0/TTBR1 split — the layout Linux 3.10 used on AArch64 (39-bit VAs).
"""

from repro.arch.cpu import CPUCore
from repro.arch.exceptions import EL0, EL1, EL2, EL2Vector
from repro.arch.mmu import MMU, TLB, TranslationResult
from repro.arch.pagetable import (
    DESC_AP_WRITE,
    DESC_COW,
    DESC_NC,
    DESC_TABLE,
    DESC_USER,
    DESC_VALID,
    DESC_XN,
    Descriptor,
    KERNEL_VA_BASE,
    LEVELS,
    USER_VA_LIMIT,
    index_for_level,
    make_block_desc,
    make_page_desc,
    make_table_desc,
)
from repro.arch.registers import (
    HCR_TVM,
    HCR_VM,
    SystemRegisters,
    VM_CONTROL_REGISTERS,
)

__all__ = [
    "CPUCore",
    "DESC_AP_WRITE",
    "DESC_COW",
    "DESC_NC",
    "DESC_TABLE",
    "DESC_USER",
    "DESC_VALID",
    "DESC_XN",
    "Descriptor",
    "EL0",
    "EL1",
    "EL2",
    "EL2Vector",
    "HCR_TVM",
    "HCR_VM",
    "KERNEL_VA_BASE",
    "LEVELS",
    "MMU",
    "SystemRegisters",
    "TLB",
    "TranslationResult",
    "USER_VA_LIMIT",
    "VM_CONTROL_REGISTERS",
    "index_for_level",
    "make_block_desc",
    "make_page_desc",
    "make_table_desc",
]
