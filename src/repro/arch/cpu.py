"""The CPU core model.

The core does not fetch and decode an instruction stream; kernel and
workload code *is* Python code that calls into this model for everything
architecturally visible:

* :meth:`CPUCore.read` / :meth:`CPUCore.write` / block variants — memory
  accesses, fully translated through the MMU and cache hierarchy.
* :meth:`CPUCore.msr` / :meth:`CPUCore.mrs` — system-register accesses,
  with ``HCR_EL2.TVM`` trapping to the installed EL2 vector.
* :meth:`CPUCore.hvc` — hypercalls into EL2.
* :meth:`CPUCore.compute` — cycles for unmodelled straight-line work.

Under nested paging, stage-2 faults raised mid-access trigger a VM exit
to the EL2 vector (KVM model) and the access is retried, charging the
world-switch costs — the mechanism behind the KVM columns of Table 1.
"""

from __future__ import annotations

from typing import List

from repro.config import PAGE_BYTES, WORD_BYTES
from repro.errors import SimulationError, Stage2Fault, TrappedInstruction
from repro.hw.platform import Platform
from repro.arch.exceptions import EL1, EL2, EL2Vector
from repro.arch.mmu import MMU, TranslationResult
from repro.arch.registers import SystemRegisters, VM_CONTROL_REGISTERS
from repro.utils.stats import StatSet

_MAX_STAGE2_RETRIES = 8


class CPUCore:
    """One simulated core wired to a :class:`~repro.hw.platform.Platform`."""

    def __init__(self, platform: Platform):
        self.platform = platform
        self.clock = platform.clock
        self.costs = platform.config.costs
        self.regs = SystemRegisters()
        self.mmu = MMU(
            platform.caches,
            self.regs,
            self.costs,
            tlb_entries=platform.config.tlb_entries,
            stage2_tlb_entries=platform.config.stage2_tlb_entries,
        )
        self.current_el = EL1
        self.el2_vector: EL2Vector | None = None
        self._reads = 0
        self._writes = 0
        self.stats = StatSet("cpu")
        self.stats.flush_hook = self._flush_stats

    def _flush_stats(self) -> None:
        if self._reads:
            reads, self._reads = self._reads, 0
            self.stats.add("reads", reads)
        if self._writes:
            writes, self._writes = self._writes, 0
            self.stats.add("writes", writes)

    def state_dict(self) -> dict:
        """Register file, MMU/TLB state and counters.  The EL2 vector is
        wiring, reinstalled by whichever resident owns it."""
        return {
            "current_el": self.current_el,
            "regs": self.regs.state_dict(),
            "mmu": self.mmu.state_dict(),
            "stats": self.stats.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self.current_el = int(state["current_el"])
        self.regs.load_state(state["regs"])
        self.mmu.load_state(state["mmu"])
        self.stats.load_state(state["stats"])
        self._reads = 0
        self._writes = 0

    # ------------------------------------------------------------------
    # EL2 installation
    # ------------------------------------------------------------------
    def install_el2_vector(self, vector: EL2Vector) -> None:
        """Install the EL2 resident (Hypersec or the KVM model)."""
        self.el2_vector = vector

    # ------------------------------------------------------------------
    # Translation with VM-exit retry
    # ------------------------------------------------------------------
    def _translate(self, vaddr: int, is_write: bool, el: int) -> TranslationResult:
        for _ in range(_MAX_STAGE2_RETRIES):
            try:
                return self.mmu.translate(vaddr, is_write=is_write, el=el)
            except Stage2Fault as fault:
                if self.el2_vector is None:
                    raise
                self._vm_exit(fault)
        raise SimulationError(
            f"stage-2 fault livelock translating {vaddr:#x}"
        )

    def _vm_exit(self, fault: Stage2Fault) -> None:
        """Take a VM exit to EL2 for a stage-2 fault, then re-enter."""
        self.stats.add("vm_exits")
        self.clock.advance(self.costs.vm_exit)
        saved_el = self.current_el
        self.current_el = EL2
        try:
            assert self.el2_vector is not None
            self.el2_vector.handle_stage2_fault(self, fault)
        finally:
            self.current_el = saved_el
        self.clock.advance(self.costs.vm_enter)

    # ------------------------------------------------------------------
    # Memory access
    # ------------------------------------------------------------------
    def read(self, vaddr: int, el: int | None = None) -> int:
        """Read one 64-bit word at virtual address ``vaddr``.

        The common case — EL1 access, stage 2 off, MMU on, translation
        answered by the MMU's one-entry fast cache — is inlined end to
        end (translate + cache access) with accounting identical to the
        layered path; anything else falls through to it.
        """
        el = self.current_el if el is None else el
        mmu = self.mmu
        if (
            el == 1
            and (vaddr >> 12) == mmu._fast_vpage
            and mmu.asid == mmu._fast_asid
            and mmu.vmid == mmu._fast_vmid
            and mmu.tlb.epoch == mmu._fast_epoch
            and mmu.regs._mmu_enabled
            and not mmu.regs._stage2_enabled
        ):
            # EL1 reads need no permission check (user/exec/write only).
            entry = mmu._fast_entry
            mmu.tlb._hits += 1
            self._reads += 1
            paddr = entry.page_paddr | (vaddr & 4095)
            caches = self.platform.caches
            if entry.cacheable:
                caches._cached_reads += 1
                l1 = caches.l1
                if l1._line_shift is not None:
                    line = paddr & caches._line_mask
                    lines = l1._sets.get((line >> l1._line_shift) & l1._set_mask)
                    if lines is not None and line in lines:
                        lines.move_to_end(line)
                        l1._hits += 1
                        self.clock.advance(self.costs.l1_hit)
                        return self.platform.bus.memory.read_word(paddr)
                caches._ensure_resident(paddr, "cpu")
                return self.platform.bus.memory.read_word(paddr)
            caches._uncached_reads += 1
            return self.platform.bus.read(paddr)
        result = self._translate(vaddr, is_write=False, el=el)
        self._reads += 1
        return self.platform.caches.read(result.paddr, result.cacheable)

    def write(self, vaddr: int, value: int, el: int | None = None) -> None:
        """Write one 64-bit word at virtual address ``vaddr``.

        Mirrors :meth:`read`'s inline fast path; a write to a
        non-writable page (permission fault, COW break) falls through to
        the layered path, which raises with full context.
        """
        el = self.current_el if el is None else el
        mmu = self.mmu
        if (
            el == 1
            and (vaddr >> 12) == mmu._fast_vpage
            and mmu.asid == mmu._fast_asid
            and mmu.vmid == mmu._fast_vmid
            and mmu.tlb.epoch == mmu._fast_epoch
            and mmu.regs._mmu_enabled
            and not mmu.regs._stage2_enabled
        ):
            entry = mmu._fast_entry
            if entry.writable:
                mmu.tlb._hits += 1
                self._writes += 1
                paddr = entry.page_paddr | (vaddr & 4095)
                caches = self.platform.caches
                if entry.cacheable:
                    caches._cached_writes += 1
                    l1 = caches.l1
                    if l1._line_shift is not None:
                        line = paddr & caches._line_mask
                        lines = l1._sets.get((line >> l1._line_shift) & l1._set_mask)
                        if lines is not None and line in lines:
                            lines.move_to_end(line)
                            lines[line] = True
                            l1._hits += 1
                            self.clock.advance(self.costs.l1_hit)
                            self.platform.bus.memory.write_word(paddr, value)
                            return
                    caches._ensure_resident(paddr, "cpu")
                    caches.l1.mark_dirty(paddr & caches._line_mask)
                    self.platform.bus.memory.write_word(paddr, value)
                    return
                caches._uncached_writes += 1
                self.platform.bus.write(paddr, value)
                return
        result = self._translate(vaddr, is_write=True, el=el)
        self._writes += 1
        self.platform.caches.write(result.paddr, value, result.cacheable)

    def write_block(self, vaddr: int, nwords: int, el: int | None = None) -> None:
        """Model a bulk sequential write of ``nwords`` words at ``vaddr``.

        Used for data streams whose individual values the simulation does
        not track; the covered ranges still reach the bus (and hence the
        MBM) when the pages are non-cacheable.
        """
        el = self.current_el if el is None else el
        # Fast path: the run fits in one page (page-aligned bulk ops —
        # zero_page, image builds — always do), skipping the split list.
        room = (PAGE_BYTES - (vaddr & (PAGE_BYTES - 1))) // WORD_BYTES
        if nwords <= room:
            result = self._translate(vaddr, is_write=True, el=el)
            self.stats.add("block_write_words", nwords)
            if result.cacheable:
                self.platform.caches.touch_block(result.paddr, nwords, is_write=True)
            else:
                self.platform.bus.write_block(result.paddr, nwords)
            return
        for page_vaddr, page_words in self._split_pages(vaddr, nwords):
            result = self._translate(page_vaddr, is_write=True, el=el)
            self.stats.add("block_write_words", page_words)
            if result.cacheable:
                self.platform.caches.touch_block(
                    result.paddr, page_words, is_write=True
                )
            else:
                self.platform.bus.write_block(result.paddr, page_words)

    def read_block(self, vaddr: int, nwords: int, el: int | None = None) -> None:
        """Model a bulk sequential read (timing only)."""
        el = self.current_el if el is None else el
        for page_vaddr, page_words in self._split_pages(vaddr, nwords):
            result = self._translate(page_vaddr, is_write=False, el=el)
            self.stats.add("block_read_words", page_words)
            if result.cacheable:
                self.platform.caches.touch_block(
                    result.paddr, page_words, is_write=False
                )
            else:
                self.clock.advance(
                    self.platform.dram.burst_cycles(result.paddr, page_words)
                )

    @staticmethod
    def _split_pages(vaddr: int, nwords: int) -> List[tuple[int, int]]:
        """Split a word run into (page-local vaddr, word count) chunks."""
        chunks: List[tuple[int, int]] = []
        remaining = nwords
        cursor = vaddr
        while remaining > 0:
            room = (PAGE_BYTES - (cursor & (PAGE_BYTES - 1))) // WORD_BYTES
            take = min(remaining, room)
            chunks.append((cursor, take))
            cursor += take * WORD_BYTES
            remaining -= take
        return chunks

    def compute(self, cycles: int) -> None:
        """Charge ``cycles`` of straight-line (non-memory) execution."""
        self.clock.advance(cycles)

    # ------------------------------------------------------------------
    # System-register access (MSR/MRS) with TVM trapping
    # ------------------------------------------------------------------
    def msr(self, register: str, value: int) -> None:
        """Write a system register from the current exception level.

        When executed at EL1 with HCR_EL2.TVM set, writes to the
        VM-control registers trap to the installed EL2 vector — the
        mechanism of paper section 5.2.2.
        """
        if (
            self.current_el == EL1
            and register in VM_CONTROL_REGISTERS
            and self.regs.tvm_enabled
            and self.el2_vector is not None
        ):
            self.stats.add("trapped_msr")
            self.clock.advance(self.costs.trap_entry)
            saved_el = self.current_el
            self.current_el = EL2
            try:
                self.el2_vector.handle_trapped_msr(self, register, value)
            finally:
                self.current_el = saved_el
            self.clock.advance(self.costs.trap_exit)
            return
        if self.current_el == EL1 and register.endswith("_EL2"):
            raise TrappedInstruction(
                f"EL1 attempted to write EL2 register {register}", register, value
            )
        self.stats.add("msr")
        self.regs.write(register, value)

    def mrs(self, register: str) -> int:
        """Read a system register (reads are not trapped by TVM)."""
        if self.current_el == EL1 and register.endswith("_EL2"):
            raise TrappedInstruction(
                f"EL1 attempted to read EL2 register {register}", register, 0
            )
        return self.regs.read(register)

    # ------------------------------------------------------------------
    # Hypercall (HVC)
    # ------------------------------------------------------------------
    def hvc(self, func: int, *args: int) -> int:
        """Execute a hypercall into the installed EL2 vector."""
        if self.el2_vector is None:
            raise SimulationError("HVC executed but nothing is installed at EL2")
        self.stats.add("hvc")
        self.clock.advance(self.costs.hvc_entry)
        saved_el = self.current_el
        self.current_el = EL2
        try:
            result = self.el2_vector.handle_hvc(self, func, args)
        finally:
            self.current_el = saved_el
        self.clock.advance(self.costs.hvc_exit)
        return result

    # ------------------------------------------------------------------
    # TLB maintenance instructions
    # ------------------------------------------------------------------
    def tlbi_all(self) -> None:
        """TLBI VMALLE1: drop all stage-1 TLB entries."""
        self.stats.add("tlbi")
        self.mmu.invalidate_all()

    def tlbi_asid(self, asid: int) -> None:
        """TLBI ASIDE1: drop entries for one ASID."""
        self.stats.add("tlbi")
        self.mmu.invalidate_asid(asid)

    def tlbi_va(self, vaddr: int) -> None:
        """TLBI VAE1: drop entries for one page."""
        self.stats.add("tlbi")
        self.mmu.invalidate_va(vaddr)

    def __repr__(self) -> str:
        return f"CPUCore(EL{self.current_el}, {self.clock.now} cycles)"
