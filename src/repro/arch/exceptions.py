"""Exception levels and the EL2 vector interface.

Paper Figure 1: user applications run at EL0, the kernel at EL1, and the
hypervisor-privilege software (KVM, or Hypernel's Hypersec) at EL2.

Anything installed at EL2 implements :class:`EL2Vector`; the CPU model
routes hypercalls (HVC), trapped system-register writes (HCR_EL2.TVM)
and stage-2 faults to it, charging the architectural transition costs.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Sequence

from repro.errors import Stage2Fault

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.arch.cpu import CPUCore

EL0 = 0  #: user applications
EL1 = 1  #: OS kernel
EL2 = 2  #: hypervisor / Hypersec


class EL2Vector(abc.ABC):
    """Handlers for the synchronous exceptions taken to EL2."""

    @abc.abstractmethod
    def handle_hvc(self, cpu: "CPUCore", func: int, args: Sequence[int]) -> int:
        """Service hypercall ``func`` with ``args``; return a result word."""

    @abc.abstractmethod
    def handle_trapped_msr(self, cpu: "CPUCore", register: str, value: int) -> None:
        """Service an EL1 write to a trapped VM-control register.

        The handler decides whether to perform the write (via
        ``cpu.regs.write``) or reject it (raising
        :class:`~repro.errors.SecurityViolation`).
        """

    def handle_stage2_fault(self, cpu: "CPUCore", fault: Stage2Fault) -> None:
        """Service a stage-2 fault (nested-paging configurations only).

        The default raises: an EL2 resident that never enables stage 2
        (Hypersec) should never see one.
        """
        raise fault
