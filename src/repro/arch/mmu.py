"""MMU: TLBs and one- or two-stage translation-table walks.

This module carries the paper's central performance argument:

* Without nested paging (Native, Hypernel) a TLB miss costs one
  **3-descriptor** stage-1 walk.
* With nested paging (KVM baseline) every stage-1 descriptor fetch is
  itself an IPA that must be translated by stage 2, and the final output
  IPA must be translated too — a cold nested walk touches up to
  ``3*3 + 3 + 3 = 15`` descriptors.  A stage-2 TLB (walk cache) absorbs
  most of that in steady state, but the residual cost is exactly the
  overhead Hypernel eliminates (paper sections 1 and 5.2).

Page tables are *real* data structures in simulated physical memory;
walks read descriptors through the cache hierarchy, so walk locality and
cache pressure behave mechanistically.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.config import CostModel, PAGE_BYTES
from repro.errors import PermissionFault, Stage2Fault, TranslationFault
from repro.hw.cache import CacheHierarchy
from repro.arch.pagetable import (
    DESC_AP_WRITE,
    DESC_COW,
    DESC_NC,
    DESC_TABLE,
    DESC_USER,
    DESC_VALID,
    DESC_XN,
    LEVEL_SPAN,
    index_for_level,
    split_vaddr,
)
from repro.arch.pagetable import _ADDR_MASK as DESC_ADDR_MASK
from repro.arch.registers import SystemRegisters
from repro.utils.bitops import align_down
from repro.utils.stats import StatSet

#: ASID value used for global (kernel) mappings in TLB keys.
GLOBAL_ASID = -1


class TranslationResult:
    """Outcome of a successful translation for one 4 KB page.

    A plain slotted class rather than a (frozen) dataclass: one instance
    is built per simulated memory access, and direct attribute stores
    construct several times faster than ``object.__setattr__``.
    """

    __slots__ = ("paddr", "page_paddr", "writable", "user", "cacheable",
                 "cow", "executable", "level")

    def __init__(self, paddr: int, page_paddr: int, writable: bool,
                 user: bool, cacheable: bool, cow: bool, executable: bool,
                 level: int):
        self.paddr = paddr            #: physical address of the location
        self.page_paddr = page_paddr  #: physical base of the 4 KB frame
        self.writable = writable
        self.user = user
        self.cacheable = cacheable
        self.cow = cow
        self.executable = executable
        self.level = level            #: leaf level (2 = 2 MB block, 3 = page)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"TranslationResult(paddr={self.paddr:#x}, "
                f"page_paddr={self.page_paddr:#x}, level={self.level})")


@dataclass(frozen=True)
class _TlbEntry:
    page_paddr: int
    writable: bool
    user: bool
    cacheable: bool
    cow: bool
    executable: bool
    level: int


class TLB:
    """A finite translation cache with FIFO replacement.

    Hit/miss accounting is batched: ``lookup`` bumps plain integers and
    the :class:`StatSet` folds them in lazily (via its ``flush_hook``)
    whenever the stats are read, so the per-lookup cost stays minimal.
    ``epoch`` increments on every mutation (insert or invalidate); the
    MMU's one-entry fast path uses it to know its cached translation is
    still current.
    """

    def __init__(self, name: str, entries: int):
        if entries <= 0:
            raise ValueError(f"TLB must have a positive capacity, got {entries}")
        self.capacity = entries
        self._entries: "OrderedDict[Tuple, _TlbEntry]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self.epoch = 0
        self.stats = StatSet(name)
        self.stats.flush_hook = self._flush_pending

    def _flush_pending(self) -> None:
        if self._hits:
            hits, self._hits = self._hits, 0
            self.stats.add("hits", hits)
        if self._misses:
            misses, self._misses = self._misses, 0
            self.stats.add("misses", misses)

    def lookup(self, key: Tuple) -> Optional[_TlbEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self._misses += 1
        else:
            self._hits += 1
        return entry

    def insert(self, key: Tuple, entry: _TlbEntry) -> None:
        if key in self._entries:
            del self._entries[key]
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.add("evictions")
        self._entries[key] = entry
        self.epoch += 1

    def invalidate_all(self) -> None:
        self.stats.add("invalidate_all")
        self._entries.clear()
        self.epoch += 1

    def invalidate_matching(self, predicate) -> int:
        """Drop all entries whose key satisfies ``predicate``; returns count."""
        entries = self._entries
        kept = OrderedDict(
            (key, entry) for key, entry in entries.items() if not predicate(key)
        )
        dropped = len(entries) - len(kept)
        if dropped:
            self._entries = kept
            self.epoch += 1
        return dropped

    def __len__(self) -> int:
        return len(self._entries)

    def state_dict(self) -> dict:
        """FIFO order, entry contents, epoch and flushed counters."""
        return {
            "entries": [
                [list(key),
                 [entry.page_paddr, entry.writable, entry.user,
                  entry.cacheable, entry.cow, entry.executable, entry.level]]
                for key, entry in self._entries.items()
            ],
            "epoch": self.epoch,
            "stats": self.stats.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self._entries = OrderedDict(
            (tuple(int(part) for part in key),
             _TlbEntry(int(fields[0]), bool(fields[1]), bool(fields[2]),
                       bool(fields[3]), bool(fields[4]), bool(fields[5]),
                       int(fields[6])))
            for key, fields in state["entries"]
        )
        self.epoch = int(state["epoch"])
        self.stats.load_state(state["stats"])
        self._hits = 0
        self._misses = 0


class MMU:
    """Address translation for one CPU core."""

    def __init__(
        self,
        caches: CacheHierarchy,
        regs: SystemRegisters,
        costs: CostModel,
        tlb_entries: int = 512,
        stage2_tlb_entries: int = 512,
    ):
        self.caches = caches
        self.regs = regs
        self.costs = costs
        self.tlb = TLB("tlb", tlb_entries)
        self.stage2_tlb = TLB("stage2_tlb", stage2_tlb_entries)
        self.asid = 0   #: current address-space ID (user mappings)
        self.vmid = 0   #: VM ID (tags stage-2 entries)
        self.stats = StatSet("mmu")
        # One-entry translation caches in front of the TLB dicts.  Each
        # remembers the last (page, context) resolved and is implicitly
        # invalidated by the owning TLB's epoch moving (any insert or
        # invalidate).  A fast-path hit is still accounted as a TLB hit,
        # so statistics are identical to the dict-probe path.
        self._fast_vpage = -1
        self._fast_asid = -1
        self._fast_vmid = -1
        self._fast_epoch = -1
        self._fast_entry: Optional[_TlbEntry] = None
        self._s2_fast_ipage = -1
        self._s2_fast_vmid = -1
        self._s2_fast_epoch = -1
        self._s2_fast_entry: Optional[_TlbEntry] = None

    def state_dict(self) -> dict:
        return {
            "asid": self.asid,
            "vmid": self.vmid,
            "tlb": self.tlb.state_dict(),
            "stage2_tlb": self.stage2_tlb.state_dict(),
            "stats": self.stats.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self.asid = int(state["asid"])
        self.vmid = int(state["vmid"])
        self.tlb.load_state(state["tlb"])
        self.stage2_tlb.load_state(state["stage2_tlb"])
        self.stats.load_state(state["stats"])
        # Reset the one-entry fast caches to their sentinel (miss) state.
        # This is exactly stat- and order-neutral: a fast-path hit counts
        # the same as a dict-probe hit and the TLB's FIFO order is not
        # refreshed by lookups, so the next access merely takes the
        # dict-probe path once before re-arming the fast cache.
        self._fast_vpage = -1
        self._fast_asid = -1
        self._fast_vmid = -1
        self._fast_epoch = -1
        self._fast_entry = None
        self._s2_fast_ipage = -1
        self._s2_fast_vmid = -1
        self._s2_fast_epoch = -1
        self._s2_fast_entry = None

    # ------------------------------------------------------------------
    # TLB maintenance ("TLBI" instructions)
    # ------------------------------------------------------------------
    def invalidate_all(self) -> None:
        """TLBI VMALLE1-style: drop all stage-1 entries."""
        self.tlb.invalidate_all()

    def invalidate_asid(self, asid: int) -> None:
        """Drop all entries for one ASID."""
        self.tlb.invalidate_matching(lambda key: key[1] == asid)

    def invalidate_va(self, vaddr: int) -> None:
        """Drop entries (any ASID) for the page containing ``vaddr``."""
        vpage = vaddr >> 12
        self.tlb.invalidate_matching(lambda key: key[2] == vpage)

    def invalidate_stage2(self) -> None:
        """Drop all stage-2 entries (after stage-2 table edits)."""
        self.stage2_tlb.invalidate_all()

    # ------------------------------------------------------------------
    # Stage-2 (IPA -> PA)
    # ------------------------------------------------------------------
    def stage2_translate(self, ipa: int, is_write: bool) -> int:
        """Translate an IPA to a PA, or return it unchanged when stage 2
        is off.  Raises :class:`Stage2Fault` on a miss or write to a
        read-only stage-2 mapping."""
        if not self.regs._stage2_enabled:
            return ipa
        ipage = ipa >> 12
        stage2_tlb = self.stage2_tlb
        if (
            ipage == self._s2_fast_ipage
            and self.vmid == self._s2_fast_vmid
            and stage2_tlb.epoch == self._s2_fast_epoch
        ):
            entry = self._s2_fast_entry
            stage2_tlb._hits += 1
        else:
            key = (self.vmid, ipage)
            entry = stage2_tlb.lookup(key)
            if entry is None:
                entry = self._walk_stage2(ipa)
                stage2_tlb.insert(key, entry)
            self._s2_fast_ipage = ipage
            self._s2_fast_vmid = self.vmid
            self._s2_fast_epoch = stage2_tlb.epoch
            self._s2_fast_entry = entry
        if is_write and not entry.writable:
            raise Stage2Fault(
                f"stage-2 write permission fault at IPA {ipa:#x}", ipa, True
            )
        return entry.page_paddr | (ipa & (PAGE_BYTES - 1))

    def _walk_stage2(self, ipa: int) -> _TlbEntry:
        root = self.regs.read("VTTBR_EL2") & ~(PAGE_BYTES - 1)
        if root == 0:
            raise Stage2Fault(f"stage-2 root not set for IPA {ipa:#x}", ipa, False)
        self.stats.add("stage2_walks")
        table = root
        # Descriptor-fetch overhead and counters are accumulated across
        # the (<= 3) levels and folded in once — same totals as the
        # per-level charges, one clock/StatSet update per walk.
        fetched = 0
        try:
            for level in (1, 2, 3):
                desc_addr = table + index_for_level(ipa, level) * 8
                raw = self.caches.read(desc_addr, cacheable=True)
                fetched += 1
                # Decode with direct bit tests (the walk is too hot for a
                # Descriptor object per level; bits per pagetable.py).
                if not raw & DESC_VALID:
                    raise Stage2Fault(
                        f"stage-2 translation fault at IPA {ipa:#x} (level {level})",
                        ipa,
                        False,
                    )
                if level < 3 and raw & DESC_TABLE:
                    table = raw & DESC_ADDR_MASK
                    continue
                # Leaf (block at level 2 or page at level 3).
                span = LEVEL_SPAN[level]
                base = (raw & DESC_ADDR_MASK) + (
                    align_down(ipa, PAGE_BYTES) - align_down(ipa, span)
                )
                return _TlbEntry(
                    page_paddr=base,
                    writable=bool(raw & DESC_AP_WRITE),
                    user=False,
                    cacheable=not raw & DESC_NC,
                    cow=False,
                    executable=not raw & DESC_XN,
                    level=level,
                )
        finally:
            if fetched:
                self.caches.bus.clock.advance(self.costs.walk_step_overhead * fetched)
                self.stats.add("stage2_desc_fetches", fetched)
        raise AssertionError("unreachable: stage-2 walk fell through")

    # ------------------------------------------------------------------
    # Full translation
    # ------------------------------------------------------------------
    def translate(
        self,
        vaddr: int,
        is_write: bool = False,
        el: int = 1,
        is_exec: bool = False,
    ) -> TranslationResult:
        """Translate ``vaddr`` for an access from exception level ``el``.

        EL2 uses Hypersec's linear EL2 map (VA == PA, paper section 6.1),
        modelled as an identity regime whose own TLB never misses.
        """
        if el >= 2:
            return TranslationResult(
                paddr=vaddr,
                page_paddr=align_down(vaddr, PAGE_BYTES),
                writable=True,
                user=False,
                cacheable=True,
                cow=False,
                executable=True,
                level=3,
            )
        if not self.regs._mmu_enabled:
            # Early boot: flat physical addressing.
            return TranslationResult(
                paddr=vaddr,
                page_paddr=align_down(vaddr, PAGE_BYTES),
                writable=True,
                user=False,
                cacheable=True,
                cow=False,
                executable=True,
                level=3,
            )

        vpage = vaddr >> 12
        tlb = self.tlb
        if (
            vpage == self._fast_vpage
            and self.asid == self._fast_asid
            and self.vmid == self._fast_vmid
            and tlb.epoch == self._fast_epoch
        ):
            # Same page, same translation context, TLB untouched since:
            # the dict probe would return the identical entry, so skip
            # the split/key-build/probe and count the hit directly.
            entry = self._fast_entry
            tlb._hits += 1
        else:
            space, offset = split_vaddr(vaddr)
            asid = self.asid if space == "user" else GLOBAL_ASID
            key = (self.vmid, asid, vpage)
            entry = tlb.lookup(key)
            if entry is None:
                entry = self._walk_stage1(vaddr, space, offset, is_write)
                tlb.insert(key, entry)
            self._fast_vpage = vpage
            self._fast_asid = self.asid
            self._fast_vmid = self.vmid
            self._fast_epoch = tlb.epoch
            self._fast_entry = entry
        self._check_permissions(entry, vaddr, is_write, el, is_exec)
        if self.regs._stage2_enabled:
            # The cached stage-1 result holds an IPA page; combine with
            # stage 2 (its own TLB makes the common case cheap).
            pa_page = align_down(
                self.stage2_translate(entry.page_paddr, is_write), PAGE_BYTES
            )
        else:
            pa_page = entry.page_paddr
        low_bits = vaddr & (PAGE_BYTES - 1)
        return TranslationResult(
            paddr=pa_page | low_bits,
            page_paddr=pa_page,
            writable=entry.writable,
            user=entry.user,
            cacheable=entry.cacheable,
            cow=entry.cow,
            executable=entry.executable,
            level=entry.level,
        )

    def _walk_stage1(
        self, vaddr: int, space: str, offset: int, is_write: bool
    ) -> _TlbEntry:
        root_reg = "TTBR0_EL1" if space == "user" else "TTBR1_EL1"
        root = self.regs.read(root_reg) & ~(PAGE_BYTES - 1)
        if root == 0:
            raise TranslationFault(
                f"{root_reg} not set; cannot translate {vaddr:#x}", vaddr=vaddr
            )
        self.stats.add("stage1_walks")
        table_ipa = root
        fetched = 0
        try:
            for level in (1, 2, 3):
                desc_ipa = table_ipa + index_for_level(offset, level) * 8
                # Under nested paging the table pointer is an IPA: the fetch
                # address itself needs a stage-2 translation.
                desc_pa = self.stage2_translate(desc_ipa, is_write=False)
                raw = self.caches.read(desc_pa, cacheable=True)
                fetched += 1
                if not raw & DESC_VALID:
                    raise TranslationFault(
                        f"translation fault at {vaddr:#x} (level {level})", vaddr=vaddr
                    )
                if level < 3 and raw & DESC_TABLE:
                    table_ipa = raw & DESC_ADDR_MASK
                    continue
                span = LEVEL_SPAN[level]
                page_base = (raw & DESC_ADDR_MASK) + (
                    align_down(offset, PAGE_BYTES) - align_down(offset, span)
                )
                return _TlbEntry(
                    page_paddr=page_base,
                    writable=bool(raw & DESC_AP_WRITE),
                    user=bool(raw & DESC_USER),
                    cacheable=not raw & DESC_NC,
                    cow=bool(raw & DESC_COW),
                    executable=not raw & DESC_XN,
                    level=level,
                )
        finally:
            if fetched:
                self.caches.bus.clock.advance(self.costs.walk_step_overhead * fetched)
                self.stats.add("stage1_desc_fetches", fetched)
        raise AssertionError("unreachable: stage-1 walk fell through")

    @staticmethod
    def _check_permissions(
        entry: _TlbEntry, vaddr: int, is_write: bool, el: int, is_exec: bool
    ) -> None:
        if el == 0 and not entry.user:
            raise PermissionFault(
                f"EL0 access to privileged page {vaddr:#x}", vaddr=vaddr, el=el
            )
        if is_write and not entry.writable:
            raise PermissionFault(
                f"write to read-only page {vaddr:#x}", vaddr=vaddr, el=el
            )
        if is_exec and not entry.executable:
            raise PermissionFault(
                f"execute from XN page {vaddr:#x}", vaddr=vaddr, el=el
            )
