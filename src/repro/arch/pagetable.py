"""Translation-table descriptors and layout constants.

The regime is the 3-level, 4 KB-granule, 39-bit-VA layout that Linux
3.10 used on AArch64 (the paper's kernel): level 1 indexes VA[38:30],
level 2 VA[29:21] (2 MB *blocks* allowed — the "sections" of paper
section 6.2), level 3 VA[20:12] (4 KB pages).  Each table is one 4 KB
page of 512 eight-byte descriptors.

Descriptor encoding (simulation-defined, stable, documented here):

======  ==========================================================
bit 0   VALID
bit 1   TABLE — at levels 1-2: next-level table pointer; at level 3
        always set for a valid page descriptor (as on real ARM)
bit 2   AP_WRITE — writable (read access is always permitted)
bit 3   XN — execute never
bit 4   NC — non-cacheable (device-like; every access reaches the bus)
bit 5   COW — software bit: copy-on-write page (kernel-owned meaning)
bit 6   USER — EL0 may access
bits 47:12  output address (4 KB-aligned table/page/block base)
======  ==========================================================

The same encoding is used for stage-1, stage-2 and EL2 tables; stage-2
descriptors simply ignore USER/COW.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import PAGE_BYTES, SECTION_BYTES
from repro.errors import SimulationError
from repro.utils.bitops import bit, bits, is_aligned

# --- descriptor bits ----------------------------------------------------
DESC_VALID = bit(0)
DESC_TABLE = bit(1)
DESC_AP_WRITE = bit(2)
DESC_XN = bit(3)
DESC_NC = bit(4)
DESC_COW = bit(5)
DESC_USER = bit(6)

_ADDR_MASK = bits(47, 12)

# --- regime geometry ----------------------------------------------------
#: Number of translation levels (1, 2, 3 to match the ARM naming for
#: this configuration; walks run level 1 -> 3).
LEVELS = (1, 2, 3)
ENTRIES_PER_TABLE = 512
VA_BITS = 39

#: User (TTBR0) virtual addresses are ``[0, USER_VA_LIMIT)``.
USER_VA_LIMIT = 1 << VA_BITS

#: Kernel (TTBR1) virtual addresses are ``[KERNEL_VA_BASE, 2**64)``.
KERNEL_VA_BASE = (1 << 64) - (1 << VA_BITS)

_LEVEL_SHIFT = {1: 30, 2: 21, 3: 12}

#: Bytes mapped by one leaf at each level (level 2 block = 2 MB section).
LEVEL_SPAN = {1: 1 << 30, 2: SECTION_BYTES, 3: PAGE_BYTES}


def index_for_level(va_offset: int, level: int) -> int:
    """Table index at ``level`` for an offset within the 39-bit space."""
    return (va_offset >> _LEVEL_SHIFT[level]) & (ENTRIES_PER_TABLE - 1)


def split_vaddr(vaddr: int) -> tuple[str, int]:
    """Classify a VA as ``("user", offset)`` or ``("kernel", offset)``.

    Raises :class:`SimulationError` for addresses in the unmapped hole
    between the two regions (hardware would fault; in this simulation a
    hole access is always a harness bug).
    """
    if vaddr < USER_VA_LIMIT:
        return "user", vaddr
    if vaddr >= KERNEL_VA_BASE:
        return "kernel", vaddr - KERNEL_VA_BASE
    raise SimulationError(f"virtual address {vaddr:#x} is in the TTBR hole")


@dataclass(frozen=True)
class Descriptor:
    """Decoded view of one 64-bit translation-table descriptor."""

    raw: int

    @property
    def valid(self) -> bool:
        return bool(self.raw & DESC_VALID)

    @property
    def is_table(self) -> bool:
        return bool(self.raw & DESC_TABLE)

    @property
    def writable(self) -> bool:
        return bool(self.raw & DESC_AP_WRITE)

    @property
    def executable(self) -> bool:
        return not (self.raw & DESC_XN)

    @property
    def cacheable(self) -> bool:
        return not (self.raw & DESC_NC)

    @property
    def cow(self) -> bool:
        return bool(self.raw & DESC_COW)

    @property
    def user(self) -> bool:
        return bool(self.raw & DESC_USER)

    @property
    def address(self) -> int:
        """Output address (next table, page or block base)."""
        return self.raw & _ADDR_MASK


def _check_addr(paddr: int, alignment: int, what: str) -> None:
    if not is_aligned(paddr, alignment):
        raise SimulationError(f"{what} {paddr:#x} not {alignment}-byte aligned")
    if paddr & ~_ADDR_MASK:
        raise SimulationError(f"{what} {paddr:#x} outside the 48-bit PA space")


def make_table_desc(next_table_paddr: int) -> int:
    """Descriptor pointing at a next-level table."""
    _check_addr(next_table_paddr, PAGE_BYTES, "table address")
    return next_table_paddr | DESC_VALID | DESC_TABLE


def make_page_desc(
    page_paddr: int,
    writable: bool = True,
    executable: bool = False,
    cacheable: bool = True,
    user: bool = False,
    cow: bool = False,
) -> int:
    """Level-3 descriptor mapping one 4 KB page."""
    _check_addr(page_paddr, PAGE_BYTES, "page address")
    raw = page_paddr | DESC_VALID | DESC_TABLE
    if writable:
        raw |= DESC_AP_WRITE
    if not executable:
        raw |= DESC_XN
    if not cacheable:
        raw |= DESC_NC
    if user:
        raw |= DESC_USER
    if cow:
        raw |= DESC_COW
    return raw


def make_block_desc(
    block_paddr: int,
    writable: bool = True,
    executable: bool = False,
    cacheable: bool = True,
    user: bool = False,
) -> int:
    """Level-2 descriptor mapping one 2 MB block ("section")."""
    _check_addr(block_paddr, SECTION_BYTES, "block address")
    raw = block_paddr | DESC_VALID  # TABLE bit clear = block at level 2
    if writable:
        raw |= DESC_AP_WRITE
    if not executable:
        raw |= DESC_XN
    if not cacheable:
        raw |= DESC_NC
    if user:
        raw |= DESC_USER
    return raw


def invalid_desc() -> int:
    """An invalid (unmapped) descriptor."""
    return 0
