"""System registers of the simulated machine.

Only registers the reproduction actually exercises are modelled.  The
virtualization-extension behaviour that matters to Hypernel:

* ``HCR_EL2.TVM`` — when set, EL1 writes to the *virtual-memory control
  registers* (TTBRs, TCR, SCTLR, MAIR) trap to EL2.  This is how
  Hypersec intercepts attempts to switch to a rogue page table or to
  disable the MMU (paper sections 5.2.2 and 6.1).
* ``HCR_EL2.VM`` — enables stage-2 translation (nested paging).  The KVM
  baseline sets it; Hypernel's whole point is to leave it clear.
"""

from __future__ import annotations

from typing import Dict

from repro.utils.bitops import bit

# HCR_EL2 bit positions (matching the ARM ARM).
HCR_VM = bit(0)    #: Stage-2 translation enable.
HCR_TVM = bit(26)  #: Trap EL1 writes to virtual-memory control registers.

# SCTLR_EL1 bit positions.
SCTLR_M = bit(0)   #: EL1/EL0 stage-1 MMU enable.

#: EL1 registers whose *writes* are trapped to EL2 when HCR_EL2.TVM is set.
VM_CONTROL_REGISTERS = frozenset(
    {
        "SCTLR_EL1",
        "TTBR0_EL1",
        "TTBR1_EL1",
        "TCR_EL1",
        "MAIR_EL1",
    }
)

#: Every register the model knows about, with its reset value.
_KNOWN_REGISTERS: Dict[str, int] = {
    # EL1 (kernel) state.
    "SCTLR_EL1": 0,
    "TTBR0_EL1": 0,
    "TTBR1_EL1": 0,
    "TCR_EL1": 0,
    "MAIR_EL1": 0,
    "VBAR_EL1": 0,
    # EL2 (hypervisor / Hypersec) state.
    "HCR_EL2": 0,
    "VTTBR_EL2": 0,   # stage-2 translation root (+ VMID)
    "TTBR0_EL2": 0,   # EL2's own stage-1 root
    "VBAR_EL2": 0,
    "SP_EL2": 0,
    "SCTLR_EL2": 0,
}


class SystemRegisters:
    """The system-register file, with raw (untrapped) access.

    Trapping logic lives in :class:`~repro.arch.cpu.CPUCore`: this class
    is the state, ``CPUCore.msr``/``mrs`` are the (trappable) accessors.
    """

    def __init__(self):
        self._values: Dict[str, int] = dict(_KNOWN_REGISTERS)
        #: Monotonic write counter.  Translation fast paths and the
        #: macro-op memoizer use it to know the register file is
        #: unchanged without re-reading registers.
        self.mutations = 0
        self._refresh_flags()

    def _refresh_flags(self) -> None:
        """Recompute the cached control-bit predicates (see properties)."""
        values = self._values
        hcr = values["HCR_EL2"]
        self._stage2_enabled = bool(hcr & HCR_VM)
        self._tvm_enabled = bool(hcr & HCR_TVM)
        self._mmu_enabled = bool(values["SCTLR_EL1"] & SCTLR_M)

    def read(self, name: str) -> int:
        """Raw read of register ``name``."""
        self._require(name)
        return self._values[name]

    def write(self, name: str, value: int) -> None:
        """Raw write of register ``name`` (bypasses any trapping)."""
        self._require(name)
        self._values[name] = value & ((1 << 64) - 1)
        self.mutations += 1
        if name == "HCR_EL2" or name == "SCTLR_EL1":
            self._refresh_flags()

    def set_bits(self, name: str, mask_value: int) -> None:
        """OR ``mask_value`` into the register."""
        self.write(name, self.read(name) | mask_value)

    def clear_bits(self, name: str, mask_value: int) -> None:
        """Clear the bits of ``mask_value`` in the register."""
        self.write(name, self.read(name) & ~mask_value)

    def test_bits(self, name: str, mask_value: int) -> bool:
        """True if all bits of ``mask_value`` are set in the register."""
        return (self.read(name) & mask_value) == mask_value

    def _require(self, name: str) -> None:
        if name not in self._values:
            raise KeyError(f"unknown system register {name!r}")

    def state_dict(self) -> Dict[str, int]:
        return dict(self._values)

    def load_state(self, state: Dict[str, int]) -> None:
        for name, value in state.items():
            self.write(name, int(value))

    # Convenience predicates -------------------------------------------
    # Cached on write (``_refresh_flags``); hot paths (the MMU) read the
    # underscored attributes directly to skip the property protocol.
    @property
    def stage2_enabled(self) -> bool:
        """True when HCR_EL2.VM is set (nested paging active)."""
        return self._stage2_enabled

    @property
    def tvm_enabled(self) -> bool:
        """True when HCR_EL2.TVM is set (VM-register writes trap)."""
        return self._tvm_enabled

    @property
    def mmu_enabled(self) -> bool:
        """True when SCTLR_EL1.M is set (stage-1 translation on)."""
        return self._mmu_enabled
