"""Attack scenarios for validating the security claims.

Each attack models an adversary who, per the paper's threat model
(section 4), "could successfully exploit any existing kernel
vulnerabilities to alter the kernel memory" — i.e. has arbitrary
read/write at kernel privilege and can execute privileged instructions
— but cannot break secure boot, EL2 or physical isolation.

Every scenario runs against any system configuration and reports an
:class:`~repro.attacks.base.AttackOutcome` (did the state change? was it
blocked? was it detected?), so the test suite can assert the exact
protection matrix the paper claims:

========================  ========  ==========  =================
attack                     native    hypernel    external-only MBM
========================  ========  ==========  =================
cred escalation            success   detected    detected
dentry hijack              success   detected    detected
page-table tamper          success   blocked     success
TTBR switch                success   blocked     success
MMU disable                success   blocked     success
ATRA                       success   blocked     **bypassed**
DMA into secure region     success   detected*   n/a
========================  ========  ==========  =================

(*) via the MBM's bus-level tamper watch; fully *prevented* when the
IOMMU extension is enabled (paper Discussion section).
"""

from repro.attacks.atra import AtraAttack
from repro.attacks.base import AttackOutcome
from repro.attacks.dma import DmaAttack
from repro.attacks.pgtable import (
    HypercallAbuseAttack,
    MmuDisableAttack,
    PageTableTamperAttack,
    TtbrSwitchAttack,
)
from repro.attacks.rootkit import CredEscalationAttack, DentryHijackAttack

#: Translation-machinery attacks the hypercall fuzzer mounts as rules:
#: safe to repeat any number of times against a protected system (each
#: restores the registers it touched), and all of them must come back
#: ``blocked`` under Hypernel.  Keyed by the attack's ``name``.
FUZZABLE_ATTACKS = {
    attack.name: attack
    for attack in (
        HypercallAbuseAttack,
        MmuDisableAttack,
        PageTableTamperAttack,
        TtbrSwitchAttack,
    )
}

__all__ = [
    "AtraAttack",
    "AttackOutcome",
    "CredEscalationAttack",
    "DentryHijackAttack",
    "DmaAttack",
    "FUZZABLE_ATTACKS",
    "HypercallAbuseAttack",
    "MmuDisableAttack",
    "PageTableTamperAttack",
    "TtbrSwitchAttack",
]
