"""ATRA: the Address Translation Redirection Attack (Jang et al.,
CCS'14), cited by the paper as the defining weakness of stand-alone
external monitors (sections 2 and 5.3).

The attacker relocates the kernel's *mapping* of a monitored object:

1. copy the victim object's page to an attacker-controlled frame,
2. rewrite the kernel linear-map PTE so the object's kernel virtual
   address now translates to the copy,
3. modify the copy at leisure.

A bus monitor configured with the victim's original *physical* address
keeps watching a frame the kernel no longer uses — total bypass.  Under
Hypernel the PTE rewrite itself is impossible: the table is read-only
and the hypercall route refuses to redirect a monitored region
(``atra_remap`` policy in :class:`~repro.core.hypersec.Hypersec`).
"""

from __future__ import annotations

from repro.config import PAGE_BYTES, PAGE_WORDS
from repro.errors import PermissionFault
from repro.core.hypercalls import HVC_DENIED, HVC_PGTABLE_WRITE
from repro.core.hypernel import System
from repro.kernel.objects import CRED
from repro.kernel.process import Task
from repro.arch.pagetable import Descriptor
from repro.attacks.base import AttackOutcome
from repro.utils.bitops import align_down


class AtraAttack:
    """Relocate the page holding a victim cred, then escalate the copy."""

    name = "atra"

    def mount(self, system: System, victim: Task) -> AttackOutcome:
        kernel = system.kernel
        outcome = AttackOutcome(self.name, False, False, False)
        victim_page = align_down(victim.cred_pa, PAGE_BYTES)
        offset_in_page = victim.cred_pa - victim_page
        # Step 1: the attacker's shadow frame, with a verbatim copy.
        shadow_page = kernel.allocator.alloc("attacker")
        system.platform.memory.copy_words(victim_page, shadow_page, PAGE_WORDS)
        # Step 2: redirect the linear-map leaf for the victim page.
        desc_addr, level = kernel.linear_map.leaf_desc_addr(victim_page)
        if level != 3:
            outcome.note(
                "linear map uses 2 MB sections here; ATRA needs the 4 KB "
                "page-mode map (build the system with linear_map_mode='page')"
            )
            return outcome
        old_desc = Descriptor(system.platform.bus.peek(desc_addr))
        new_desc = (old_desc.raw & (PAGE_BYTES - 1)) | shadow_page
        redirected = False
        try:
            kernel.cpu.write(kernel.linear_map.kva(desc_addr), new_desc)
            redirected = True
            outcome.note("PTE redirected by direct write")
        except PermissionFault:
            outcome.note("direct PTE write faulted (read-only tables)")
            if system.hypersec is not None:
                result = kernel.cpu.hvc(
                    HVC_PGTABLE_WRITE, desc_addr, new_desc, 3
                )
                if result == HVC_DENIED:
                    outcome.blocked = True
                    outcome.detected = True
                    outcome.note("hypercall redirect denied (atra_remap)")
                else:
                    redirected = True
                    outcome.note("hypercall redirect ACCEPTED (policy hole!)")
            else:
                outcome.blocked = True
        if not redirected:
            return outcome
        kernel.cpu.tlbi_va(kernel.linear_map.kva(victim_page))
        # Step 3: escalate through the now-redirected kernel VA.
        uid_kva = kernel.linear_map.kva(
            victim_page + offset_in_page + CRED.field("uid").byte_offset
        )
        kernel.cpu.write(uid_kva, 0)
        kernel.cpu.write(uid_kva + CRED.field("euid").byte_offset
                         - CRED.field("uid").byte_offset, 0)
        # Attack succeeded if the value the kernel now *sees* is root
        # while the original (monitored) frame is untouched.
        seen_uid = kernel.cpu.read(uid_kva)
        original_uid = system.platform.bus.peek(
            victim_page + offset_in_page + CRED.field("uid").byte_offset
        )
        outcome.succeeded = seen_uid == 0
        outcome.note(
            f"kernel-visible uid={seen_uid}, original frame uid="
            f"{original_uid} (monitor watches the original)"
        )
        return outcome
