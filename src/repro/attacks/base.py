"""Common plumbing for attack scenarios."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.hypernel import System
from repro.security.app import SecurityApp


@dataclass
class AttackOutcome:
    """What happened when an attack was mounted.

    ``succeeded``
        The attacker-visible goal state was reached (e.g. the cred's uid
        really is 0 in memory, translation really goes to the rogue
        table).
    ``blocked``
        A protection mechanism refused the action outright (permission
        fault on the write, Hypersec denial, IOMMU fault).
    ``detected``
        Some monitor raised an alert attributable to the attack.
    """

    attack: str
    succeeded: bool
    blocked: bool
    detected: bool
    notes: List[str] = field(default_factory=list)

    def note(self, message: str) -> None:
        self.notes.append(message)


def alert_count(system: System) -> int:
    """Total alerts across Hypersec and all registered monitors."""
    total = 0
    if system.hypersec is not None:
        total += sum(
            count
            for key, count in system.hypersec.stats.snapshot().items()
            if key.startswith("alert.")
        )
    for app in system.monitors:
        total += len(app.alerts)
    return total


def monitor_alerts(app: SecurityApp) -> int:
    return len(app.alerts)
