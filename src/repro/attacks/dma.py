"""DMA attack on the secure region (paper Discussion section).

A compromised driver programs a bus-mastering device to overwrite the
MBM bitmap inside the secure space, disabling monitoring without any
CPU-side trace.  Outcomes:

* no IOMMU: the write lands (attack succeeds) — but the MBM, which
  snoops *all* bus traffic, flags the non-CPU write into the secure
  range (detection, the paper's "we expect that Hypernel can detect
  such an attack").
* IOMMU enabled: the transfer faults before reaching the bus (blocked).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SecurityViolation
from repro.core.hypernel import System
from repro.hw.dma import DmaEngine, Iommu
from repro.attacks.base import AttackOutcome


class DmaAttack:
    """Blast zeros over the start of the MBM bitmap via DMA."""

    name = "dma_secure_write"

    def mount(self, system: System, iommu: Optional[Iommu] = None) -> AttackOutcome:
        outcome = AttackOutcome(self.name, False, False, False)
        engine = DmaEngine(system.platform.bus, iommu)
        if system.mbm is not None:
            target = system.mbm.bitmap.bitmap_base
        else:
            target = system.platform.secure_base + 0x10000
        alerts = []
        if system.mbm is not None:
            system.mbm.tamper_alert.subscribe(lambda txn: alerts.append(txn))
            hazards_before = system.mbm.snooper.stats.get("secure_tamper_writes")
        original = system.platform.bus.peek(target)
        try:
            engine.write_word(target, 0)
            outcome.succeeded = system.platform.bus.peek(target) != original or original == 0
            outcome.note(f"DMA write reached {target:#x}")
        except SecurityViolation as violation:
            outcome.blocked = True
            outcome.note(f"IOMMU refused the transfer: {violation}")
        if system.mbm is not None:
            outcome.detected = (
                bool(alerts)
                or system.mbm.snooper.stats.get("secure_tamper_writes")
                > hazards_before
            )
        return outcome
