"""Attacks on the translation machinery (paper sections 5.2.1 / 5.2.2).

Under Hypernel the kernel page tables are read-only to EL1 and the
VM-control registers trap to Hypersec, so every scenario here should be
*blocked* there while succeeding on the unprotected native system.
"""

from __future__ import annotations

from repro.config import PAGE_WORDS
from repro.errors import PermissionFault, SecurityViolation
from repro.core.hypercalls import HVC_DENIED, HVC_PGTABLE_WRITE
from repro.core.hypernel import System
from repro.arch.pagetable import make_page_desc
from repro.arch.registers import SCTLR_M
from repro.attacks.base import AttackOutcome


class PageTableTamperAttack:
    """Map the secure region into the kernel address space.

    Tries the direct route (write a rogue leaf descriptor into a live
    kernel table) and, if that faults, the 'confused deputy' route (ask
    Hypersec to do it via the page-table hypercall).
    """

    name = "pgtable_tamper"

    def mount(self, system: System) -> AttackOutcome:
        kernel = system.kernel
        outcome = AttackOutcome(self.name, False, False, False)
        secure_page = system.platform.secure_base  # juicy target
        rogue_desc = make_page_desc(secure_page, writable=True)
        # Find a live L3 table of the current process to poison.
        mm = kernel.procs.current.mm
        l3_tables = [pa for path, pa in mm.tables.items() if len(path) == 2]
        target_table = l3_tables[0]
        desc_pa = target_table + 17 * 8  # arbitrary unused slot
        try:
            kernel.cpu.write(kernel.linear_map.kva(desc_pa), rogue_desc)
            outcome.succeeded = True
            outcome.note("direct descriptor write went through")
        except PermissionFault:
            outcome.blocked = True
            outcome.detected = True  # the RO fault is attributable
            outcome.note("direct write faulted: tables are read-only")
            # Plan B: ask Hypersec directly.
            if system.hypersec is not None:
                result = kernel.cpu.hvc(
                    HVC_PGTABLE_WRITE, desc_pa, rogue_desc, 3
                )
                if result == HVC_DENIED:
                    outcome.note("hypercall route denied by Hypersec")
                else:
                    outcome.succeeded = True
                    outcome.blocked = False
                    outcome.note("hypercall route ACCEPTED (policy hole!)")
        return outcome


class TtbrSwitchAttack:
    """Switch TTBR0_EL1 to an attacker-built page table."""

    name = "ttbr_switch"

    def mount(self, system: System) -> AttackOutcome:
        kernel = system.kernel
        outcome = AttackOutcome(self.name, False, False, False)
        saved = kernel.cpu.mrs("TTBR0_EL1")
        # Build a rogue root: one zeroed page the attacker controls.
        rogue_root = kernel.allocator.alloc("attacker")
        system.platform.memory.fill(rogue_root, PAGE_WORDS, 0)
        try:
            kernel.cpu.msr("TTBR0_EL1", rogue_root)
            outcome.succeeded = kernel.cpu.mrs("TTBR0_EL1") == rogue_root
            outcome.note("TTBR0 now points at the rogue table")
            kernel.cpu.msr("TTBR0_EL1", saved)  # restore for the harness
        except SecurityViolation as violation:
            outcome.blocked = True
            outcome.detected = True
            outcome.note(f"trapped and refused: {violation}")
        return outcome


class MmuDisableAttack:
    """Clear SCTLR_EL1.M to turn off stage-1 translation entirely."""

    name = "mmu_disable"

    def mount(self, system: System) -> AttackOutcome:
        kernel = system.kernel
        outcome = AttackOutcome(self.name, False, False, False)
        saved = kernel.cpu.mrs("SCTLR_EL1")
        try:
            kernel.cpu.msr("SCTLR_EL1", saved & ~SCTLR_M)
            outcome.succeeded = not kernel.cpu.regs.mmu_enabled
            kernel.cpu.msr("SCTLR_EL1", saved)
            outcome.note("MMU was disabled from EL1")
        except SecurityViolation as violation:
            outcome.blocked = True
            outcome.detected = True
            outcome.note(f"trapped and refused: {violation}")
        return outcome


class HypercallAbuseAttack:
    """Feed Hypersec hostile hypercall arguments.

    Tries to (a) register a secure-region page as a 'page table' and
    (b) use the granularity-gap write emulation against a table page.
    Both must be denied.
    """

    name = "hypercall_abuse"

    def mount(self, system: System) -> AttackOutcome:
        from repro.core.hypercalls import (
            HVC_EMULATE_WRITE,
            HVC_PGTABLE_ALLOC,
        )

        kernel = system.kernel
        outcome = AttackOutcome(self.name, False, False, False)
        if system.hypersec is None:
            outcome.note("no Hypersec installed: nothing to abuse")
            return outcome
        denied = 0
        if kernel.cpu.hvc(
            HVC_PGTABLE_ALLOC, system.platform.secure_base, 0
        ) == HVC_DENIED:
            denied += 1
        table = next(iter(system.hypersec.table_pages))
        if kernel.cpu.hvc(
            HVC_EMULATE_WRITE, table + 8, make_page_desc(system.platform.secure_base)
        ) == HVC_DENIED:
            denied += 1
        outcome.blocked = denied == 2
        outcome.detected = denied > 0
        outcome.succeeded = denied < 2
        outcome.note(f"{denied}/2 hostile hypercalls denied")
        return outcome
