"""Rootkit-style direct data attacks on cred and dentry objects.

Paper footnote 2: "Modifying the cred structure allows the attacker to
elevate any process to have root permission, while seizing the control
of a dentry enables the attacker to access its inode and manipulate it."

The attacker has an arbitrary kernel write primitive; the writes go
through the CPU like any other store, so when the target words are
monitored (non-cacheable page + bitmap bit) the MBM observes them and
the security application's shadow check flags the mismatch.
"""

from __future__ import annotations

from repro.core.hypernel import System
from repro.kernel.objects import CRED, DENTRY
from repro.kernel.process import Task
from repro.attacks.base import AttackOutcome, alert_count


class CredEscalationAttack:
    """Overwrite a victim task's uid/euid words with 0 (root)."""

    name = "cred_escalation"

    def mount(self, system: System, victim: Task) -> AttackOutcome:
        kernel = system.kernel
        outcome = AttackOutcome(self.name, False, False, False)
        alerts_before = alert_count(system)
        targets = ["uid", "euid", "fsuid"]
        for field_name in targets:
            word_pa = victim.cred_pa + CRED.field(field_name).byte_offset
            # The exploit's arbitrary write: plain store, no kernel path.
            kernel.cpu.write(kernel.linear_map.kva(word_pa), 0)
        escalated = all(
            system.platform.bus.peek(
                victim.cred_pa + CRED.field(name).byte_offset
            ) == 0
            for name in targets
        )
        outcome.succeeded = escalated
        outcome.detected = alert_count(system) > alerts_before
        outcome.note(
            f"victim pid {victim.pid}: uid words "
            f"{'zeroed' if escalated else 'unchanged'}"
        )
        return outcome


class DentryHijackAttack:
    """Point a victim dentry's d_inode at an attacker-controlled inode."""

    name = "dentry_hijack"

    def mount(self, system: System, victim_path: str) -> AttackOutcome:
        kernel = system.kernel
        outcome = AttackOutcome(self.name, False, False, False)
        node = kernel.vfs.lookup(victim_path)
        if node is None:
            raise ValueError(f"no such path: {victim_path}")
        alerts_before = alert_count(system)
        # The attacker's rogue inode: any attacker-known kernel address.
        rogue_inode = kernel.allocator.alloc("attacker")
        word_pa = node.dentry_pa + DENTRY.field("d_inode").byte_offset
        kernel.cpu.write(kernel.linear_map.kva(word_pa), rogue_inode)
        outcome.succeeded = (
            system.platform.bus.peek(word_pa) == rogue_inode
        )
        outcome.detected = alert_count(system) > alerts_before
        outcome.note(
            f"{victim_path}: d_inode -> {rogue_inode:#x} "
            f"({'applied' if outcome.succeeded else 'unchanged'})"
        )
        return outcome
