"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info`` — describe the simulated platform and the three system
  configurations.
* ``table1`` — regenerate Table 1 (LMbench kernel operations).
* ``figure6`` — regenerate Figure 6 (application benchmarks).
* ``table2`` — regenerate Table 2 (monitoring granularity).
* ``attacks`` — run the attack/protection matrix and print verdicts.
* ``audit`` — build a monitored Hypernel system, run a workload and
  verify every security invariant against live machine state; with
  ``--snapshot PATH``, audit a restored machine image instead.
* ``metrics`` — run a monitored workload (or restore a snapshot with
  ``--snapshot``) and print the full observability report: component
  counters, gauges, cycle attribution and the run-integrity checks
  (repro.obs).  Exits non-zero when the monitoring pipeline lost
  events, unless ``--no-enforce`` or the check is ``--waive``d;
  ``--json PATH`` exports the report as JSONL.
* ``fuzz`` — adversarial hypercall fuzzing of Hypersec
  (repro.security.fuzz): a Hypothesis state machine drives random
  hypercall/trapped-register/attack sequences against a booted
  machine, predicts every verdict from the shared invariant spec, and
  cross-checks the live auditor against the snapshot-grounded
  differential gate after every example.  ``--corpus DIR`` replays
  recorded traces instead; ``--jsonl PATH`` streams the run's
  violation counters as an integrity record for
  ``scripts/check_integrity.py --jsonl``.
* ``snapshot`` — save/restore/inspect/diff machine checkpoints
  (``repro.state``): ``snapshot save``, ``snapshot restore``,
  ``snapshot info``, ``snapshot diff``.
* ``bench-simspeed`` — measure simulation wall-clock throughput
  (simulated accesses per second) and write ``BENCH_simspeed.json``.
* ``cache`` — inspect (``cache info``) or garbage-collect
  (``cache prune``) the content-addressed result cache and its
  warm-start boot snapshots.
* ``serve`` — run the experiment service daemon: a unix-socket job
  queue dispatching onto warm fork-server pools shared across clients
  (repro.service; see DESIGN.md §5g).  ``--tcp host:port`` additionally
  exposes the daemon as a remote fabric shard; ``--shard-id`` names it.
* ``reproctl`` — client for a running daemon: ``submit`` a
  table1/figure6/table2 batch and stream its cells, ``status``,
  ``result``, ``cancel``, ``stats`` (``--json`` for the machine-readable
  snapshot with per-client breakdown), ``tail-metrics``, ``shutdown``.
* ``fabric`` — manage a local shard fabric for ``--backend fabric``:
  ``start`` spawns N daemons and records their endpoints, ``status``
  handshakes each shard and prints its stats, ``stop`` drains them
  (repro.service.fabric; see DESIGN.md §5h).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.config import PlatformConfig
from repro.errors import IntegrityError


def _platform_config(args) -> PlatformConfig:
    return PlatformConfig(
        dram_bytes=args.dram_mb * 1024 * 1024,
        secure_bytes=max(16, args.dram_mb // 8) * 1024 * 1024,
    )


def _add_platform(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dram-mb", type=int, default=192,
                        help="simulated DRAM size in MB (default 192)")


def _add_scale(parser: argparse.ArgumentParser) -> None:
    # Only registered for commands that actually consume it; ``table1``
    # runs fixed LMbench op counts and takes no scale.
    parser.add_argument("--scale", type=float, default=0.25,
                        help="workload scale factor (default 0.25)")


def _add_macroops(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--no-macroops", action="store_true",
                        help="disable macro-op memoization (replay of "
                        "detected periodic kernel-op cycles); results "
                        "are bit-identical either way, only wall clock "
                        "changes — equivalent to REPRO_MACROOPS=0")


def _add_runner(parser: argparse.ArgumentParser) -> None:
    _add_macroops(parser)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for independent experiment "
                        "cells (default 1 = serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every cell, bypassing the "
                        "content-addressed result cache")
    parser.add_argument("--warm-start", action="store_true",
                        help="restore each cell's system from a shared "
                        "post-boot snapshot instead of booting it "
                        "(bit-identical results, boot cost paid once)")
    parser.add_argument("--backend", default="auto",
                        choices=["auto", "fabric", "forkserver", "pool",
                                 "serial"],
                        help="cell execution backend: fabric (shard "
                        "coordinator over N repro daemons — attaches to "
                        "REPRO_FABRIC_ENDPOINTS or a 'repro fabric "
                        "start' fabric, else spawns transient local "
                        "shards), forkserver (warm servers fork "
                        "copy-on-write workers), pool (process pool), "
                        "serial, or auto (forkserver when available and "
                        "--jobs > 1; overridable via "
                        "REPRO_BENCH_BACKEND)")
    parser.add_argument("--shards", type=int, default=2,
                        help="shard daemons for --backend fabric "
                        "(default 2; ignored by other backends)")
    parser.add_argument("--enforce-integrity", action="store_true",
                        help="fail the run if the monitoring pipeline "
                        "lost events in any cell (FIFO overrun, ring "
                        "overflow — see repro.obs); cached results are "
                        "checked too")
    parser.add_argument("--waive", action="append", default=[],
                        metavar="CHECK",
                        help="accept a named integrity check (e.g. "
                        "mbm_fifo.overrun); repeatable")


def _runner_kwargs(args):
    from repro.tools.runner import CellCache, default_cache_dir

    cache = None if args.no_cache else CellCache(default_cache_dir())
    return {"jobs": args.jobs, "cache": cache,
            "warm_start": args.warm_start, "backend": args.backend,
            "shards": args.shards,
            "enforce_integrity": args.enforce_integrity,
            "waive": tuple(args.waive)}


def cmd_info(args) -> int:
    from repro.core.hypernel import build_system

    config = _platform_config(args)
    print("Hypernel reproduction — simulated platform")
    print(f"  CPU: Cortex-A57-like @ {config.cpu_freq_hz / 1e9:.2f} GHz")
    print(f"  DRAM: {config.dram_bytes // (1 << 20)} MB at {config.dram_base:#x}")
    print(f"  secure region: {config.secure_bytes // (1 << 20)} MB at "
          f"{config.secure_base:#x}")
    print(f"  TLB: {config.tlb_entries} entries; stage-2 TLB: "
          f"{config.stage2_tlb_entries}")
    print(f"  caches: L1 {config.l1_bytes >> 10} KB / L2 {config.l2_bytes >> 20} MB")
    print()
    for name in ("native", "kvm-guest", "hypernel"):
        system = build_system(name, platform_config=_platform_config(args))
        system.spawn_init()
        print(f"  {name:10s} linear map: {system.kernel.linear_map.mode:8s}"
              f" stage2: {str(system.cpu.regs.stage2_enabled):5s}"
              f" TVM: {system.cpu.regs.tvm_enabled}")
    return 0


def cmd_table1(args) -> int:
    from repro.analysis.tables import run_table1

    result = run_table1(
        platform_factory=lambda: _platform_config(args), **_runner_kwargs(args)
    )
    print(result.format())
    return 0


def cmd_figure6(args) -> int:
    from repro.analysis.figures import run_figure6

    result = run_figure6(
        scale=args.scale, platform_factory=lambda: _platform_config(args),
        **_runner_kwargs(args)
    )
    print(result.format())
    return 0


def cmd_table2(args) -> int:
    from repro.analysis.monitoring import run_table2

    result = run_table2(
        scale=args.scale, platform_factory=lambda: _platform_config(args),
        **_runner_kwargs(args)
    )
    print(result.format())
    return 0


def cmd_attacks(args) -> int:
    from repro.core.hypernel import build_hypernel, build_native
    from repro.kernel.kernel import KernelConfig
    from repro.security import CredIntegrityMonitor, DentryIntegrityMonitor
    from repro.attacks import (
        AtraAttack,
        CredEscalationAttack,
        DentryHijackAttack,
        DmaAttack,
        HypercallAbuseAttack,
        MmuDisableAttack,
        PageTableTamperAttack,
        TtbrSwitchAttack,
    )

    def victim_on(system):
        kernel = system.kernel
        init = system.spawn_init()
        target = kernel.sys.fork(init)
        kernel.procs.context_switch(target)
        kernel.sys.setuid(target, 1000)
        kernel.vfs.mkdir_p("/etc")
        kernel.sys.creat(target, "/etc/passwd")
        return target

    builders = {
        "native": lambda: build_native(
            platform_config=_platform_config(args),
            kernel_config=KernelConfig(linear_map_mode="page"),
        ),
        "hypernel": lambda: build_hypernel(
            platform_config=_platform_config(args),
            monitors=[CredIntegrityMonitor(), DentryIntegrityMonitor()],
        ),
    }
    for system_name, builder in builders.items():
        system = builder()
        victim = victim_on(system)
        print(f"\n=== {system_name} ===")
        scenarios = [
            CredEscalationAttack().mount(system, victim),
            DentryHijackAttack().mount(system, "/etc/passwd"),
            PageTableTamperAttack().mount(system),
            TtbrSwitchAttack().mount(system),
            MmuDisableAttack().mount(system),
            HypercallAbuseAttack().mount(system),
            AtraAttack().mount(system, victim),
            DmaAttack().mount(system),
        ]
        for outcome in scenarios:
            verdict = ("BLOCKED" if outcome.blocked
                       else "detected" if outcome.detected
                       else "SILENT SUCCESS")
            print(f"  {outcome.attack:18s} {verdict}")
    return 0


def cmd_report(args) -> int:
    from repro.analysis.report import generate_report

    print(generate_report(
        scale=args.scale,
        platform_factory=lambda: _platform_config(args),
        **_runner_kwargs(args),
    ))
    return 0


def cmd_audit(args) -> int:
    from repro.core.hypernel import build_hypernel
    from repro.security import CredIntegrityMonitor, DentryIntegrityMonitor
    from repro.workloads.apps import UntarWorkload

    if args.snapshot:
        from repro.errors import SnapshotError
        from repro.state import restore_system

        try:
            system = restore_system(args.snapshot)
        except (SnapshotError, FileNotFoundError) as exc:
            print(f"error: {exc}")
            return 1
        if system.hypersec is None:
            print(f"error: snapshot holds a {system.name!r} system; only "
                  "hypernel images can be audited")
            return 1
        print(f"auditing restored {system.name} image "
              f"({args.snapshot}) ...")
        if system.mbm is not None:
            print(f"  MBM events: {system.mbm.events_detected}, alerts: "
                  f"{sum(len(m.alerts) for m in system.monitors)}")
        report = system.hypersec.audit()
        print(report)
        return 0 if report.clean else 1

    system = build_hypernel(
        platform_config=_platform_config(args),
        monitors=[CredIntegrityMonitor(), DentryIntegrityMonitor()],
    )
    shell = system.spawn_init()
    print("running a workload under full monitoring ...")
    app = UntarWorkload(args.scale)
    app.prepare(system, shell)
    app.run(system, shell)
    print(f"  MBM events: {system.mbm.events_detected}, alerts: "
          f"{sum(len(m.alerts) for m in system.monitors)}")
    report = system.hypersec.audit()
    print(report)
    return 0 if report.clean else 1


def _add_audit_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--snapshot", default=None, metavar="PATH",
                        help="audit a restored machine image instead of "
                        "building and exercising a fresh system")


def cmd_metrics(args) -> int:
    from repro.obs import collect_metrics, metrics_records, write_jsonl

    waive = tuple(args.waive)
    if args.snapshot:
        from repro.errors import IntegrityError, SnapshotError
        from repro.state import restore_system

        try:
            system = restore_system(args.snapshot)
        except (SnapshotError, FileNotFoundError) as exc:
            print(f"error: {exc}")
            return 1
        print(f"metrics for restored {system.name} image ({args.snapshot})")
        try:
            metrics = collect_metrics(system, waive=waive)
        except IntegrityError as exc:  # unknown waiver name
            print(f"error: {exc}")
            return 1
    else:
        from repro.core.hypernel import build_hypernel
        from repro.errors import IntegrityError
        from repro.security import (
            CredIntegrityMonitor,
            DentryIntegrityMonitor,
        )
        from repro.workloads.apps import UntarWorkload

        system = build_hypernel(
            platform_config=_platform_config(args),
            monitors=[CredIntegrityMonitor(), DentryIntegrityMonitor()],
        )
        shell = system.spawn_init()
        print("running a workload under full monitoring ...")
        app = UntarWorkload(args.scale)
        app.prepare(system, shell)
        app.run(system, shell)
        try:
            metrics = collect_metrics(system, waive=waive)
        except IntegrityError as exc:
            print(f"error: {exc}")
            return 1
    print(metrics.format())
    if args.json:
        count = write_jsonl(args.json, metrics_records(metrics))
        print(f"\n[{count} records written to {args.json}]")
    if args.no_enforce:
        return 0
    failures = metrics.failures
    if failures:
        detail = ", ".join(f"{c.name} = {c.value}" for c in failures)
        print(f"\nINTEGRITY FAILURE: {detail}")
        return 1
    return 0


def _add_metrics_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--snapshot", default=None, metavar="PATH",
                        help="collect metrics from a restored machine "
                        "image instead of running a fresh workload")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the report as JSONL records")
    parser.add_argument("--waive", action="append", default=[],
                        metavar="CHECK",
                        help="accept a named integrity check (e.g. "
                        "mbm_fifo.overrun); repeatable")
    parser.add_argument("--no-enforce", action="store_true",
                        help="report integrity failures without failing "
                        "the exit status")


def cmd_fuzz(args) -> int:
    from repro.security.fuzz.machine import (
        FUZZ_STATS,
        LAST_TRACE,
        PROFILES,
        FuzzViolation,
        replay_corpus,
        run_fuzz,
        save_trace,
    )

    profiles = list(PROFILES) if args.profile == "both" else [args.profile]
    totals: dict = {}
    crashes = 0
    failure: Optional[str] = None
    started = time.time()

    def merge(stats: dict) -> None:
        for key, value in stats.items():
            totals[key] = totals.get(key, 0) + value

    if args.corpus:
        print(f"replaying corpus {args.corpus} ...")
        try:
            merge(replay_corpus(args.corpus))
        except FuzzViolation as exc:
            failure = str(exc)
            merge(FUZZ_STATS)
    else:
        per_profile = max(1, args.max_examples // len(profiles))
        for profile in profiles:
            print(f"fuzzing {profile!r} profile: {per_profile} examples, "
                  f"{args.steps} steps each, seed {args.seed} ...")
            try:
                merge(run_fuzz(profile=profile, seed=args.seed,
                               max_examples=per_profile, steps=args.steps))
            except FuzzViolation as exc:
                failure = f"[{profile}] {exc}"
                merge(FUZZ_STATS)
            except Exception as exc:  # noqa: BLE001 — a crash IS a finding
                crashes += 1
                failure = f"[{profile}] machine crashed: {exc!r}"
                merge(FUZZ_STATS)
            if failure:
                if LAST_TRACE:
                    print("minimized reproducer:")
                    print(json.dumps([e["op"] for e in LAST_TRACE],
                                     indent=2, sort_keys=True))
                if args.save_failing:
                    save_trace(args.save_failing, profile,
                               note="minimized by hypothesis shrinking")
                    print(f"reproducer saved to {args.save_failing}")
                break

    elapsed = time.time() - started
    vacuous = 0 if totals.get("ops") else 1
    print(f"\n{totals.get('examples', 0)} example(s), "
          f"{totals.get('ops', 0)} operation(s), "
          f"{totals.get('differential_gates', 0)} differential gate(s) "
          f"in {elapsed:.1f}s")
    for key in sorted(totals):
        print(f"  {key}: {totals[key]}")
    if failure:
        print(f"\nFUZZ FAILURE: {failure}")
    else:
        print("\nfuzz clean: every verdict matched the invariant spec and "
              "both verification channels agree")

    if args.jsonl:
        violations = (totals.get("violations", 0)
                      + totals.get("differential_disagreements", 0))
        if failure and not violations and not crashes:
            violations = 1  # a failure always fails the gate
        checks = [
            {"component": "fuzz", "counter": "violations",
             "value": violations, "waived": False,
             "description": "verdict/invariant disagreements (live audit "
             "or differential gate)"},
            {"component": "fuzz", "counter": "crashes",
             "value": crashes, "waived": False,
             "description": "unhandled exceptions while fuzzing"},
            {"component": "fuzz", "counter": "vacuous_runs",
             "value": vacuous, "waived": False,
             "description": "runs that executed no operations"},
        ]
        record = {
            "label": f"fuzz-{args.profile}",
            "metrics": {
                "system": "hypernel",
                "sim_cycles": 0,
                "components": {"fuzz": {
                    key.replace(".", "_"): value
                    for key, value in sorted(totals.items())
                }},
                "checks": checks,
            },
        }
        with open(args.jsonl, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        print(f"integrity record appended to {args.jsonl}")

    return 1 if (failure or vacuous) else 0


def _add_fuzz_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--profile", default="both",
                        choices=["section", "page", "both"],
                        help="linear-map mode of the machine under test "
                        "(default both, splitting --max-examples)")
    parser.add_argument("--seed", type=int, default=0,
                        help="Hypothesis seed (default 0; runs are "
                        "deterministic per seed)")
    parser.add_argument("--max-examples", type=int, default=100,
                        help="total state-machine examples across the "
                        "selected profiles (default 100)")
    parser.add_argument("--steps", type=int, default=8,
                        help="rules per example (default 8)")
    parser.add_argument("--corpus", default=None, metavar="DIR",
                        help="replay every recorded trace in DIR instead "
                        "of running the random state machine")
    parser.add_argument("--jsonl", default=None, metavar="PATH",
                        help="append an integrity record for "
                        "scripts/check_integrity.py --jsonl")
    parser.add_argument("--save-failing", default=None, metavar="PATH",
                        help="save the minimized failing trace as a "
                        "corpus file")


def cmd_snapshot(args) -> int:
    from repro.errors import SnapshotError
    from repro.state import (
        diff_snapshots,
        restore_system,
        save_snapshot,
        snapshot_info,
    )

    try:
        if args.action == "save":
            from repro.core.hypernel import build_system

            kwargs = {"platform_config": _platform_config(args)}
            if args.system == "hypernel" and args.monitored:
                from repro.security import (
                    CredIntegrityMonitor,
                    DentryIntegrityMonitor,
                )

                kwargs["monitors"] = [CredIntegrityMonitor(),
                                      DentryIntegrityMonitor()]
            system = build_system(args.system, **kwargs)
            snapshot = save_snapshot(system, args.path)
            print(f"saved {args.system} snapshot to {args.path}")
            print(f"  content hash: {snapshot.content_hash}")
            return 0
        if args.action == "restore":
            system = restore_system(args.path)
            print(f"restored {system.name} system from {args.path}")
            for key, value in system.stats_summary().items():
                print(f"  {key}: {value}")
            return 0
        if args.action == "info":
            print(snapshot_info(args.path))
            return 0
        if args.action == "diff":
            print(diff_snapshots(args.path_a, args.path_b))
            return 0
    except (SnapshotError, FileNotFoundError) as exc:
        print(f"error: {exc}")
        return 1
    raise AssertionError(f"unhandled snapshot action {args.action!r}")


def _add_snapshot_args(parser: argparse.ArgumentParser) -> None:
    actions = parser.add_subparsers(dest="action", required=True)
    save = actions.add_parser(
        "save", help="boot a system and write a post-boot snapshot")
    save.add_argument("path", help="snapshot file to write")
    save.add_argument("--system", default="hypernel",
                      choices=["native", "kvm-guest", "hypernel"])
    save.add_argument("--monitored", action="store_true",
                      help="include the cred+dentry monitors (hypernel)")
    _add_platform(save)
    restore = actions.add_parser(
        "restore", help="restore a snapshot and print its machine state")
    restore.add_argument("path", help="snapshot file to read")
    info = actions.add_parser(
        "info", help="print a snapshot's manifest without restoring")
    info.add_argument("path", help="snapshot file to read")
    diff = actions.add_parser(
        "diff", help="report which sections/words differ between two "
        "snapshots")
    diff.add_argument("path_a")
    diff.add_argument("path_b")


def cmd_cache(args) -> int:
    from repro.tools.runner import cache_contents, default_cache_dir, prune_cache

    directory = args.dir or default_cache_dir()
    if args.action == "info":
        inventory = cache_contents(directory)
        entries = inventory["entries"]
        results = [e for e in entries if e["kind"] == "result"]
        snapshots = [e for e in entries if e["kind"] == "snapshot"]
        print(f"cache directory: {inventory['directory']}")
        print(f"  result entries: {len(results)} "
              f"({sum(e['bytes'] for e in results)} bytes)")
        print(f"  boot snapshots: {len(snapshots)} "
              f"({sum(e['bytes'] for e in snapshots)} bytes)")
        print(f"  total: {len(entries)} files, {inventory['total_bytes']} bytes")
        if args.verbose:
            for entry in sorted(entries, key=lambda e: e["mtime"]):
                age_days = (time.time() - entry["mtime"]) / 86400.0
                print(f"  {entry['kind']:8s} {entry['bytes']:>10d} B "
                      f"{age_days:6.1f} d  {entry['path']}")
        return 0
    if args.action == "prune":
        removed = prune_cache(
            directory,
            max_age_days=args.max_age,
            max_bytes=args.max_bytes,
        )
        for path in removed:
            print(f"removed {path}")
        remaining = cache_contents(directory)
        print(f"pruned {len(removed)} entries; {len(remaining['entries'])} "
              f"remain ({remaining['total_bytes']} bytes)")
        return 0
    raise AssertionError(f"unhandled cache action {args.action!r}")


def _add_cache_args(parser: argparse.ArgumentParser) -> None:
    actions = parser.add_subparsers(dest="action", required=True)
    info = actions.add_parser(
        "info", help="summarize cached results and boot snapshots")
    info.add_argument("--dir", default=None,
                      help="cache directory (default REPRO_CACHE_DIR or "
                      "benchmarks/.cache)")
    info.add_argument("--verbose", action="store_true",
                      help="list every entry with size and age")
    prune = actions.add_parser(
        "prune", help="delete old entries; everything pruned is safely "
        "recomputable (content-addressed)")
    prune.add_argument("--dir", default=None,
                       help="cache directory (default REPRO_CACHE_DIR or "
                       "benchmarks/.cache)")
    prune.add_argument("--max-age", type=float, default=None, metavar="DAYS",
                       help="drop entries older than DAYS")
    prune.add_argument("--max-bytes", type=int, default=None,
                       help="evict oldest entries until the cache fits "
                       "in this many bytes")


def cmd_bench_simspeed(args) -> int:
    from repro.tools import perf

    results = perf.run_simspeed(iters_scale=args.iters_scale,
                                repeats=args.repeats)
    print(perf.format_report(results))
    if args.output:
        perf.write_report(results, args.output, iters_scale=args.iters_scale)
        print(f"[saved to {args.output}]")
    if args.baseline:
        try:
            baseline = perf.load_report(args.baseline)
        except FileNotFoundError:
            print(f"error: baseline not found: {args.baseline}")
            return 1
        failures = perf.compare_to_baseline(
            perf.report_as_dict(results, iters_scale=args.iters_scale),
            baseline,
            tolerance=args.tolerance,
        )
        for failure in failures:
            print(f"REGRESSION: {failure}")
        if failures:
            return 1
        print(f"ok: within {args.tolerance:.0%} of {args.baseline}")
    return 0


def _add_simspeed_args(parser: argparse.ArgumentParser) -> None:
    _add_macroops(parser)
    parser.add_argument("--iters-scale", type=float, default=1.0,
                        help="scale factor on per-workload iteration counts")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per workload; the best is reported "
                        "(wall clock is noisy, simulation is not)")
    parser.add_argument("--output", default="BENCH_simspeed.json",
                        help="JSON report path ('' to skip writing)")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON to gate against (exit 1 on regression)")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed wall-clock slowdown vs baseline (default 0.20)")


def cmd_serve(args) -> int:
    from repro.service.daemon import DaemonConfig, ReproDaemon
    from repro.service.protocol import ServiceError

    config = DaemonConfig(
        socket_path=args.socket,
        jobs=args.jobs,
        quota=args.quota,
        backend=args.backend,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        tcp=args.tcp,
        shard_id=args.shard_id or None,
    )
    try:
        daemon = ReproDaemon(config)
    except ValueError as exc:  # bad REPRO_BENCH_BACKEND / --backend
        print(f"error: {exc}")
        return 2
    path = config.resolved_socket_path()
    extras = ""
    if args.tcp:
        extras += f", tcp={args.tcp}"
    if config.shard_id:
        extras += f", shard={config.shard_id}"
    print(f"repro serve: listening on {path} "
          f"(backend={daemon.backend}, jobs={config.jobs}, "
          f"quota={config.quota}{extras})")
    try:
        daemon.serve()
    except ServiceError as exc:
        print(f"error: {exc}")
        return 1
    print("repro serve: drained and stopped")
    return 0


def _add_serve_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--socket", default=None, metavar="PATH",
                        help="unix socket to listen on (default "
                        "REPRO_SERVICE_SOCKET or a per-user tmp path)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="concurrent cells per dispatch chunk "
                        "(default 2)")
    parser.add_argument("--quota", type=int, default=8,
                        help="max unfinished jobs per client (default 8)")
    parser.add_argument("--backend", default="auto",
                        choices=["auto", "fabric", "forkserver", "pool",
                                 "serial"],
                        help="cell execution backend; auto keeps a warm "
                        "fork-server pool when the platform supports it "
                        "(overridable via REPRO_BENCH_BACKEND; fabric "
                        "maps to the warm pool — a daemon IS a shard)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every cell, bypassing the shared "
                        "content-addressed result cache")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result cache directory (default "
                        "REPRO_CACHE_DIR or benchmarks/.cache)")
    parser.add_argument("--tcp", default=None, metavar="HOST:PORT",
                        help="additionally listen on TCP as a remote "
                        "fabric shard (':0' = loopback, ephemeral port). "
                        "No authentication: bind loopback or a trusted "
                        "network only")
    parser.add_argument("--shard-id", default="", metavar="NAME",
                        help="fabric shard identity reported in the "
                        "hello handshake and stats")


#: reproctl experiment name -> cell builder + result merger.  Kept as
#: thin lambdas so the analysis modules import lazily.
def _reproctl_experiments():
    from repro.analysis import figures, monitoring, tables

    return {
        "table1": {
            "cells": lambda args, factory: tables.table1_cells(
                platform_factory=factory),
            "merge": lambda cells, payloads, args: tables.merge_table1(
                cells, payloads),
        },
        "figure6": {
            "cells": lambda args, factory: figures.figure6_cells(
                scale=args.scale, platform_factory=factory),
            "merge": lambda cells, payloads, args: figures.merge_figure6(
                cells, payloads),
        },
        "table2": {
            "cells": lambda args, factory: monitoring.table2_cells(
                scale=args.scale, platform_factory=factory),
            "merge": lambda cells, payloads, args: monitoring.merge_table2(
                cells, payloads, args.scale),
        },
    }


def cmd_reproctl(args) -> int:
    from repro.obs.service import ServiceStats
    from repro.service.client import ReproServiceClient, ServiceError

    client = ReproServiceClient(
        socket_path=args.socket, client=args.client or None
    )
    try:
        if args.action == "submit":
            experiments = _reproctl_experiments()
            spec = experiments[args.experiment]
            factory = lambda: _platform_config(args)  # noqa: E731
            cells = spec["cells"](args, factory)
            label = args.label or args.experiment
            with client:
                if args.detach:
                    reply = client.submit(
                        cells, priority=args.priority, label=label,
                        integrity=("ignore" if args.no_enforce
                                   else "enforce"),
                        waive=tuple(args.waive), stream=False,
                    )
                    print(f"submitted {reply['job']} "
                          f"({reply['cells']} cells, "
                          f"priority {reply['priority']}); poll with "
                          f"'reproctl result {reply['job']}'")
                    return 0
                payloads = client.run_cells(
                    cells, priority=args.priority, label=label,
                    integrity="ignore" if args.no_enforce else "enforce",
                    waive=tuple(args.waive),
                    on_cell=lambda event: print(
                        f"[{event['completed']}/{event['cells']}] "
                        f"{event['label']}", file=sys.stderr),
                )
            print(spec["merge"](cells, payloads, args).format())
            return 0
        if args.action == "status":
            with client:
                reply = client.status(args.job)
            if args.job is not None:
                for key, value in sorted(reply.items()):
                    if key != "ok":
                        print(f"  {key}: {value}")
                return 0
            jobs = reply["jobs"]
            if not jobs:
                print("no jobs")
            for info in jobs:
                print(f"  {info['job']} {info['state']:9s} "
                      f"client={info['client']} "
                      f"{info['completed']}/{info['cells']} cells "
                      f"({info['label'] or 'unlabelled'})")
            return 0
        if args.action == "result":
            with client:
                reply = client.result(args.job, wait=not args.no_wait)
            if reply["state"] != "done":
                print(f"job {args.job}: {reply['state']} "
                      f"({reply.get('error')})")
                return 1
            print(json.dumps(reply["payloads"], indent=2, sort_keys=True))
            return 0
        if args.action == "cancel":
            with client:
                reply = client.cancel(args.job)
            print(f"job {args.job}: {reply['state']}"
                  + (" (cancel requested)" if reply["state"] == "running"
                     else ""))
            return 0
        if args.action == "tail-metrics":
            with client:
                for snapshot in client.tail_metrics(
                        interval=args.interval, count=args.count):
                    if args.json:
                        print(json.dumps(snapshot, sort_keys=True),
                              flush=True)
                    else:
                        print(ServiceStats.from_dict(snapshot).format(),
                              flush=True)
            return 0
        if args.action == "stats":
            with client:
                stats = client.stats()
            if args.json:
                # Machine-readable snapshot: counters/gauges plus the
                # per-client breakdown and the daemon's shard identity.
                print(json.dumps(stats, indent=2, sort_keys=True))
            else:
                print(ServiceStats.from_dict(stats).format())
                if stats.get("shard"):
                    print(f"  shard   {stats['shard']}")
            return 0
        if args.action == "shutdown":
            with client:
                client.shutdown()
            print("daemon is draining")
            return 0
    except ServiceError as exc:
        print(f"error: {exc}")
        return 1
    except KeyboardInterrupt:
        return 130
    raise AssertionError(f"unhandled reproctl action {args.action!r}")


def _add_reproctl_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--socket", default=None, metavar="PATH",
                        help="daemon unix socket (default "
                        "REPRO_SERVICE_SOCKET or the per-user tmp path)")
    parser.add_argument("--client", default="", metavar="NAME",
                        help="client name for quota/metrics attribution")
    actions = parser.add_subparsers(dest="action", required=True)
    submit = actions.add_parser(
        "submit", help="run an experiment through the daemon and print "
        "the merged result (byte-identical to the local command)")
    submit.add_argument("experiment",
                        choices=["table1", "figure6", "table2"])
    submit.add_argument("--priority", type=int, default=0,
                        help="higher runs first (FIFO within a priority)")
    submit.add_argument("--label", default="",
                        help="job label shown in status/metrics")
    submit.add_argument("--detach", action="store_true",
                        help="submit without streaming; print the job id "
                        "and return immediately")
    submit.add_argument("--no-enforce", action="store_true",
                        help="skip integrity enforcement on streamed "
                        "payloads")
    submit.add_argument("--waive", action="append", default=[],
                        metavar="CHECK",
                        help="accept a named integrity check; repeatable")
    _add_platform(submit)
    _add_scale(submit)
    status = actions.add_parser(
        "status", help="list jobs, or show one job's state")
    status.add_argument("job", nargs="?", default=None)
    result = actions.add_parser(
        "result", help="fetch a job's raw payloads as JSON")
    result.add_argument("job")
    result.add_argument("--no-wait", action="store_true",
                        help="return the current state instead of "
                        "blocking until the job finishes")
    cancel = actions.add_parser("cancel", help="cancel a job")
    cancel.add_argument("job")
    tail = actions.add_parser(
        "tail-metrics", help="stream live daemon metrics")
    tail.add_argument("--interval", type=float, default=1.0)
    tail.add_argument("--count", type=int, default=0,
                      help="snapshots to stream (0 = until interrupted)")
    tail.add_argument("--json", action="store_true",
                      help="one JSON object per snapshot instead of the "
                      "formatted board")
    stats = actions.add_parser(
        "stats", help="print one daemon stats snapshot")
    stats.add_argument("--json", action="store_true",
                       help="machine-readable JSON (counters, gauges, "
                       "per-client breakdown, shard identity) instead "
                       "of the formatted board")
    actions.add_parser("shutdown", help="ask the daemon to drain and exit")


def cmd_fabric(args) -> int:
    from repro.obs.service import ServiceStats
    from repro.service import fabric
    from repro.service.client import ReproServiceClient, ServiceError

    if args.action == "start":
        if fabric.read_state():
            print(f"error: a fabric is already recorded in "
                  f"{fabric.default_state_path()}; run 'python -m repro "
                  f"fabric stop' first")
            return 1
        coordinator = fabric.FabricCoordinator(fabric.FabricConfig(
            shards=args.shards,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            no_cache=args.no_cache,
            socket_dir=args.socket_dir,
        ))
        try:
            coordinator.start()
        except ServiceError as exc:
            print(f"error: {exc}")
            return 1
        rows = coordinator.describe()
        document = {
            "version": fabric.STATE_VERSION,
            "workdir": coordinator._workdir,
            "shards": [
                {"name": row["name"], "endpoint": row["endpoint"],
                 "pid": row["pid"]}
                for row in rows if row["alive"]
            ],
        }
        path = fabric.write_state(document)
        for row in rows:
            marker = "up" if row["alive"] else "FAILED"
            pid = f" (pid {row['pid']})" if row["pid"] else ""
            print(f"  {row['name']:8s} {marker:6s} {row['endpoint']}{pid}")
        print(f"fabric of {len(document['shards'])} shard(s) recorded in "
              f"{path}; run experiments with --backend fabric, stop with "
              f"'python -m repro fabric stop'")
        return 0

    if args.action == "stop":
        state = fabric.read_state()
        if not state:
            print("no fabric is running (no state file)")
            return 1
        for shard in state["shards"]:
            endpoint = shard["endpoint"]
            try:
                with ReproServiceClient(socket_path=endpoint, timeout=10,
                                        client="fabric-stop",
                                        connect_retry=0.5) as client:
                    client.shutdown()
                print(f"  {shard['name']:8s} draining ({endpoint})")
            except ServiceError as exc:
                print(f"  {shard['name']:8s} unreachable ({exc})")
        fabric.clear_state()
        print("fabric state cleared")
        return 0

    if args.action == "status":
        endpoints = fabric.resolve_endpoints()
        if not endpoints:
            print("no fabric is running (no REPRO_FABRIC_ENDPOINTS and "
                  "no state file)")
            return 1
        rows = []
        for index, endpoint in enumerate(endpoints):
            name = f"shard{index}"
            try:
                with ReproServiceClient(socket_path=endpoint, timeout=10,
                                        client="fabric-status",
                                        connect_retry=0.5) as client:
                    hello = client.hello()
                    stats = client.stats()
                rows.append({"name": hello.get("shard") or name,
                             "endpoint": endpoint, "alive": True,
                             "backend": hello.get("backend"),
                             "jobs": hello.get("jobs"),
                             "protocol": hello.get("protocol"),
                             "stats": stats})
            except ServiceError as exc:
                rows.append({"name": name, "endpoint": endpoint,
                             "alive": False, "error": str(exc)})
        all_up = all(row["alive"] for row in rows)
        if args.json:
            print(json.dumps({"shards": rows}, indent=2, sort_keys=True))
            return 0 if all_up else 1
        for row in rows:
            if row["alive"]:
                print(f"{row['name']:8s} up     {row['endpoint']} "
                      f"(backend={row['backend']}, jobs={row['jobs']})")
                board = ServiceStats.from_dict(row["stats"]).format()
                print("  " + board.replace("\n", "\n  "))
            else:
                print(f"{row['name']:8s} DOWN   {row['endpoint']} "
                      f"({row['error']})")
        return 0 if all_up else 1
    raise AssertionError(f"unhandled fabric action {args.action!r}")


def _add_fabric_args(parser: argparse.ArgumentParser) -> None:
    actions = parser.add_subparsers(dest="action", required=True)
    start = actions.add_parser(
        "start", help="spawn N local shard daemons and record their "
        "endpoints so --backend fabric reuses them (warm pools persist "
        "across runs)")
    start.add_argument("--shards", type=int, default=2,
                       help="daemons to spawn (default 2)")
    start.add_argument("--jobs", type=int, default=2,
                       help="concurrent cells per shard dispatch chunk "
                       "(default 2)")
    start.add_argument("--socket-dir", default=None, metavar="DIR",
                       help="where shard sockets and logs live (default "
                       "a private temp dir)")
    start.add_argument("--no-cache", action="store_true",
                       help="shards recompute every cell, bypassing the "
                       "shared content-addressed result cache")
    start.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="shard result-cache directory (default "
                       "REPRO_CACHE_DIR or benchmarks/.cache)")
    actions.add_parser(
        "stop", help="drain every recorded shard and clear the state "
        "file")
    status = actions.add_parser(
        "status", help="handshake every shard (REPRO_FABRIC_ENDPOINTS "
        "or the state file) and print its stats")
    status.add_argument("--json", action="store_true",
                        help="machine-readable JSON with each shard's "
                        "liveness, identity and stats snapshot")


#: command name -> (handler, extra-argument installers).
_COMMANDS = {
    "info": (cmd_info, [_add_platform]),
    "table1": (cmd_table1, [_add_platform, _add_runner]),
    "figure6": (cmd_figure6, [_add_platform, _add_scale, _add_runner]),
    "table2": (cmd_table2, [_add_platform, _add_scale, _add_runner]),
    "attacks": (cmd_attacks, [_add_platform]),
    "audit": (cmd_audit, [_add_platform, _add_scale, _add_audit_args]),
    "fuzz": (cmd_fuzz, [_add_fuzz_args]),
    "metrics": (cmd_metrics, [_add_platform, _add_scale, _add_metrics_args]),
    "report": (cmd_report, [_add_platform, _add_scale, _add_runner]),
    "snapshot": (cmd_snapshot, [_add_snapshot_args]),
    "bench-simspeed": (cmd_bench_simspeed, [_add_simspeed_args]),
    "cache": (cmd_cache, [_add_cache_args]),
    "serve": (cmd_serve, [_add_serve_args]),
    "reproctl": (cmd_reproctl, [_add_reproctl_args]),
    "fabric": (cmd_fabric, [_add_fabric_args]),
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Hypernel (DAC 2018) reproduction harness",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name, (handler, installers) in _COMMANDS.items():
        sub = subparsers.add_parser(name, help=handler.__doc__)
        for add_args in installers:
            add_args(sub)
        sub.set_defaults(handler=handler)
    args = parser.parse_args(argv)
    if getattr(args, "no_macroops", False):
        # Environment, not a parameter: the setting must reach worker
        # processes and every system built during the command.
        import os
        os.environ["REPRO_MACROOPS"] = "0"
    try:
        return args.handler(args)
    except IntegrityError as exc:
        print(f"INTEGRITY FAILURE: {exc}")
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
