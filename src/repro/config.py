"""Platform and cost-model configuration.

The reproduction is *cycle-approximate*: every modelled event (cache hit,
DRAM access, translation-table descriptor fetch, exception entry, world
switch, ...) charges a cycle cost from :class:`CostModel`, and higher-level
kernel operations additionally charge calibrated base compute costs for the
instructions the simulator does not model individually.

Default values are drawn from public figures for the Cortex-A57 (the big
core of the Juno r1 board used in the paper) and from Dall et al., "ARM
Virtualization: Performance and Architectural Implications" (ISCA 2016),
which the paper cites for hypervisor transition costs.  Absolute accuracy
is not the goal — the relative structure (1-stage vs 2-stage walks,
hypercall vs VM-exit round trips) is what drives the reproduced results.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Bytes per machine word.  The MBM bitmap maps one *word* to one bit.
WORD_BYTES = 8

#: Bytes per translation granule / smallest page.
PAGE_BYTES = 4096

#: Words per 4 KB page.
PAGE_WORDS = PAGE_BYTES // WORD_BYTES

#: Bytes per level-2 block mapping ("section" in the paper's wording).
SECTION_BYTES = 2 * 1024 * 1024

#: Cache line size used by all cache models.
LINE_BYTES = 64


@dataclass
class CostModel:
    """Cycle costs for modelled micro-architectural events.

    All values are in CPU cycles of the core under simulation.
    """

    # --- memory hierarchy -------------------------------------------------
    l1_hit: int = 4           #: L1 data cache hit latency.
    l2_hit: int = 12          #: L2 hit latency (after L1 miss).
    dram_row_hit: int = 70    #: DRAM access, open-row hit (~60 ns @ 1.15 GHz).
    dram_row_miss: int = 130  #: DRAM access, row conflict/closed row.
    uncached_access: int = 130  #: Device / non-cacheable access, full round trip.

    # --- MMU --------------------------------------------------------------
    tlb_hit: int = 0          #: Extra cycles on a TLB hit (folded into pipeline).
    walk_step_overhead: int = 2  #: Per-descriptor-fetch control overhead.

    # --- exceptions and privilege transitions ------------------------------
    svc_entry: int = 60       #: EL0 -> EL1 syscall entry (trap + register save).
    svc_exit: int = 60        #: EL1 -> EL0 return.
    hvc_entry: int = 120      #: EL1 -> EL2 hypercall entry (lean Hypersec vectors).
    hvc_exit: int = 120       #: EL2 -> EL1 return.
    trap_entry: int = 200     #: Trapped-instruction entry to EL2 (sync abort path).
    trap_exit: int = 200
    irq_entry: int = 250      #: Asynchronous IRQ take, incl. pipeline flush.
    irq_exit: int = 150

    # --- KVM world switch (Dall et al. report ~thousands of cycles for a
    # --- full trip through the KVM/ARM highvisor on Cortex-A57) -----------
    vm_exit: int = 3500       #: Guest -> host exit, incl. partial state save.
    vm_enter: int = 2900      #: Host -> guest re-entry.
    stage2_fault_handling: int = 2200  #: KVM software work to service one
    #: stage-2 translation fault (page lookup + stage-2 PTE install), on top
    #: of the exit/enter pair and the memory traffic the handler performs.
    kvm_af_fault_handling: int = 900   #: stage-2 access-flag (page aging)
    #: fault service, on top of the exit/enter pair.
    kvm_context_switch_overhead: int = 1600  #: hypervisor involvement per
    #: guest context switch (virtual timer / vGIC state synchronisation).
    kvm_fork_overhead: int = 32000  #: per-fork hypervisor involvement
    #: (combined-TLB refill storm after the COW flush + aging scans);
    #: calibrated against Table 1 (see DESIGN.md section 5).
    io_request_base: int = 900  #: driver + DMA descriptor work per I/O
    #: request, before interrupt costs (and before virtio exits on KVM).

    # --- Hypersec software work (charged on top of hvc entry/exit and the
    # --- memory accesses the verification actually performs) --------------
    hypersec_verify_pte: int = 40    #: Policy checks for one PTE update.
    hypersec_verify_reg: int = 30    #: Policy checks for one trapped MSR.
    hypersec_register_region: int = 120  #: Region bookkeeping + bitmap setup.
    hypersec_irq_dispatch: int = 90  #: Routing one MBM event to its SID.

    # --- MBM hardware pipeline (cycles of the *bus* clock, folded into the
    # --- CPU clock for simplicity; the MBM works off the critical path so
    # --- these costs are only charged to its own occupancy statistics) ----
    mbm_snoop: int = 1
    mbm_bitmap_cache_hit: int = 2
    mbm_bitmap_fetch: int = 130     #: Bitmap word fetch from DRAM on a miss.
    mbm_decision: int = 1


@dataclass
class PlatformConfig:
    """Static description of the simulated platform.

    Defaults model the ARM Versatile Express Juno r1 setup of the paper's
    performance experiments: Cortex-A57 big core at 1.15 GHz with 2 GB of
    motherboard DRAM (the paper moved from the 128 MB daughterboard SDRAM
    to 2 GB DRAM for the performance runs), with the top of DRAM reserved
    as the secure space for Hypersec and the MBM structures.
    """

    cpu_freq_hz: float = 1.15e9
    dram_bytes: int = 2 * 1024 * 1024 * 1024
    dram_base: int = 0x8000_0000
    #: Size of the reserved secure region at the top of DRAM (holds
    #: Hypersec, the MBM bitmap and the MBM ring buffer).
    secure_bytes: int = 128 * 1024 * 1024

    # Cache geometry (Cortex-A57-like).
    l1_bytes: int = 32 * 1024
    l1_ways: int = 2
    l2_bytes: int = 2 * 1024 * 1024
    l2_ways: int = 16

    # TLB geometry.  The A57 has a 48-entry fully-associative L1 TLB and a
    # 1024-entry L2 TLB; we model a single unified TLB in between.
    tlb_entries: int = 512
    #: Stage-2 TLB / IPA walk cache used when nested paging is active
    #: (KVM baseline).  Dedicated stage-2 caching is far smaller than the
    #: main TLB, which is what makes nested walks hurt in practice.
    stage2_tlb_entries: int = 64

    # DRAM banking for the row-buffer model.
    dram_banks: int = 8
    dram_row_bytes: int = 8192

    # MBM geometry (paper: FIFO + bitmap cache + ring buffer on the
    # LogicTile daughterboard).
    mbm_fifo_entries: int = 64
    mbm_bitmap_cache_lines: int = 64
    mbm_ring_entries: int = 1024

    costs: CostModel = field(default_factory=CostModel)

    @property
    def dram_limit(self) -> int:
        """First physical address past the end of DRAM."""
        return self.dram_base + self.dram_bytes

    @property
    def secure_base(self) -> int:
        """Base physical address of the reserved secure region."""
        return self.dram_limit - self.secure_bytes

    def cycles_to_us(self, cycles: int) -> float:
        """Convert a cycle count to microseconds at the CPU frequency."""
        return cycles / self.cpu_freq_hz * 1e6

    def us_to_cycles(self, us: float) -> int:
        """Convert microseconds to (rounded) CPU cycles."""
        return int(round(us * 1e-6 * self.cpu_freq_hz))


def juno_r1() -> PlatformConfig:
    """The default platform: Juno r1 big core, 2 GB DRAM (paper section 7)."""
    return PlatformConfig()


def juno_r1_daughterboard() -> PlatformConfig:
    """The 128 MB LogicTile SDRAM configuration of paper section 6.

    The paper's *monitoring* experiments (Table 2) ran with system memory
    placed on the daughterboard so the MBM could observe all traffic.
    """
    return PlatformConfig(
        dram_bytes=128 * 1024 * 1024,
        secure_bytes=16 * 1024 * 1024,
    )
