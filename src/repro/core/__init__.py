"""Hypernel core: Hypersec (EL2 software) and the MBM (bus hardware).

This package is the paper's primary contribution; everything else in the
repository is substrate or evaluation harness.  See
:mod:`repro.core.hypernel` for the builders that assemble the three
experimental configurations (native / kvm / hypernel).
"""
