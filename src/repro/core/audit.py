"""Runtime security-invariant auditor for Hypersec.

Paper section 5.2.1 calls the module's job "Verifying the OS Kernel
Page Table", and the Discussion section argues Hypersec's ~1.5 KLoC is
small enough to be formally verified.  This module is the executable
counterpart of that argument: it states Hypernel's security invariants
as code and *checks them against the actual machine state* — walking
the real translation tables in simulated memory, not Hypersec's
bookkeeping.

The invariant definitions and the checking engine live in
:mod:`repro.security.fuzz.invariants`, shared with the offline snapshot
checker and the hypercall fuzzer; this module contributes the *live*
evidence channel — the adapter that lets the shared engine read the
running platform — and keeps the historical
``HypersecAuditor``/``AuditReport`` interface.

Invariants audited (each maps to a paper claim):

``NO_SECURE_MAPPING``
    No valid kernel/user leaf maps any physical page of the secure
    region (§5.2).
``TABLES_READ_ONLY``
    Every registered translation-table page is mapped read-only in the
    kernel linear map (§5.2.1/§6.2).
``NO_WRITABLE_TABLE_ALIAS``
    No leaf anywhere maps a table page writable (§5.2.1).
``W_XOR_X``
    No kernel leaf is simultaneously writable and executable (§5.2.1).
``MONITORED_UNCACHED``
    Every page holding a registered monitored region is mapped
    non-cacheable, so the MBM sees all writes (§5.3).
``BITMAP_CONSISTENT``
    The MBM bitmap bits equal exactly the union of registered regions
    (§5.3): no lost coverage, no stray bits.
``TTBR_INTEGRITY``
    Live TTBR0/TTBR1 point at registered roots (§5.2.2).
``TABLE_TOPOLOGY``
    The table graph is well-formed: table pointers stay inside backed,
    non-secure RAM (hostile pointers are reported, not followed).

The auditor runs after :meth:`~repro.core.hypersec.Hypersec.protect`
as a boot-time verification, and can be re-run at any time (tests run
it after every attack scenario).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.config import PAGE_BYTES
from repro.errors import AllocationError, MemoryRangeError
from repro.arch.pagetable import Descriptor
from repro.security.fuzz.invariants import (
    Evidence,
    Finding as AuditFinding,
    Geometry,
    InvariantReport as AuditReport,
    run_invariants,
)
from repro.utils.stats import StatSet

__all__ = ["AuditFinding", "AuditReport", "HypersecAuditor", "LiveEvidence"]


class LiveEvidence(Evidence):
    """The running machine as seen by Hypersec itself.

    Raw access goes through the platform's backdoor (``bus.peek``), so
    the table walk reads real descriptors, but the *topology* inputs
    (registered tables, monitored pages, recorded registers) come from
    Hypersec's own bookkeeping.  That makes this channel fast and
    always available — and blind to bookkeeping desync, which is why
    ``claimed_tables`` returns ``None`` here and the dissimilar
    snapshot channel exists.
    """

    def __init__(self, hypersec):
        self.hypersec = hypersec
        self.platform = hypersec.platform
        config = self.platform.config
        self.geometry = Geometry(
            dram_base=config.dram_base,
            dram_limit=config.dram_base + config.dram_bytes,
            secure_base=self.platform.secure_base,
            secure_limit=self.platform.secure_limit,
        )

    # -- raw access ----------------------------------------------------
    def peek(self, paddr: int) -> int:
        return self.platform.bus.peek(paddr)

    def backed(self, paddr: int) -> bool:
        return self.platform.memory.contains(paddr)

    def reg(self, name: str) -> int:
        return self.hypersec.cpu.regs.read(name)

    # -- translation topology -----------------------------------------
    def roots(self) -> List[int]:
        roots = {self.hypersec.kernel_root & ~(PAGE_BYTES - 1)}
        roots.update(self.hypersec.root_tables)
        return sorted(roots)

    def table_pages(self) -> Set[int]:
        return set(self.hypersec.table_pages)

    # -- linear-map view ----------------------------------------------
    def has_linear_view(self) -> bool:
        return self.hypersec.kernel is not None

    def linear_leaf(self, paddr: int) -> Optional[Descriptor]:
        linear = self.hypersec.kernel.linear_map
        try:
            desc_addr, _level = linear.leaf_desc_addr(paddr)
            return Descriptor(self.platform.bus.peek(desc_addr))
        except (AllocationError, MemoryRangeError):
            return None

    # -- monitoring ----------------------------------------------------
    def monitored_pages(self) -> Set[int]:
        if self.hypersec.mbm is None:
            return set()
        return set(self.hypersec._monitored_page_refs)

    def expected_bitmap(self) -> Optional[Dict[int, int]]:
        mbm = self.hypersec.mbm
        if mbm is None:
            return None
        expected: Dict[int, int] = {}
        seen_regions = set()
        for ranges in self.hypersec._region_index.values():
            for base, end, sid in ranges:
                if (base, end, sid) in seen_regions:
                    continue
                seen_regions.add((base, end, sid))
                for word_addr, mask in mbm.bitmap.words_for_range(
                        base, end - base):
                    expected[word_addr] = expected.get(word_addr, 0) | mask
        return expected

    def bitmap_storage(self) -> Optional[Tuple[int, int]]:
        mbm = self.hypersec.mbm
        if mbm is None:
            return None
        return mbm.bitmap_storage

    # -- recorded policy ----------------------------------------------
    def recorded_kernel_root(self) -> Optional[int]:
        return self.hypersec.kernel_root

    def recorded_root_tables(self) -> Set[int]:
        return set(self.hypersec.root_tables)


class HypersecAuditor:
    """Checks Hypernel's invariants against live machine state."""

    def __init__(self, hypersec):
        self.hypersec = hypersec
        self.platform = hypersec.platform
        self.stats = StatSet("auditor")

    def audit(self) -> AuditReport:
        """Run every invariant check; returns the findings."""
        self.stats.add("audits")
        report = run_invariants(LiveEvidence(self.hypersec))
        # A modest flat cost: real audits would be periodic EL2 work.
        # (The walk itself uses backdoor reads: the auditor is EL2
        # software and charges per-audit, not per-access.)
        self.hypersec.cpu.compute(200 + report.leaves_checked // 4)
        return report
