"""Runtime security-invariant auditor for Hypersec.

Paper section 5.2.1 calls the module's job "Verifying the OS Kernel
Page Table", and the Discussion section argues Hypersec's ~1.5 KLoC is
small enough to be formally verified.  This module is the executable
counterpart of that argument: it states Hypernel's security invariants
as code and *checks them against the actual machine state* — walking
the real translation tables in simulated memory, not Hypersec's
bookkeeping.

Invariants audited (each maps to a paper claim):

``NO_SECURE_MAPPING``
    No valid kernel/user leaf maps any physical page of the secure
    region (§5.2).
``TABLES_READ_ONLY``
    Every registered translation-table page is mapped read-only in the
    kernel linear map (§5.2.1/§6.2).
``NO_WRITABLE_TABLE_ALIAS``
    No leaf anywhere maps a table page writable (§5.2.1).
``W_XOR_X``
    No kernel leaf is simultaneously writable and executable (§5.2.1).
``MONITORED_UNCACHED``
    Every page holding a registered monitored region is mapped
    non-cacheable, so the MBM sees all writes (§5.3).
``BITMAP_CONSISTENT``
    The MBM bitmap bits equal exactly the union of registered regions
    (§5.3): no lost coverage, no stray bits.
``TTBR_INTEGRITY``
    Live TTBR0/TTBR1 point at registered roots (§5.2.2).

The auditor runs after :meth:`~repro.core.hypersec.Hypersec.protect`
as a boot-time verification, and can be re-run at any time (tests run
it after every attack scenario).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from repro.config import PAGE_BYTES, WORD_BYTES
from repro.arch.pagetable import Descriptor, LEVEL_SPAN
from repro.utils.stats import StatSet


@dataclass(frozen=True)
class AuditFinding:
    """One invariant violation."""

    invariant: str
    location: int
    detail: str


@dataclass
class AuditReport:
    """Outcome of one audit pass."""

    findings: List[AuditFinding] = field(default_factory=list)
    tables_walked: int = 0
    leaves_checked: int = 0
    bitmap_words_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def add(self, invariant: str, location: int, detail: str) -> None:
        self.findings.append(AuditFinding(invariant, location, detail))

    def __str__(self) -> str:
        if self.clean:
            return (
                f"audit clean: {self.tables_walked} tables, "
                f"{self.leaves_checked} leaves, "
                f"{self.bitmap_words_checked} bitmap words"
            )
        lines = [f"audit found {len(self.findings)} violation(s):"]
        lines.extend(
            f"  [{f.invariant}] at {f.location:#x}: {f.detail}"
            for f in self.findings
        )
        return "\n".join(lines)


class HypersecAuditor:
    """Checks Hypernel's invariants against live machine state."""

    def __init__(self, hypersec):
        self.hypersec = hypersec
        self.platform = hypersec.platform
        self.stats = StatSet("auditor")

    # ------------------------------------------------------------------
    # Table traversal (backdoor reads: the auditor is EL2 software and
    # charges a flat per-audit cost instead of per-access timing)
    # ------------------------------------------------------------------
    def _walk_leaves(self, root: int) -> Iterator[Tuple[int, int, Descriptor]]:
        """Yield ``(desc_addr, level, descriptor)`` for every valid leaf
        reachable from ``root``, walking the real descriptors."""
        bus = self.platform.bus
        stack = [(root, 1)]
        seen_tables = set()
        while stack:
            table, level = stack.pop()
            if table in seen_tables:
                continue  # malformed loop: avoid infinite traversal
            seen_tables.add(table)
            for index in range(PAGE_BYTES // WORD_BYTES):
                desc_addr = table + index * WORD_BYTES
                desc = Descriptor(bus.peek(desc_addr))
                if not desc.valid:
                    continue
                if level < 3 and desc.is_table:
                    stack.append((desc.address, level + 1))
                else:
                    yield desc_addr, level, desc
        self._tables_walked = len(seen_tables)

    def _all_roots(self) -> List[int]:
        hypersec = self.hypersec
        roots = {hypersec.kernel_root & ~(PAGE_BYTES - 1)}
        roots.update(hypersec.root_tables)
        return sorted(roots)

    # ------------------------------------------------------------------
    # The audit
    # ------------------------------------------------------------------
    def audit(self) -> AuditReport:
        """Run every invariant check; returns the findings."""
        report = AuditReport()
        self.stats.add("audits")
        self._check_ttbrs(report)
        for root in self._all_roots():
            self._check_tree(root, report)
        self._check_monitored_pages(report)
        self._check_bitmap(report)
        # A modest flat cost: real audits would be periodic EL2 work.
        self.hypersec.cpu.compute(200 + report.leaves_checked // 4)
        return report

    def _check_ttbrs(self, report: AuditReport) -> None:
        regs = self.hypersec.cpu.regs
        ttbr1 = regs.read("TTBR1_EL1")
        if ttbr1 != self.hypersec.kernel_root:
            report.add("TTBR_INTEGRITY", ttbr1,
                       "TTBR1_EL1 does not point at the recorded kernel root")
        ttbr0 = regs.read("TTBR0_EL1") & ~(PAGE_BYTES - 1)
        if ttbr0 and ttbr0 not in self.hypersec.root_tables:
            report.add("TTBR_INTEGRITY", ttbr0,
                       "TTBR0_EL1 points at an unregistered root")

    def _check_tree(self, root: int, report: AuditReport) -> None:
        hypersec = self.hypersec
        secure_base = self.platform.secure_base
        secure_limit = self.platform.secure_limit
        for desc_addr, level, desc in self._walk_leaves(root):
            report.leaves_checked += 1
            span = LEVEL_SPAN[level]
            target_base = desc.address
            target_end = target_base + span
            if target_base < secure_limit and target_end > secure_base:
                report.add("NO_SECURE_MAPPING", desc_addr,
                           f"leaf maps secure region page {target_base:#x}")
            if desc.writable:
                for page in self._pages(target_base, target_end):
                    if page in hypersec.table_pages:
                        report.add(
                            "NO_WRITABLE_TABLE_ALIAS", desc_addr,
                            f"writable mapping of table page {page:#x}",
                        )
                if desc.executable and not desc.user:
                    report.add("W_XOR_X", desc_addr,
                               f"kernel leaf W+X at {target_base:#x}")
            else:
                # Read-only is what table pages must be; nothing to check.
                pass
            # TABLES_READ_ONLY: the linear-map leaf covering each table
            # page must be read-only (checked from the table list below,
            # but a writable alias inside *any* tree is caught above).
        report.tables_walked += self._tables_walked
        del self._tables_walked
        if root == (hypersec.kernel_root & ~(PAGE_BYTES - 1)):
            self._check_tables_read_only(report)

    @staticmethod
    def _pages(base: int, end: int) -> Iterator[int]:
        # Cap the per-leaf page scan: 2 MB blocks dominate; 1 GB leaves
        # do not occur in these kernels.
        for page in range(base, min(end, base + (2 << 20)), PAGE_BYTES):
            yield page

    def _check_tables_read_only(self, report: AuditReport) -> None:
        hypersec = self.hypersec
        if hypersec.kernel is None:
            return
        linear = hypersec.kernel.linear_map
        for table in sorted(hypersec.table_pages):
            desc_addr, _level = linear.leaf_desc_addr(table)
            desc = Descriptor(self.platform.bus.peek(desc_addr))
            if desc.writable:
                report.add("TABLES_READ_ONLY", table,
                           "table page is writable through the linear map")

    def _check_monitored_pages(self, report: AuditReport) -> None:
        hypersec = self.hypersec
        if hypersec.kernel is None or hypersec.mbm is None:
            return
        linear = hypersec.kernel.linear_map
        for page in sorted(hypersec._monitored_page_refs):
            desc_addr, _level = linear.leaf_desc_addr(page)
            desc = Descriptor(self.platform.bus.peek(desc_addr))
            if desc.cacheable:
                report.add("MONITORED_UNCACHED", page,
                           "monitored page is cacheable: MBM would miss writes")

    def _check_bitmap(self, report: AuditReport) -> None:
        """The bitmap must equal the union of registered regions."""
        hypersec = self.hypersec
        mbm = hypersec.mbm
        if mbm is None:
            return
        bus = self.platform.bus
        expected: dict = {}
        seen_regions = set()
        for ranges in hypersec._region_index.values():
            for base, end, sid in ranges:
                if (base, end, sid) in seen_regions:
                    continue
                seen_regions.add((base, end, sid))
                for word_addr, mask in mbm.bitmap.words_for_range(
                    base, end - base
                ):
                    expected[word_addr] = expected.get(word_addr, 0) | mask
        bitmap_base, bitmap_limit = mbm.bitmap_storage
        for word_addr in range(bitmap_base, bitmap_limit, WORD_BYTES):
            actual = bus.peek(word_addr)
            wanted = expected.get(word_addr, 0)
            if actual != wanted:
                report.add(
                    "BITMAP_CONSISTENT", word_addr,
                    f"bitmap word is {actual:#x}, regions imply {wanted:#x}",
                )
            if actual or wanted:
                report.bitmap_words_checked += 1
