"""The Hypersec hypercall ABI (paper sections 5.2.1, 5.3, 6.2).

Function numbers passed in the HVC immediate; arguments are plain words.
The kernel-side hooks (:mod:`repro.kernel.pgtable_mgmt`,
:mod:`repro.kernel.kernel`) invoke these; Hypersec dispatches on them.
"""

# Page-table management (paper 5.2.1 / 6.2): the kernel never writes its
# own translation tables; it requests writes and Hypersec verifies them.
HVC_PGTABLE_WRITE = 1      #: args: (descriptor_paddr, new_descriptor)
HVC_PGTABLE_ALLOC = 2      #: args: (table_paddr,) — new table page: make RO
HVC_PGTABLE_FREE = 3       #: args: (table_paddr,) — retired table page

# Kernel monitoring (paper 5.3): security-application region hooks.
HVC_REGISTER_REGION = 4    #: args: (sid, base_kva, size_bytes)
HVC_UNREGISTER_REGION = 5  #: args: (sid, base_kva, size_bytes)

# MBM interrupt service: the kernel IRQ stub forwards the MBM interrupt
# into Hypersec (paper 6.2: "we inserted a hypercall in the kernel
# interrupt handler").
HVC_MBM_SERVICE = 6        #: args: ()

# Granularity-gap fallback (section-mode linear map, ablation B): a
# kernel write faulted on a read-only 2 MB section that shelters a page
# table; Hypersec validates and emulates the write.
HVC_EMULATE_WRITE = 7      #: args: (dest_paddr, value)
HVC_EMULATE_WRITE_BLOCK = 8  #: args: (dest_paddr, nwords) — bulk variant
#: used by the kernel for page-sized fills/copies that gap-fault; the
#: per-word fault costs are charged kernel-side, this call batches only
#: the simulation round trips.

#: Result codes.
HVC_OK = 0
HVC_DENIED = 1

NAMES = {
    HVC_PGTABLE_WRITE: "pgtable_write",
    HVC_PGTABLE_ALLOC: "pgtable_alloc",
    HVC_PGTABLE_FREE: "pgtable_free",
    HVC_REGISTER_REGION: "register_region",
    HVC_UNREGISTER_REGION: "unregister_region",
    HVC_MBM_SERVICE: "mbm_service",
    HVC_EMULATE_WRITE: "emulate_write",
    HVC_EMULATE_WRITE_BLOCK: "emulate_write_block",
}
