"""System builders: the three experimental configurations of section 7.

* :func:`build_native` — the base kernel, nothing at EL2.
* :func:`build_kvm_guest` — the kernel inside a KVM-style VM: stage-2
  translation (nested paging), demand faults, world-switch costs.
* :func:`build_hypernel` — the kernel under Hypernel: Hypersec at EL2
  (no stage 2), hypercall-verified page tables, TVM traps, and
  optionally the MBM plus security applications.

Each builder returns a :class:`System` handle bundling every component
the workloads and benchmarks need.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.config import PlatformConfig
from repro.hw.platform import Platform
from repro.arch.cpu import CPUCore
from repro.core.hypersec import Hypersec
from repro.core.mbm.mbm import MemoryBusMonitor
from repro.hypervisor.kvm import KvmHypervisor
from repro.kernel.env import ExecutionEnvironment, KvmGuestEnvironment
from repro.kernel.irq import MbmIrqStub
from repro.kernel.kernel import Kernel, KernelConfig
from repro.kernel.pgtable_mgmt import HypercallPgTableWriter
from repro.kernel.process import Task
from repro.security.app import SecurityApp
from repro.security.hooks import MonitorHookStub


def _default_platform_config() -> PlatformConfig:
    """A mid-sized platform: fast to boot, big enough for workloads."""
    return PlatformConfig(
        dram_bytes=256 * 1024 * 1024,
        secure_bytes=32 * 1024 * 1024,
    )


def _build_recipe(
    name: str,
    kernel_config: KernelConfig,
    monitors: Optional[List[SecurityApp]] = None,
    **kwargs: Any,
) -> Dict[str, Any]:
    """A JSON description sufficient to rebuild this system's skeleton
    (everything except the :class:`PlatformConfig`, which the snapshot
    manifest carries in its cost fingerprint)."""
    from repro.security.registry import monitor_spec

    return {
        "system": name,
        "kwargs": kwargs,
        "kernel_config": {
            "linear_map_mode": kernel_config.linear_map_mode,
            "image_reserve_bytes": kernel_config.image_reserve_bytes,
            "op_costs": dataclasses.asdict(kernel_config.op_costs),
        },
        "monitors": [monitor_spec(app) for app in monitors or []],
    }


@dataclass
class System:
    """One assembled machine + kernel (+ optional EL2 residents)."""

    name: str
    platform: Platform
    cpu: CPUCore
    kernel: Kernel
    hypersec: Optional[Hypersec] = None
    mbm: Optional[MemoryBusMonitor] = None
    kvm: Optional[KvmHypervisor] = None
    hooks: Optional[MonitorHookStub] = None
    monitors: List[SecurityApp] = field(default_factory=list)
    #: how this system was built (consumed by repro.state snapshots).
    recipe: Dict[str, Any] = field(default_factory=dict)

    def spawn_init(self) -> Task:
        """Create and fault in the first process."""
        return self.kernel.procs.spawn_init()

    def cycles_to_us(self, cycles: int) -> float:
        return self.platform.config.cycles_to_us(cycles)

    @property
    def now(self) -> int:
        return self.platform.clock.now

    def monitor_by_name(self, name: str) -> SecurityApp:
        for app in self.monitors:
            if app.name == name:
                return app
        raise KeyError(f"no monitor named {name!r} on system {self.name}")

    def stats_summary(self) -> Dict[str, int]:
        """Headline counters for reports and debugging."""
        summary = {
            "cycles": self.now,
            "tlb_misses": self.cpu.mmu.tlb.stats.get("misses"),
            "stage1_walks": self.cpu.mmu.stats.get("stage1_walks"),
            "stage2_desc_fetches": self.cpu.mmu.stats.get("stage2_desc_fetches"),
            "vm_exits": self.cpu.stats.get("vm_exits"),
            "hypercalls": self.cpu.stats.get("hvc"),
            "trapped_msr": self.cpu.stats.get("trapped_msr"),
        }
        if self.mbm is not None:
            summary["mbm_events"] = self.mbm.events_detected
        return summary


def build_native(
    platform_config: Optional[PlatformConfig] = None,
    kernel_config: Optional[KernelConfig] = None,
    _skeleton: bool = False,
) -> System:
    """The **Native** case: base kernel, vanilla 2 MB-section map.

    ``_skeleton`` (used by :mod:`repro.state`) wires all components but
    skips the boot sequence: the restored memory image and component
    state dicts supply everything boot would have produced.
    """
    platform = Platform(platform_config or _default_platform_config())
    cpu = CPUCore(platform)
    kcfg = kernel_config or KernelConfig(linear_map_mode="section")
    kernel = Kernel(platform, cpu, kcfg)
    if not _skeleton:
        kernel.boot()
    return System("native", platform, cpu, kernel,
                  recipe=_build_recipe("native", kcfg))


def build_kvm_guest(
    platform_config: Optional[PlatformConfig] = None,
    kernel_config: Optional[KernelConfig] = None,
    prepopulate_stage2: bool = False,
    _skeleton: bool = False,
) -> System:
    """The **KVM-guest** case: the same kernel under nested paging."""
    platform = Platform(platform_config or _default_platform_config())
    cpu = CPUCore(platform)
    kvm = KvmHypervisor(platform, cpu)
    kvm.install()
    kcfg = kernel_config or KernelConfig(linear_map_mode="section")
    kernel = Kernel(platform, cpu, kcfg, env=KvmGuestEnvironment(cpu))
    if not _skeleton:
        kernel.boot()
        if prepopulate_stage2:
            kvm.prepopulate(kvm.guest_base, kvm.guest_limit)
    return System("kvm-guest", platform, cpu, kernel, kvm=kvm,
                  recipe=_build_recipe("kvm-guest", kcfg,
                                       prepopulate_stage2=prepopulate_stage2))


def build_hypernel(
    platform_config: Optional[PlatformConfig] = None,
    kernel_config: Optional[KernelConfig] = None,
    with_mbm: bool = True,
    monitors: Optional[List[SecurityApp]] = None,
    bitmap_cache_enabled: bool = True,
    irq_coalesce: int = 1,
    _skeleton: bool = False,
) -> System:
    """The **Hypernel** case: Hypersec (+ MBM and monitors if requested).

    The performance experiments of paper 7.1 ran with only Hypersec
    active (``with_mbm=False`` matches that exactly); the monitoring
    experiments of 7.2 add the MBM and the security applications.
    """
    platform = Platform(platform_config or _default_platform_config())
    cpu = CPUCore(platform)
    mbm = None
    if with_mbm:
        mbm = MemoryBusMonitor(
            platform,
            bitmap_cache_enabled=bitmap_cache_enabled,
            irq_coalesce=irq_coalesce,
        )
        mbm.attach()
    hypersec = Hypersec(platform, cpu, mbm)
    hypersec.install()
    kcfg = kernel_config or KernelConfig(linear_map_mode="page")
    kernel = Kernel(
        platform,
        cpu,
        kcfg,
        pgwriter=HypercallPgTableWriter(cpu),
        env=ExecutionEnvironment(cpu),
    )
    if not _skeleton:
        kernel.boot()
        hypersec.protect(kernel)
    system = System(
        "hypernel", platform, cpu, kernel, hypersec=hypersec, mbm=mbm,
        recipe=_build_recipe("hypernel", kcfg, monitors=monitors,
                             with_mbm=with_mbm,
                             bitmap_cache_enabled=bitmap_cache_enabled,
                             irq_coalesce=irq_coalesce),
    )
    if with_mbm:
        MbmIrqStub(kernel).install()
        hooks = MonitorHookStub(kernel)
        hooks.install()
        system.hooks = hooks
        for app in monitors or []:
            hypersec.register_app(app)
            hooks.add_app(app)
            system.monitors.append(app)
    return system


_BUILDERS = {
    "native": build_native,
    "kvm-guest": build_kvm_guest,
    "hypernel": build_hypernel,
}


def build_system(name: str, from_snapshot=None, **kwargs) -> System:
    """Build a configuration by name: native / kvm-guest / hypernel.

    With ``from_snapshot`` (a path to a file written by
    :func:`repro.state.save_snapshot`), the system is *restored* instead
    of booted; ``name`` must match the snapshotted configuration and no
    other build arguments are accepted (the snapshot dictates them).
    """
    if name not in _BUILDERS:
        raise KeyError(
            f"unknown system {name!r}; choose from {sorted(_BUILDERS)}"
        )
    if from_snapshot is not None:
        if kwargs:
            raise TypeError(
                "from_snapshot cannot be combined with build arguments: "
                f"{sorted(kwargs)}"
            )
        from repro.state import restore_system

        system = restore_system(from_snapshot)
        if system.name != name:
            raise KeyError(
                f"snapshot holds a {system.name!r} system, not {name!r}"
            )
        return system
    return _BUILDERS[name](**kwargs)
