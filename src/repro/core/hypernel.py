"""System builders: the three experimental configurations of section 7.

* :func:`build_native` — the base kernel, nothing at EL2.
* :func:`build_kvm_guest` — the kernel inside a KVM-style VM: stage-2
  translation (nested paging), demand faults, world-switch costs.
* :func:`build_hypernel` — the kernel under Hypernel: Hypersec at EL2
  (no stage 2), hypercall-verified page tables, TVM traps, and
  optionally the MBM plus security applications.

Each builder returns a :class:`System` handle bundling every component
the workloads and benchmarks need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config import PlatformConfig
from repro.hw.platform import Platform
from repro.arch.cpu import CPUCore
from repro.core.hypersec import Hypersec
from repro.core.mbm.mbm import MemoryBusMonitor
from repro.hypervisor.kvm import KvmHypervisor
from repro.kernel.env import ExecutionEnvironment, KvmGuestEnvironment
from repro.kernel.irq import MbmIrqStub
from repro.kernel.kernel import Kernel, KernelConfig
from repro.kernel.pgtable_mgmt import HypercallPgTableWriter
from repro.kernel.process import Task
from repro.security.app import SecurityApp
from repro.security.hooks import MonitorHookStub


def _default_platform_config() -> PlatformConfig:
    """A mid-sized platform: fast to boot, big enough for workloads."""
    return PlatformConfig(
        dram_bytes=256 * 1024 * 1024,
        secure_bytes=32 * 1024 * 1024,
    )


@dataclass
class System:
    """One assembled machine + kernel (+ optional EL2 residents)."""

    name: str
    platform: Platform
    cpu: CPUCore
    kernel: Kernel
    hypersec: Optional[Hypersec] = None
    mbm: Optional[MemoryBusMonitor] = None
    kvm: Optional[KvmHypervisor] = None
    hooks: Optional[MonitorHookStub] = None
    monitors: List[SecurityApp] = field(default_factory=list)

    def spawn_init(self) -> Task:
        """Create and fault in the first process."""
        return self.kernel.procs.spawn_init()

    def cycles_to_us(self, cycles: int) -> float:
        return self.platform.config.cycles_to_us(cycles)

    @property
    def now(self) -> int:
        return self.platform.clock.now

    def monitor_by_name(self, name: str) -> SecurityApp:
        for app in self.monitors:
            if app.name == name:
                return app
        raise KeyError(f"no monitor named {name!r} on system {self.name}")

    def stats_summary(self) -> Dict[str, int]:
        """Headline counters for reports and debugging."""
        summary = {
            "cycles": self.now,
            "tlb_misses": self.cpu.mmu.tlb.stats.get("misses"),
            "stage1_walks": self.cpu.mmu.stats.get("stage1_walks"),
            "stage2_desc_fetches": self.cpu.mmu.stats.get("stage2_desc_fetches"),
            "vm_exits": self.cpu.stats.get("vm_exits"),
            "hypercalls": self.cpu.stats.get("hvc"),
            "trapped_msr": self.cpu.stats.get("trapped_msr"),
        }
        if self.mbm is not None:
            summary["mbm_events"] = self.mbm.events_detected
        return summary


def build_native(
    platform_config: Optional[PlatformConfig] = None,
    kernel_config: Optional[KernelConfig] = None,
) -> System:
    """The **Native** case: base kernel, vanilla 2 MB-section map."""
    platform = Platform(platform_config or _default_platform_config())
    cpu = CPUCore(platform)
    kernel = Kernel(
        platform,
        cpu,
        kernel_config or KernelConfig(linear_map_mode="section"),
    )
    kernel.boot()
    return System("native", platform, cpu, kernel)


def build_kvm_guest(
    platform_config: Optional[PlatformConfig] = None,
    kernel_config: Optional[KernelConfig] = None,
    prepopulate_stage2: bool = False,
) -> System:
    """The **KVM-guest** case: the same kernel under nested paging."""
    platform = Platform(platform_config or _default_platform_config())
    cpu = CPUCore(platform)
    kvm = KvmHypervisor(platform, cpu)
    kvm.install()
    kernel = Kernel(
        platform,
        cpu,
        kernel_config or KernelConfig(linear_map_mode="section"),
        env=KvmGuestEnvironment(cpu),
    )
    kernel.boot()
    if prepopulate_stage2:
        kvm.prepopulate(kvm.guest_base, kvm.guest_limit)
    return System("kvm-guest", platform, cpu, kernel, kvm=kvm)


def build_hypernel(
    platform_config: Optional[PlatformConfig] = None,
    kernel_config: Optional[KernelConfig] = None,
    with_mbm: bool = True,
    monitors: Optional[List[SecurityApp]] = None,
    bitmap_cache_enabled: bool = True,
    irq_coalesce: int = 1,
) -> System:
    """The **Hypernel** case: Hypersec (+ MBM and monitors if requested).

    The performance experiments of paper 7.1 ran with only Hypersec
    active (``with_mbm=False`` matches that exactly); the monitoring
    experiments of 7.2 add the MBM and the security applications.
    """
    platform = Platform(platform_config or _default_platform_config())
    cpu = CPUCore(platform)
    mbm = None
    if with_mbm:
        mbm = MemoryBusMonitor(
            platform,
            bitmap_cache_enabled=bitmap_cache_enabled,
            irq_coalesce=irq_coalesce,
        )
        mbm.attach()
    hypersec = Hypersec(platform, cpu, mbm)
    hypersec.install()
    kernel = Kernel(
        platform,
        cpu,
        kernel_config or KernelConfig(linear_map_mode="page"),
        pgwriter=HypercallPgTableWriter(cpu),
        env=ExecutionEnvironment(cpu),
    )
    kernel.boot()
    hypersec.protect(kernel)
    system = System(
        "hypernel", platform, cpu, kernel, hypersec=hypersec, mbm=mbm
    )
    if with_mbm:
        MbmIrqStub(kernel).install()
        hooks = MonitorHookStub(kernel)
        hooks.install()
        system.hooks = hooks
        for app in monitors or []:
            hypersec.register_app(app)
            hooks.add_app(app)
            system.monitors.append(app)
    return system


_BUILDERS = {
    "native": build_native,
    "kvm-guest": build_kvm_guest,
    "hypernel": build_hypernel,
}


def build_system(name: str, **kwargs) -> System:
    """Build a configuration by name: native / kvm-guest / hypernel."""
    if name not in _BUILDERS:
        raise KeyError(
            f"unknown system {name!r}; choose from {sorted(_BUILDERS)}"
        )
    return _BUILDERS[name](**kwargs)
