"""Hypersec: the EL2-resident security software of Hypernel.

Implements the paper's sections 5.2, 5.3 and 6.1:

* **Isolated execution environment without nested paging** — Hypersec
  never enables stage-2 translation.  Isolation rests on two invariants
  it enforces instead:

  1. *verified kernel page tables* (5.2.1): the kernel's translation
     tables are read-only to EL1; every update arrives as a hypercall
     that Hypersec validates (no mapping of the secure region, no
     writable mapping of a table page, W xor X) and performs itself;
  2. *trapped privileged instructions* (5.2.2): with ``HCR_EL2.TVM``
     set, EL1 writes of TTBR0/TTBR1/SCTLR/TCR/MAIR trap here and are
     checked against the recorded good configuration.

* **Hardware-assisted monitoring** (5.3): security applications register
  regions; Hypersec translates their kernel VAs to physical addresses,
  sets the MBM's word-granularity bitmap (with uncached stores the MBM
  snoops), makes the containing pages non-cacheable so every write
  reaches the bus, and services the MBM interrupt by draining the ring
  buffer and routing each (address, value) event to its application.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.config import PAGE_BYTES, PAGE_WORDS, SECTION_BYTES, WORD_BYTES
from repro.errors import SecurityViolation, SimulationError
from repro.hw.platform import Platform
from repro.arch.cpu import CPUCore
from repro.arch.exceptions import EL2, EL2Vector
from repro.arch.pagetable import (
    DESC_AP_WRITE,
    DESC_NC,
    Descriptor,
    LEVEL_SPAN,
)
from repro.arch.registers import HCR_TVM, SCTLR_M
from repro.core import hypercalls as hc
from repro.core.mbm import bitmap as mbm_bitmap
from repro.core.mbm.mbm import MemoryBusMonitor
from repro.utils.bitops import align_down
from repro.utils.events import EventHook
from repro.utils.stats import StatSet


class Hypersec(EL2Vector):
    """The ~1.5 KLoC EL2 module, as a simulation model."""

    def __init__(self, platform: Platform, cpu: CPUCore,
                 mbm: Optional[MemoryBusMonitor] = None):
        self.platform = platform
        self.cpu = cpu
        self.costs = platform.config.costs
        self.mbm = mbm
        self.kernel = None  # set by protect()
        self.stats = StatSet("hypersec")
        self.alerts = EventHook("hypersec_alerts")

        # Policy state (resident in the secure region on real hardware).
        self.table_pages: Set[int] = set()
        self.root_tables: Set[int] = set()
        #: boot-time linear-map tables: immutable after protect() except
        #: for attribute bits (the kernel never legitimately remaps its
        #: direct mapping).
        self.linear_tables: Set[int] = set()
        #: table page -> number of verified table-pointer descriptors
        #: referencing it.  Maintained at the single mediation point
        #: (every descriptor write passes through ``_h_pgtable_write``),
        #: so ``pgtable_free`` can refuse to release a table that is
        #: still reachable from a live tree in O(1).
        self._table_refs: Dict[int, int] = {}
        #: table page -> translation level of the table it holds (1-3).
        #: Unknown (absent) between ``pgtable_alloc`` and the first
        #: parent link; a claimed hypercall level that contradicts the
        #: recorded level is a level-confusion attack (a level-3 "page"
        #: descriptor placed in a level-2 table is a table pointer to
        #: hardware) and is denied.
        self._table_levels: Dict[int, int] = {}
        self.kernel_root = 0
        self.recorded_regs: Dict[str, int] = {}
        self._protected = False

        # Monitoring state.
        self._apps: Dict[int, object] = {}
        self._next_sid = 1
        #: page -> list of (base, end, sid) monitored ranges on it
        self._region_index: Dict[int, List[Tuple[int, int, int]]] = {}
        #: page -> number of registered ranges touching it
        self._monitored_page_refs: Dict[int, int] = {}
        #: sections turned read-only in section mode (granularity gap)
        self.gap_sections: Set[int] = set()

    # ------------------------------------------------------------------
    # Checkpoint/restore
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Policy + monitoring state.  The application objects in
        ``_apps`` are serialized separately (system "monitors" section)
        and rewired on restore; per-page range lists keep their order
        (dispatch iterates them)."""
        return {
            "table_pages": sorted(self.table_pages),
            "root_tables": sorted(self.root_tables),
            "linear_tables": sorted(self.linear_tables),
            "table_refs": sorted(self._table_refs.items()),
            "table_levels": sorted(self._table_levels.items()),
            "kernel_root": self.kernel_root,
            "recorded_regs": dict(self.recorded_regs),
            "protected": self._protected,
            "next_sid": self._next_sid,
            "region_index": [
                [page, [[base, end, sid] for base, end, sid in ranges]]
                for page, ranges in self._region_index.items()
            ],
            "monitored_page_refs": [
                [page, refs]
                for page, refs in self._monitored_page_refs.items()
            ],
            "gap_sections": sorted(self.gap_sections),
            "stats": self.stats.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self.table_pages = {int(p) for p in state["table_pages"]}
        self.root_tables = {int(p) for p in state["root_tables"]}
        self.linear_tables = {int(p) for p in state["linear_tables"]}
        self.kernel_root = int(state["kernel_root"])
        self.recorded_regs = {str(name): int(value)
                              for name, value in state["recorded_regs"].items()}
        self._protected = bool(state["protected"])
        self._next_sid = int(state["next_sid"])
        self._region_index = {
            int(page): [(int(base), int(end), int(sid))
                        for base, end, sid in ranges]
            for page, ranges in state["region_index"]
        }
        self._monitored_page_refs = {
            int(page): int(refs)
            for page, refs in state["monitored_page_refs"]
        }
        self.gap_sections = {int(s) for s in state["gap_sections"]}
        if "table_refs" in state:
            self._table_refs = {int(t): int(n) for t, n in state["table_refs"]}
            self._table_levels = {int(t): int(l)
                                  for t, l in state["table_levels"]}
        else:  # snapshot predates the topology cache: re-derive it
            self._rebuild_topology()
        self.stats.load_state(state["stats"])

    # ------------------------------------------------------------------
    # Initialization (paper 6.1)
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Boot-time EL2 initialization: page table, stack, vectors."""
        regs = self.cpu.regs
        # Linear EL2 page table (modelled as the identity regime), stack
        # and exception vectors.
        regs.write("TTBR0_EL2", self.platform.secure_base)
        regs.write("SP_EL2", self.platform.secure_limit - WORD_BYTES)
        regs.write("VBAR_EL2", self.platform.secure_base + 0x800)
        self.cpu.install_el2_vector(self)
        self.stats.add("installed")

    def register_app(self, app) -> int:
        """Assign a security-application ID (SID, paper 5.3)."""
        sid = self._next_sid
        self._next_sid += 1
        self._apps[sid] = app
        app.sid = sid
        return sid

    # ------------------------------------------------------------------
    # Kernel protection bring-up
    # ------------------------------------------------------------------
    def protect(self, kernel, verify_boot: bool = True) -> None:
        """Lock down a freshly booted kernel (secure-boot hand-off).

        Records the good VM-register configuration, registers and
        write-protects every existing translation-table page, and
        enables TVM trapping.  Must run before the first runtime
        page-table update.

        With ``verify_boot`` (the default, matching paper 5.2.1's
        "Hypersec verifies the request" discipline applied to the
        initial state), a full invariant audit of the just-locked
        kernel runs and any violation aborts the boot.
        """
        if self._protected:
            raise SimulationError("protect() called twice")
        self.kernel = kernel
        regs = self.cpu.regs
        self.kernel_root = regs.read("TTBR1_EL1")
        for name in ("SCTLR_EL1", "TCR_EL1", "MAIR_EL1"):
            self.recorded_regs[name] = regs.read(name)
        self.linear_tables = set(kernel.linear_map.table_pages)
        for table in sorted(kernel.linear_map.table_pages):
            self._register_table_page(table, is_root=False, verify_empty=False)
        self.table_pages.add(self.kernel_root & ~(PAGE_BYTES - 1))
        self._rebuild_topology()
        regs.set_bits("HCR_EL2", HCR_TVM)
        self._protected = True
        self.stats.add("protected")
        if verify_boot:
            report = self.audit()
            if not report.clean:
                self._alert("boot_verification", findings=len(report.findings))
                raise SecurityViolation(
                    f"boot-time verification failed: {report}", policy="boot"
                )

    # ------------------------------------------------------------------
    # EL2 memory helpers (identity map; charged to the caller's clock)
    # ------------------------------------------------------------------
    def _el2_write(self, paddr: int, value: int, cacheable: bool = True) -> None:
        saved = self.cpu.current_el
        self.cpu.current_el = EL2
        try:
            self.platform.caches.write(paddr, value, cacheable)
        finally:
            self.cpu.current_el = saved

    def _el2_read(self, paddr: int, cacheable: bool = True) -> int:
        saved = self.cpu.current_el
        self.cpu.current_el = EL2
        try:
            return self.platform.caches.read(paddr, cacheable)
        finally:
            self.cpu.current_el = saved

    # ------------------------------------------------------------------
    # EL2Vector: hypercalls
    # ------------------------------------------------------------------
    #: func -> (min_args, max_args).  A hostile caller may pass any
    #: argument vector; a wrong arity is a denied request, never a
    #: Python-level crash inside EL2.
    _HVC_ARITY = {
        hc.HVC_PGTABLE_WRITE: (2, 3),
        hc.HVC_PGTABLE_ALLOC: (1, 2),
        hc.HVC_PGTABLE_FREE: (1, 1),
        hc.HVC_REGISTER_REGION: (3, 3),
        hc.HVC_UNREGISTER_REGION: (3, 3),
        hc.HVC_MBM_SERVICE: (0, 0),
        hc.HVC_EMULATE_WRITE: (2, 2),
        hc.HVC_EMULATE_WRITE_BLOCK: (2, 2),
    }

    def handle_hvc(self, cpu: CPUCore, func: int, args: Sequence[int]) -> int:
        self.stats.add(f"hvc.{hc.NAMES.get(func, func)}")
        bounds = self._HVC_ARITY.get(func)
        if bounds is not None:
            low, high = bounds
            if not (low <= len(args) <= high
                    and all(isinstance(a, int) for a in args)):
                self._alert("hypercall_bad_arity", func=func,
                            nargs=len(args))
                return hc.HVC_DENIED
        if func == hc.HVC_PGTABLE_WRITE:
            return self._h_pgtable_write(*args)
        if func == hc.HVC_PGTABLE_ALLOC:
            return self._h_pgtable_alloc(args[0], bool(args[1]) if len(args) > 1 else False)
        if func == hc.HVC_PGTABLE_FREE:
            return self._h_pgtable_free(args[0])
        if func == hc.HVC_REGISTER_REGION:
            return self._h_register_region(*args)
        if func == hc.HVC_UNREGISTER_REGION:
            return self._h_unregister_region(*args)
        if func == hc.HVC_MBM_SERVICE:
            return self._h_mbm_service()
        if func == hc.HVC_EMULATE_WRITE:
            return self._h_emulate_write(*args)
        if func == hc.HVC_EMULATE_WRITE_BLOCK:
            return self._h_emulate_write_block(*args)
        self._alert("unknown_hypercall", func=func)
        return hc.HVC_DENIED

    def _alert(self, policy: str, **info) -> None:
        self.stats.add(f"alert.{policy}")
        self.alerts.fire(policy, info)

    # ------------------------------------------------------------------
    # Page-table write verification (paper 5.2.1)
    # ------------------------------------------------------------------
    def _h_pgtable_write(self, desc_paddr: int, value: int, level: int = 3) -> int:
        self.cpu.compute(self.costs.hypersec_verify_pte)
        if (level not in LEVEL_SPAN or desc_paddr % WORD_BYTES
                or not 0 <= value < (1 << 64)):
            self._alert("pgtable_bad_args", desc=desc_paddr, level=level)
            return hc.HVC_DENIED
        table_page = align_down(desc_paddr, PAGE_BYTES)
        if table_page not in self.table_pages:
            self._alert("pgtable_target", desc=desc_paddr)
            return hc.HVC_DENIED
        known_level = self._table_levels.get(table_page)
        if known_level is None:
            # Not yet linked into any tree.  A populated orphan table
            # could later be linked at an arbitrary level, re-typing
            # every entry (level confusion), so only inert zero writes
            # are accepted before the first link.
            if value != 0:
                self._alert("unlinked_table_write", desc=desc_paddr)
                return hc.HVC_DENIED
        elif level != known_level:
            self._alert("pgtable_level_mismatch", desc=desc_paddr,
                        claimed=level, actual=known_level)
            return hc.HVC_DENIED
        desc = Descriptor(value)
        # Backdoor read of the current descriptor; the architectural
        # cost is charged inside the verdict helpers at the same points
        # as always (the table-pointer path folds it into the flat
        # verify cost).
        old = Descriptor(self.platform.bus.peek(desc_paddr))
        if desc.valid:
            if level < 3 and desc.is_table:
                # Next-level pointer: must reference a registered table
                # whose level agrees with its new parent.
                if desc.address not in self.table_pages:
                    self._alert("unregistered_table", target=desc.address)
                    return hc.HVC_DENIED
                child_level = self._table_levels.get(desc.address)
                if child_level is not None and child_level != level + 1:
                    self._alert("table_level_conflict",
                                target=desc.address,
                                have=child_level, want=level + 1)
                    return hc.HVC_DENIED
                verdict = self._check_old_mapping(desc_paddr, old, desc,
                                                  level)
                if verdict != hc.HVC_OK:
                    return verdict
            else:
                verdict = self._check_leaf(desc_paddr, desc, level, old)
                if verdict != hc.HVC_OK:
                    return verdict
        else:
            verdict = self._check_unmap(desc_paddr, level, old)
            if verdict != hc.HVC_OK:
                return verdict
        # Maintain the table-pointer refcounts and level map at the
        # mediation point (this is what keeps pgtable_free O(1)).
        old_is_table = level < 3 and old.valid and old.is_table
        new_is_table = level < 3 and desc.valid and desc.is_table
        if old_is_table:
            refs = self._table_refs.get(old.address, 0) - 1
            if refs > 0:
                self._table_refs[old.address] = refs
            else:
                self._table_refs.pop(old.address, None)
        if new_is_table:
            self._table_refs[desc.address] = (
                self._table_refs.get(desc.address, 0) + 1
            )
            self._table_levels.setdefault(desc.address, level + 1)
        self._el2_write(desc_paddr, value)
        return hc.HVC_OK

    def _check_leaf(self, desc_paddr: int, desc: Descriptor, level: int,
                    old: Descriptor) -> int:
        span = LEVEL_SPAN[level]
        target_base = desc.address
        target_end = target_base + span
        # 1. Never map the secure space (paper 5.2.1).
        if (target_base < self.platform.secure_limit
                and target_end > self.platform.secure_base):
            self._alert("secure_mapping", target=target_base)
            return hc.HVC_DENIED
        # 2. Never map a table page writable (read-only page tables).
        #    Iterate whichever side is smaller: a level-1 block spans
        #    a gigabyte (250k pages) while table_pages stays small.
        if desc.writable:
            if span // PAGE_BYTES > len(self.table_pages):
                hit = next((p for p in self.table_pages
                            if target_base <= p < target_end), None)
            else:
                hit = next((p for p in range(target_base, target_end,
                                             PAGE_BYTES)
                            if p in self.table_pages), None)
            if hit is not None:
                self._alert("writable_table_mapping", target=hit)
                return hc.HVC_DENIED
        # 3. W xor X on kernel mappings (paper 5.2.1).
        if desc.writable and desc.executable and not desc.user:
            self._alert("w_xor_x", target=target_base)
            return hc.HVC_DENIED
        self.cpu.compute(self.costs.l1_hit)  # the old-descriptor read
        # 4+5. ATRA / linear-map redirect defence on the old mapping.
        return self._check_old_mapping(desc_paddr, old, desc, level)

    def _check_unmap(self, desc_paddr: int, level: int,
                     old: Descriptor) -> int:
        self.cpu.compute(self.costs.l1_hit)
        return self._check_old_mapping(desc_paddr, old, None, level)

    def _check_old_mapping(self, desc_paddr: int, old: Descriptor,
                           new_desc: Optional[Descriptor],
                           level: int) -> int:
        """ATRA/linear-map defence (paper 5.3): whatever physical memory
        the *old* descriptor made reachable — a page, a full block span,
        or an entire subtree behind a table pointer — may not silently
        lose or change its translation while any of it is monitored, and
        never changes at all inside the boot-time linear map.
        """
        if not old.valid:
            return hc.HVC_OK
        old_is_table = level < 3 and old.is_table
        new_is_table = (new_desc is not None and new_desc.valid
                        and level < 3 and new_desc.is_table)
        if (new_desc is not None and new_desc.valid
                and old_is_table == new_is_table
                and old.address == new_desc.address):
            return hc.HVC_OK  # attribute-only rewrite, same translation
        new_base = None if new_desc is None else new_desc.address
        for base, nbytes in self._old_mapping_spans(old, level):
            if self._span_hits_monitored(base, nbytes):
                if new_desc is None or not new_desc.valid:
                    self._alert("monitored_unmap", target=base)
                else:
                    self._alert("atra_remap", old=base, new=new_base)
                return hc.HVC_DENIED
        # The linear map is immutable after boot: attribute changes are
        # fine, address redirects (including unmaps) never are.
        if align_down(desc_paddr, PAGE_BYTES) in self.linear_tables:
            self._alert("linear_remap", old=old.address, new=new_base)
            return hc.HVC_DENIED
        return hc.HVC_OK

    def _old_mapping_spans(self, old: Descriptor, level: int):
        """Yield ``(base_paddr, nbytes)`` spans the old descriptor
        translated.  For a table pointer this walks the (verified)
        subtree with backdoor reads; descent is gated on membership in
        ``table_pages`` so a corrupted pointer cannot crash EL2."""
        if level >= 3 or not old.is_table:
            yield old.address, LEVEL_SPAN[level]
            return
        stack = [(old.address, level + 1)]
        seen: Set[int] = set()
        while stack:
            table, tlevel = stack.pop()
            if table in seen or table not in self.table_pages:
                continue
            seen.add(table)
            for off in range(0, PAGE_BYTES, WORD_BYTES):
                entry = Descriptor(self.platform.bus.peek(table + off))
                if not entry.valid:
                    continue
                if tlevel < 3 and entry.is_table:
                    stack.append((entry.address, tlevel + 1))
                else:
                    yield entry.address, LEVEL_SPAN[tlevel]

    def _span_hits_monitored(self, base: int, nbytes: int) -> bool:
        end = base + nbytes
        if nbytes // PAGE_BYTES > len(self._monitored_page_refs):
            return any(base <= page < end
                       for page in self._monitored_page_refs)
        return any(self._monitored_page_refs.get(page)
                   for page in range(base, end, PAGE_BYTES))

    # ------------------------------------------------------------------
    # Table-page lifecycle (paper 6.2: read-only page tables)
    # ------------------------------------------------------------------
    def _h_pgtable_alloc(self, table_paddr: int, is_root: bool) -> int:
        if table_paddr & (PAGE_BYTES - 1):
            self._alert("pgtable_alloc_misaligned", target=table_paddr)
            return hc.HVC_DENIED
        if not (self.platform.memory.contains(table_paddr)
                and self.platform.memory.contains(
                    table_paddr + PAGE_BYTES - WORD_BYTES)):
            self._alert("pgtable_alloc_unbacked", target=table_paddr)
            return hc.HVC_DENIED
        if self.platform.in_secure_region(table_paddr):
            self._alert("pgtable_alloc_secure", target=table_paddr)
            return hc.HVC_DENIED
        if table_paddr in self.table_pages:
            self._alert("pgtable_alloc_duplicate", target=table_paddr)
            return hc.HVC_DENIED
        # Verify the kernel really zeroed it (no smuggled mappings).
        for offset in range(0, PAGE_BYTES, WORD_BYTES):
            if self.platform.bus.peek(table_paddr + offset) != 0:
                self._alert("pgtable_alloc_dirty", target=table_paddr)
                return hc.HVC_DENIED
        self.cpu.compute(self.costs.l2_hit * (PAGE_WORDS // 8))  # scan cost
        self._register_table_page(table_paddr, is_root, verify_empty=False)
        return hc.HVC_OK

    def _register_table_page(self, table_paddr: int, is_root: bool,
                             verify_empty: bool) -> None:
        self.table_pages.add(table_paddr)
        if is_root:
            self.root_tables.add(table_paddr)
            self._table_levels[table_paddr] = 1
        self._set_linear_writable(table_paddr, writable=False)

    def _h_pgtable_free(self, table_paddr: int) -> int:
        if table_paddr not in self.table_pages:
            self._alert("pgtable_free_unknown", target=table_paddr)
            return hc.HVC_DENIED
        # The boot topology is permanent: the kernel root and the
        # linear-map tables never retire.
        if (table_paddr == align_down(self.kernel_root, PAGE_BYTES)
                or table_paddr in self.linear_tables):
            self._alert("pgtable_free_protected", target=table_paddr)
            return hc.HVC_DENIED
        # Still referenced by a verified table pointer somewhere: the
        # frame would go back to the allocator while a live walk can
        # still reach it (and its linear-map leaf turns writable again).
        if self._table_refs.get(table_paddr):
            self._alert("pgtable_free_referenced", target=table_paddr)
            return hc.HVC_DENIED
        # A translation base register may still point at it.
        regs = self.cpu.regs
        for reg in ("TTBR0_EL1", "TTBR1_EL1"):
            if align_down(regs.read(reg), PAGE_BYTES) == table_paddr:
                self._alert("pgtable_free_active_root", target=table_paddr)
                return hc.HVC_DENIED
        # Every slot must be invalidated before the page retires:
        # freeing a populated table would leave its children's reference
        # counts stale and any linked subtree registered but forever
        # unreachable.  (Backdoor scan, uncharged like the other new
        # verdict reads; the kernel teardown path zeroes slots anyway.)
        bus = self.platform.bus
        for index in range(PAGE_WORDS):
            if bus.peek(table_paddr + index * WORD_BYTES):
                self._alert("pgtable_free_nonempty", target=table_paddr)
                return hc.HVC_DENIED
        self.table_pages.discard(table_paddr)
        self.root_tables.discard(table_paddr)
        self._table_levels.pop(table_paddr, None)
        self._table_refs.pop(table_paddr, None)
        self._set_linear_writable(table_paddr, writable=True)
        return hc.HVC_OK

    def _rebuild_topology(self) -> None:
        """Re-derive the table-pointer refcounts and per-table levels by
        walking the verified trees with backdoor reads (boot lock-down
        and legacy-snapshot restore; runtime keeps them incremental)."""
        refs: Dict[int, int] = {}
        levels: Dict[int, int] = {}
        roots = {align_down(self.kernel_root, PAGE_BYTES)} | self.root_tables
        stack = [r for r in sorted(roots) if r in self.table_pages]
        for root in stack:
            levels[root] = 1
        seen: Set[int] = set()
        work = [(r, 1) for r in stack]
        while work:
            table, level = work.pop()
            if table in seen:
                continue
            seen.add(table)
            levels.setdefault(table, level)
            if level >= 3:
                continue  # entries below are leaves, not pointers
            for off in range(0, PAGE_BYTES, WORD_BYTES):
                entry = Descriptor(self.platform.bus.peek(table + off))
                if (entry.valid and entry.is_table
                        and entry.address in self.table_pages):
                    refs[entry.address] = refs.get(entry.address, 0) + 1
                    work.append((entry.address, level + 1))
        self._table_refs = refs
        self._table_levels = levels

    def _set_linear_writable(self, page_paddr: int, writable: bool) -> None:
        """Flip write permission of the linear-map leaf covering a page.

        In page mode this is exact.  In section mode the whole 2 MB
        block changes — the protection-granularity gap of paper 6.2:
        unrelated kernel data in the section becomes read-only too, and
        its writes start faulting into :meth:`_h_emulate_write`.
        """
        if self.kernel is None:
            raise SimulationError("protect() must run before table ops")
        desc_addr, level = self.kernel.linear_map.leaf_desc_addr(page_paddr)
        raw = self.platform.bus.peek(desc_addr)
        if writable:
            if level == 2:
                section = align_down(page_paddr, SECTION_BYTES)
                # Only restore when no other table page shares the block.
                if any(align_down(t, SECTION_BYTES) == section
                       for t in self.table_pages):
                    return
                self.gap_sections.discard(section)
            new = raw | DESC_AP_WRITE
        else:
            if level == 2:
                self.gap_sections.add(align_down(page_paddr, SECTION_BYTES))
            new = raw & ~DESC_AP_WRITE
        self._el2_write(desc_addr, new)
        if level == 2:
            # The block leaf covers 2 MB: stale entries for *any* page
            # of the section must go (the TLB is page-granular here).
            self.cpu.tlbi_all()
        else:
            self.cpu.tlbi_va(self.kernel.linear_map.kva(page_paddr))

    # ------------------------------------------------------------------
    # Granularity-gap write emulation (section mode only)
    # ------------------------------------------------------------------
    def _h_emulate_write(self, dest_paddr: int, value: int) -> int:
        self.cpu.compute(self.costs.hypersec_verify_pte)
        if (dest_paddr % WORD_BYTES
                or not self.platform.memory.contains(dest_paddr)
                or not 0 <= value < (1 << 64)):
            self._alert("emulate_bad_target", target=dest_paddr)
            return hc.HVC_DENIED
        if self.platform.in_secure_region(dest_paddr):
            self._alert("emulate_secure", target=dest_paddr)
            return hc.HVC_DENIED
        if align_down(dest_paddr, PAGE_BYTES) in self.table_pages:
            self._alert("emulate_table_write", target=dest_paddr)
            return hc.HVC_DENIED
        self.stats.add("gap_emulated_writes")
        self._el2_write(dest_paddr, value)
        return hc.HVC_OK

    def _h_emulate_write_block(self, dest_paddr: int, nwords: int) -> int:
        """Bulk write emulation for page-sized fills that gap-faulted.

        One simulated call stands in for ``nwords`` individual faults;
        the kernel side charges the per-word trap costs, this side
        charges the per-word verification and store work.
        """
        from repro.config import PAGE_BYTES as _PAGE
        if (nwords <= 0 or dest_paddr % WORD_BYTES
                or not self.platform.memory.contains(dest_paddr)
                or not self.platform.memory.contains(
                    dest_paddr + nwords * WORD_BYTES - WORD_BYTES)):
            self._alert("emulate_bad_target", target=dest_paddr,
                        nwords=nwords)
            return hc.HVC_DENIED
        first_page = align_down(dest_paddr, _PAGE)
        last_page = align_down(dest_paddr + nwords * WORD_BYTES - 1, _PAGE)
        for page in range(first_page, last_page + _PAGE, _PAGE):
            if self.platform.in_secure_region(page):
                self._alert("emulate_secure", target=page)
                return hc.HVC_DENIED
            if page in self.table_pages:
                self._alert("emulate_table_write", target=page)
                return hc.HVC_DENIED
        self.cpu.compute(nwords * self.costs.hypersec_verify_pte // 8)
        saved = self.cpu.current_el
        self.cpu.current_el = EL2
        try:
            self.platform.caches.touch_block(dest_paddr, nwords, is_write=True)
        finally:
            self.cpu.current_el = saved
        self.stats.add("gap_emulated_writes", nwords)
        return hc.HVC_OK

    # ------------------------------------------------------------------
    # Trapped VM-control registers (paper 5.2.2)
    # ------------------------------------------------------------------
    def handle_trapped_msr(self, cpu: CPUCore, register: str, value: int) -> None:
        cpu.compute(self.costs.hypersec_verify_reg)
        self.stats.add(f"trap.{register}")
        if register == "TTBR1_EL1":
            if value != self.kernel_root:
                self._alert("rogue_ttbr1", value=value)
                raise SecurityViolation(
                    f"attempt to switch TTBR1_EL1 to {value:#x}",
                    policy="ttbr",
                )
        elif register == "TTBR0_EL1":
            # Zero parks user translation (pre-init, or a task tearing
            # down its own address space before the root is freed).
            if value != 0 and (value & ~(PAGE_BYTES - 1)) not in self.root_tables:
                self._alert("rogue_ttbr0", value=value)
                raise SecurityViolation(
                    f"attempt to switch TTBR0_EL1 to unregistered root "
                    f"{value:#x}",
                    policy="ttbr",
                )
        elif register == "SCTLR_EL1":
            if self._protected and not value & SCTLR_M:
                self._alert("mmu_disable", value=value)
                raise SecurityViolation(
                    "attempt to disable the stage-1 MMU", policy="sctlr"
                )
        else:  # TCR_EL1 / MAIR_EL1: configuration must not change.
            if self._protected and value != self.recorded_regs.get(register, value):
                self._alert("vm_config_change", register=register)
                raise SecurityViolation(
                    f"attempt to retune {register}", policy="vmcfg"
                )
        cpu.regs.write(register, value)

    # ------------------------------------------------------------------
    # Region registration (paper 5.3, Figure 4 green path)
    # ------------------------------------------------------------------
    def _h_register_region(self, sid: int, base_kva: int, size: int) -> int:
        if sid not in self._apps:
            self._alert("unknown_sid", sid=sid)
            return hc.HVC_DENIED
        if self.mbm is None:
            self._alert("no_mbm", sid=sid)
            return hc.HVC_DENIED
        self.cpu.compute(self.costs.hypersec_register_region)
        base_pa = self.kernel.linear_map.pa(base_kva)
        # The range must lie entirely under bitmap coverage
        # ([dram_base, secure_base)); anything else would compute bitmap
        # word addresses outside the bitmap itself — stray stores into
        # the secure region.
        if (size <= 0 or not self.mbm.bitmap.covers(base_pa)
                or not self.mbm.bitmap.covers(base_pa + size - 1)):
            self._alert("register_bounds", base=base_pa, size=size)
            return hc.HVC_DENIED
        if (self.platform.in_secure_region(base_pa)
                or self.platform.in_secure_region(base_pa + size - 1)):
            self._alert("register_secure", base=base_pa)
            return hc.HVC_DENIED
        end_pa = base_pa + size
        # Refuse duplicate registration of an identical (base, end, sid)
        # triple: unregistering one copy would clear the bitmap bits the
        # surviving copy still relies on.  Registration is atomic over
        # the covered pages, so checking the first page suffices.
        first_page = self.mbm.bitmap.pages_for_range(base_pa, size)[0]
        if (base_pa, end_pa, sid) in self._region_index.get(first_page, []):
            self._alert("register_duplicate", base=base_pa, sid=sid)
            return hc.HVC_DENIED
        # Enable the bitmap bits (uncached stores the MBM snoops).
        for word_addr, mask in self.mbm.bitmap.words_for_range(base_pa, size):
            current = self._el2_read(word_addr, cacheable=False)
            self._el2_write(word_addr, current | mask, cacheable=False)
        # Index the range and make its pages non-cacheable.
        for page in self.mbm.bitmap.pages_for_range(base_pa, size):
            self._region_index.setdefault(page, []).append((base_pa, end_pa, sid))
            refs = self._monitored_page_refs.get(page, 0)
            self._monitored_page_refs[page] = refs + 1
            if refs == 0:
                self._set_page_cacheability(page, cacheable=False)
        self.stats.add("regions_registered")
        return hc.HVC_OK

    def _h_unregister_region(self, sid: int, base_kva: int, size: int) -> int:
        if sid not in self._apps or self.mbm is None:
            return hc.HVC_DENIED
        self.cpu.compute(self.costs.hypersec_register_region)
        base_pa = self.kernel.linear_map.pa(base_kva)
        if (size <= 0 or not self.mbm.bitmap.covers(base_pa)
                or not self.mbm.bitmap.covers(base_pa + size - 1)):
            self._alert("register_bounds", base=base_pa, size=size)
            return hc.HVC_DENIED
        end_pa = base_pa + size
        # The triple must have been registered exactly as claimed on
        # every covered page: clearing bitmap bits or dropping page
        # references for a range that was never registered would destroy
        # another region's monitoring (the bits and refcounts are shared
        # state, keyed only by address).
        pages = self.mbm.bitmap.pages_for_range(base_pa, size)
        if not all((base_pa, end_pa, sid) in self._region_index.get(page, [])
                   for page in pages):
            self._alert("unregister_unknown", base=base_pa, size=size,
                        sid=sid)
            return hc.HVC_DENIED
        for page in pages:
            ranges = self._region_index.get(page, [])
            ranges.remove((base_pa, end_pa, sid))
        # The bitmap words are shared state: another registered region
        # may overlap the very same bits, so clear only what no
        # surviving region still needs.
        for word_addr, mask in self.mbm.bitmap.words_for_range(base_pa, size):
            keep = self._surviving_mask(word_addr) & mask
            current = self._el2_read(word_addr, cacheable=False)
            self._el2_write(word_addr, (current & ~mask) | keep,
                            cacheable=False)
        for page in pages:
            refs = self._monitored_page_refs.get(page, 1) - 1
            if refs <= 0:
                self._monitored_page_refs.pop(page, None)
                self._set_page_cacheability(page, cacheable=True)
            else:
                self._monitored_page_refs[page] = refs
        self.stats.add("regions_unregistered")
        return hc.HVC_OK

    def _surviving_mask(self, word_addr: int) -> int:
        """Bits of one bitmap word that registered regions still claim.

        One bitmap word covers 64 consecutive monitored words (512
        bytes), always inside a single 4 KB page, so the page's range
        list enumerates every region that can own a bit here.
        """
        bitmap = self.mbm.bitmap
        span_bytes = WORD_BYTES * mbm_bitmap.WORDS_PER_BITMAP_WORD
        span_base = (bitmap.covered_base
                     + (word_addr - bitmap.bitmap_base) // WORD_BYTES
                     * span_bytes)
        keep = 0
        for base, end, _sid in self._region_index.get(
                align_down(span_base, PAGE_BYTES), []):
            low, high = max(base, span_base), min(end, span_base + span_bytes)
            if low >= high:
                continue
            first = (low - bitmap.covered_base) // WORD_BYTES
            last = (high - 1 - bitmap.covered_base) // WORD_BYTES
            for word_index in range(first, last + 1):
                keep |= 1 << (word_index % mbm_bitmap.WORDS_PER_BITMAP_WORD)
        return keep

    def _set_page_cacheability(self, page_paddr: int, cacheable: bool) -> None:
        """Retune the linear-map attribute so MBM sees (or stops seeing)
        every write: paper 5.3, "any cache entry for the page including
        the monitored region is not generated"."""
        desc_addr, level = self.kernel.linear_map.leaf_desc_addr(page_paddr)
        if cacheable and level == 2:
            # Granularity gap, same shape as ``_set_linear_writable``:
            # the 2 MB block leaf is shared, so only restore it
            # cacheable when no other monitored page lives under it.
            section = align_down(page_paddr, SECTION_BYTES)
            if any(align_down(page, SECTION_BYTES) == section
                   for page in self._monitored_page_refs):
                return
        raw = self.platform.bus.peek(desc_addr)
        new = (raw & ~DESC_NC) if cacheable else (raw | DESC_NC)
        self._el2_write(desc_addr, new)
        if not cacheable:
            # Flush any dirty lines so no stale writeback bypasses the
            # MBM.  The bitmap bits are already armed, so the flushed
            # lines cover monitored words by construction: bracket the
            # flush so the MBM books them as the mitigation working
            # (flushed_writebacks), not as missed-event hazards.
            flush = (
                self.mbm.expected_flush()
                if self.mbm is not None
                else nullcontext()
            )
            with flush:
                if level == 2:
                    section = align_down(page_paddr, SECTION_BYTES)
                    for off in range(0, SECTION_BYTES, PAGE_BYTES):
                        self.platform.caches.clean_invalidate_page(
                            section + off
                        )
                else:
                    self.platform.caches.clean_invalidate_page(page_paddr)
        if level == 2:
            self.cpu.tlbi_all()
        else:
            self.cpu.tlbi_va(self.kernel.linear_map.kva(page_paddr))

    # ------------------------------------------------------------------
    # MBM interrupt service (paper 5.3, Figure 4 red path)
    # ------------------------------------------------------------------
    def _h_mbm_service(self) -> int:
        if self.mbm is None:
            return hc.HVC_DENIED
        events = self.mbm.ring.consume_all(
            reader=lambda paddr: self._el2_read(paddr, cacheable=False),
            writer=lambda paddr, value: self._el2_write(
                paddr, value, cacheable=False
            ),
        )
        for addr, value in events:
            self.cpu.compute(self.costs.hypersec_irq_dispatch)
            self._dispatch_event(addr, value)
        self.stats.add("mbm_events_dispatched", len(events))
        return hc.HVC_OK

    def _dispatch_event(self, addr: int, value: int) -> None:
        page = align_down(addr, PAGE_BYTES)
        matched = False
        for base, end, sid in self._region_index.get(page, []):
            if base <= addr < end:
                matched = True
                self._apps[sid].on_event(addr, value)
        if not matched:
            self.stats.add("orphan_events")

    # ------------------------------------------------------------------
    # Runtime verification (Discussion section: verifiable TCB)
    # ------------------------------------------------------------------
    def audit(self):
        """Check every Hypernel security invariant against live machine
        state (real table walks, real bitmap contents).  Returns an
        :class:`~repro.core.audit.AuditReport`."""
        from repro.core.audit import HypersecAuditor
        return HypersecAuditor(self).audit()

    # ------------------------------------------------------------------
    # Introspection used by tests and the analysis layer
    # ------------------------------------------------------------------
    def monitored_word_count(self) -> int:
        """Registered monitored bytes / 8 (from the live region index)."""
        total = 0
        seen = set()
        for ranges in self._region_index.values():
            for base, end, sid in ranges:
                if (base, end, sid) not in seen:
                    seen.add((base, end, sid))
                    total += (end - base) // WORD_BYTES
        return total
