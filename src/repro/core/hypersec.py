"""Hypersec: the EL2-resident security software of Hypernel.

Implements the paper's sections 5.2, 5.3 and 6.1:

* **Isolated execution environment without nested paging** — Hypersec
  never enables stage-2 translation.  Isolation rests on two invariants
  it enforces instead:

  1. *verified kernel page tables* (5.2.1): the kernel's translation
     tables are read-only to EL1; every update arrives as a hypercall
     that Hypersec validates (no mapping of the secure region, no
     writable mapping of a table page, W xor X) and performs itself;
  2. *trapped privileged instructions* (5.2.2): with ``HCR_EL2.TVM``
     set, EL1 writes of TTBR0/TTBR1/SCTLR/TCR/MAIR trap here and are
     checked against the recorded good configuration.

* **Hardware-assisted monitoring** (5.3): security applications register
  regions; Hypersec translates their kernel VAs to physical addresses,
  sets the MBM's word-granularity bitmap (with uncached stores the MBM
  snoops), makes the containing pages non-cacheable so every write
  reaches the bus, and services the MBM interrupt by draining the ring
  buffer and routing each (address, value) event to its application.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.config import PAGE_BYTES, PAGE_WORDS, SECTION_BYTES, WORD_BYTES
from repro.errors import SecurityViolation, SimulationError
from repro.hw.platform import Platform
from repro.arch.cpu import CPUCore
from repro.arch.exceptions import EL2, EL2Vector
from repro.arch.pagetable import (
    DESC_AP_WRITE,
    DESC_NC,
    Descriptor,
    LEVEL_SPAN,
)
from repro.arch.registers import HCR_TVM, SCTLR_M
from repro.core import hypercalls as hc
from repro.core.mbm.mbm import MemoryBusMonitor
from repro.utils.bitops import align_down
from repro.utils.events import EventHook
from repro.utils.stats import StatSet


class Hypersec(EL2Vector):
    """The ~1.5 KLoC EL2 module, as a simulation model."""

    def __init__(self, platform: Platform, cpu: CPUCore,
                 mbm: Optional[MemoryBusMonitor] = None):
        self.platform = platform
        self.cpu = cpu
        self.costs = platform.config.costs
        self.mbm = mbm
        self.kernel = None  # set by protect()
        self.stats = StatSet("hypersec")
        self.alerts = EventHook("hypersec_alerts")

        # Policy state (resident in the secure region on real hardware).
        self.table_pages: Set[int] = set()
        self.root_tables: Set[int] = set()
        #: boot-time linear-map tables: immutable after protect() except
        #: for attribute bits (the kernel never legitimately remaps its
        #: direct mapping).
        self.linear_tables: Set[int] = set()
        self.kernel_root = 0
        self.recorded_regs: Dict[str, int] = {}
        self._protected = False

        # Monitoring state.
        self._apps: Dict[int, object] = {}
        self._next_sid = 1
        #: page -> list of (base, end, sid) monitored ranges on it
        self._region_index: Dict[int, List[Tuple[int, int, int]]] = {}
        #: page -> number of registered ranges touching it
        self._monitored_page_refs: Dict[int, int] = {}
        #: sections turned read-only in section mode (granularity gap)
        self.gap_sections: Set[int] = set()

    # ------------------------------------------------------------------
    # Checkpoint/restore
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Policy + monitoring state.  The application objects in
        ``_apps`` are serialized separately (system "monitors" section)
        and rewired on restore; per-page range lists keep their order
        (dispatch iterates them)."""
        return {
            "table_pages": sorted(self.table_pages),
            "root_tables": sorted(self.root_tables),
            "linear_tables": sorted(self.linear_tables),
            "kernel_root": self.kernel_root,
            "recorded_regs": dict(self.recorded_regs),
            "protected": self._protected,
            "next_sid": self._next_sid,
            "region_index": [
                [page, [[base, end, sid] for base, end, sid in ranges]]
                for page, ranges in self._region_index.items()
            ],
            "monitored_page_refs": [
                [page, refs]
                for page, refs in self._monitored_page_refs.items()
            ],
            "gap_sections": sorted(self.gap_sections),
            "stats": self.stats.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self.table_pages = {int(p) for p in state["table_pages"]}
        self.root_tables = {int(p) for p in state["root_tables"]}
        self.linear_tables = {int(p) for p in state["linear_tables"]}
        self.kernel_root = int(state["kernel_root"])
        self.recorded_regs = {str(name): int(value)
                              for name, value in state["recorded_regs"].items()}
        self._protected = bool(state["protected"])
        self._next_sid = int(state["next_sid"])
        self._region_index = {
            int(page): [(int(base), int(end), int(sid))
                        for base, end, sid in ranges]
            for page, ranges in state["region_index"]
        }
        self._monitored_page_refs = {
            int(page): int(refs)
            for page, refs in state["monitored_page_refs"]
        }
        self.gap_sections = {int(s) for s in state["gap_sections"]}
        self.stats.load_state(state["stats"])

    # ------------------------------------------------------------------
    # Initialization (paper 6.1)
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Boot-time EL2 initialization: page table, stack, vectors."""
        regs = self.cpu.regs
        # Linear EL2 page table (modelled as the identity regime), stack
        # and exception vectors.
        regs.write("TTBR0_EL2", self.platform.secure_base)
        regs.write("SP_EL2", self.platform.secure_limit - WORD_BYTES)
        regs.write("VBAR_EL2", self.platform.secure_base + 0x800)
        self.cpu.install_el2_vector(self)
        self.stats.add("installed")

    def register_app(self, app) -> int:
        """Assign a security-application ID (SID, paper 5.3)."""
        sid = self._next_sid
        self._next_sid += 1
        self._apps[sid] = app
        app.sid = sid
        return sid

    # ------------------------------------------------------------------
    # Kernel protection bring-up
    # ------------------------------------------------------------------
    def protect(self, kernel, verify_boot: bool = True) -> None:
        """Lock down a freshly booted kernel (secure-boot hand-off).

        Records the good VM-register configuration, registers and
        write-protects every existing translation-table page, and
        enables TVM trapping.  Must run before the first runtime
        page-table update.

        With ``verify_boot`` (the default, matching paper 5.2.1's
        "Hypersec verifies the request" discipline applied to the
        initial state), a full invariant audit of the just-locked
        kernel runs and any violation aborts the boot.
        """
        if self._protected:
            raise SimulationError("protect() called twice")
        self.kernel = kernel
        regs = self.cpu.regs
        self.kernel_root = regs.read("TTBR1_EL1")
        for name in ("SCTLR_EL1", "TCR_EL1", "MAIR_EL1"):
            self.recorded_regs[name] = regs.read(name)
        self.linear_tables = set(kernel.linear_map.table_pages)
        for table in sorted(kernel.linear_map.table_pages):
            self._register_table_page(table, is_root=False, verify_empty=False)
        self.table_pages.add(self.kernel_root & ~(PAGE_BYTES - 1))
        regs.set_bits("HCR_EL2", HCR_TVM)
        self._protected = True
        self.stats.add("protected")
        if verify_boot:
            report = self.audit()
            if not report.clean:
                self._alert("boot_verification", findings=len(report.findings))
                raise SecurityViolation(
                    f"boot-time verification failed: {report}", policy="boot"
                )

    # ------------------------------------------------------------------
    # EL2 memory helpers (identity map; charged to the caller's clock)
    # ------------------------------------------------------------------
    def _el2_write(self, paddr: int, value: int, cacheable: bool = True) -> None:
        saved = self.cpu.current_el
        self.cpu.current_el = EL2
        try:
            self.platform.caches.write(paddr, value, cacheable)
        finally:
            self.cpu.current_el = saved

    def _el2_read(self, paddr: int, cacheable: bool = True) -> int:
        saved = self.cpu.current_el
        self.cpu.current_el = EL2
        try:
            return self.platform.caches.read(paddr, cacheable)
        finally:
            self.cpu.current_el = saved

    # ------------------------------------------------------------------
    # EL2Vector: hypercalls
    # ------------------------------------------------------------------
    def handle_hvc(self, cpu: CPUCore, func: int, args: Sequence[int]) -> int:
        self.stats.add(f"hvc.{hc.NAMES.get(func, func)}")
        if func == hc.HVC_PGTABLE_WRITE:
            return self._h_pgtable_write(*args)
        if func == hc.HVC_PGTABLE_ALLOC:
            return self._h_pgtable_alloc(args[0], bool(args[1]) if len(args) > 1 else False)
        if func == hc.HVC_PGTABLE_FREE:
            return self._h_pgtable_free(args[0])
        if func == hc.HVC_REGISTER_REGION:
            return self._h_register_region(*args)
        if func == hc.HVC_UNREGISTER_REGION:
            return self._h_unregister_region(*args)
        if func == hc.HVC_MBM_SERVICE:
            return self._h_mbm_service()
        if func == hc.HVC_EMULATE_WRITE:
            return self._h_emulate_write(*args)
        if func == hc.HVC_EMULATE_WRITE_BLOCK:
            return self._h_emulate_write_block(*args)
        self._alert("unknown_hypercall", func=func)
        return hc.HVC_DENIED

    def _alert(self, policy: str, **info) -> None:
        self.stats.add(f"alert.{policy}")
        self.alerts.fire(policy, info)

    # ------------------------------------------------------------------
    # Page-table write verification (paper 5.2.1)
    # ------------------------------------------------------------------
    def _h_pgtable_write(self, desc_paddr: int, value: int, level: int = 3) -> int:
        self.cpu.compute(self.costs.hypersec_verify_pte)
        if align_down(desc_paddr, PAGE_BYTES) not in self.table_pages:
            self._alert("pgtable_target", desc=desc_paddr)
            return hc.HVC_DENIED
        desc = Descriptor(value)
        if desc.valid:
            if level < 3 and desc.is_table:
                # Next-level pointer: must reference a registered table.
                if desc.address not in self.table_pages:
                    self._alert("unregistered_table", target=desc.address)
                    return hc.HVC_DENIED
            else:
                verdict = self._check_leaf(desc_paddr, desc, level)
                if verdict != hc.HVC_OK:
                    return verdict
        else:
            verdict = self._check_unmap(desc_paddr)
            if verdict != hc.HVC_OK:
                return verdict
        self._el2_write(desc_paddr, value)
        return hc.HVC_OK

    def _check_leaf(self, desc_paddr: int, desc: Descriptor, level: int) -> int:
        span = LEVEL_SPAN[level]
        target_base = desc.address
        target_end = target_base + span
        # 1. Never map the secure space (paper 5.2.1).
        if (target_base < self.platform.secure_limit
                and target_end > self.platform.secure_base):
            self._alert("secure_mapping", target=target_base)
            return hc.HVC_DENIED
        # 2. Never map a table page writable (read-only page tables).
        if desc.writable:
            for page in range(target_base, target_end, PAGE_BYTES):
                if page in self.table_pages:
                    self._alert("writable_table_mapping", target=page)
                    return hc.HVC_DENIED
        # 3. W xor X on kernel mappings (paper 5.2.1).
        if desc.writable and desc.executable and not desc.user:
            self._alert("w_xor_x", target=target_base)
            return hc.HVC_DENIED
        # 4. ATRA defence: a monitored region's mapping may not be
        #    redirected while the region is registered (paper 5.3).
        old = Descriptor(self.platform.bus.peek(desc_paddr))
        self.cpu.compute(self.costs.l1_hit)  # the old-descriptor read
        if old.valid and not old.is_table or (old.valid and level == 3):
            old_base = old.address
            if old_base != target_base:
                for page in range(old_base, old_base + span, PAGE_BYTES):
                    if self._monitored_page_refs.get(page):
                        self._alert("atra_remap", old=old_base,
                                    new=target_base)
                        return hc.HVC_DENIED
                # 5. The linear map is immutable after boot: attribute
                #    changes are fine, address redirects never are.
                if align_down(desc_paddr, PAGE_BYTES) in self.linear_tables:
                    self._alert("linear_remap", old=old_base,
                                new=target_base)
                    return hc.HVC_DENIED
        return hc.HVC_OK

    def _check_unmap(self, desc_paddr: int) -> int:
        old = Descriptor(self.platform.bus.peek(desc_paddr))
        self.cpu.compute(self.costs.l1_hit)
        if old.valid and not old.is_table:
            for page in range(old.address,
                              old.address + PAGE_BYTES, PAGE_BYTES):
                if self._monitored_page_refs.get(page):
                    self._alert("monitored_unmap", target=old.address)
                    return hc.HVC_DENIED
        return hc.HVC_OK

    # ------------------------------------------------------------------
    # Table-page lifecycle (paper 6.2: read-only page tables)
    # ------------------------------------------------------------------
    def _h_pgtable_alloc(self, table_paddr: int, is_root: bool) -> int:
        if table_paddr & (PAGE_BYTES - 1):
            self._alert("pgtable_alloc_misaligned", target=table_paddr)
            return hc.HVC_DENIED
        if self.platform.in_secure_region(table_paddr):
            self._alert("pgtable_alloc_secure", target=table_paddr)
            return hc.HVC_DENIED
        if table_paddr in self.table_pages:
            self._alert("pgtable_alloc_duplicate", target=table_paddr)
            return hc.HVC_DENIED
        # Verify the kernel really zeroed it (no smuggled mappings).
        for offset in range(0, PAGE_BYTES, WORD_BYTES):
            if self.platform.bus.peek(table_paddr + offset) != 0:
                self._alert("pgtable_alloc_dirty", target=table_paddr)
                return hc.HVC_DENIED
        self.cpu.compute(self.costs.l2_hit * (PAGE_WORDS // 8))  # scan cost
        self._register_table_page(table_paddr, is_root, verify_empty=False)
        return hc.HVC_OK

    def _register_table_page(self, table_paddr: int, is_root: bool,
                             verify_empty: bool) -> None:
        self.table_pages.add(table_paddr)
        if is_root:
            self.root_tables.add(table_paddr)
        self._set_linear_writable(table_paddr, writable=False)

    def _h_pgtable_free(self, table_paddr: int) -> int:
        if table_paddr not in self.table_pages:
            self._alert("pgtable_free_unknown", target=table_paddr)
            return hc.HVC_DENIED
        self.table_pages.discard(table_paddr)
        self.root_tables.discard(table_paddr)
        self._set_linear_writable(table_paddr, writable=True)
        return hc.HVC_OK

    def _set_linear_writable(self, page_paddr: int, writable: bool) -> None:
        """Flip write permission of the linear-map leaf covering a page.

        In page mode this is exact.  In section mode the whole 2 MB
        block changes — the protection-granularity gap of paper 6.2:
        unrelated kernel data in the section becomes read-only too, and
        its writes start faulting into :meth:`_h_emulate_write`.
        """
        if self.kernel is None:
            raise SimulationError("protect() must run before table ops")
        desc_addr, level = self.kernel.linear_map.leaf_desc_addr(page_paddr)
        raw = self.platform.bus.peek(desc_addr)
        if writable:
            if level == 2:
                section = align_down(page_paddr, SECTION_BYTES)
                # Only restore when no other table page shares the block.
                if any(align_down(t, SECTION_BYTES) == section
                       for t in self.table_pages):
                    return
                self.gap_sections.discard(section)
            new = raw | DESC_AP_WRITE
        else:
            if level == 2:
                self.gap_sections.add(align_down(page_paddr, SECTION_BYTES))
            new = raw & ~DESC_AP_WRITE
        self._el2_write(desc_addr, new)
        if level == 2:
            # The block leaf covers 2 MB: stale entries for *any* page
            # of the section must go (the TLB is page-granular here).
            self.cpu.tlbi_all()
        else:
            self.cpu.tlbi_va(self.kernel.linear_map.kva(page_paddr))

    # ------------------------------------------------------------------
    # Granularity-gap write emulation (section mode only)
    # ------------------------------------------------------------------
    def _h_emulate_write(self, dest_paddr: int, value: int) -> int:
        self.cpu.compute(self.costs.hypersec_verify_pte)
        if self.platform.in_secure_region(dest_paddr):
            self._alert("emulate_secure", target=dest_paddr)
            return hc.HVC_DENIED
        if align_down(dest_paddr, PAGE_BYTES) in self.table_pages:
            self._alert("emulate_table_write", target=dest_paddr)
            return hc.HVC_DENIED
        self.stats.add("gap_emulated_writes")
        self._el2_write(dest_paddr, value)
        return hc.HVC_OK

    def _h_emulate_write_block(self, dest_paddr: int, nwords: int) -> int:
        """Bulk write emulation for page-sized fills that gap-faulted.

        One simulated call stands in for ``nwords`` individual faults;
        the kernel side charges the per-word trap costs, this side
        charges the per-word verification and store work.
        """
        from repro.config import PAGE_BYTES as _PAGE
        first_page = align_down(dest_paddr, _PAGE)
        last_page = align_down(dest_paddr + nwords * WORD_BYTES - 1, _PAGE)
        for page in range(first_page, last_page + _PAGE, _PAGE):
            if self.platform.in_secure_region(page):
                self._alert("emulate_secure", target=page)
                return hc.HVC_DENIED
            if page in self.table_pages:
                self._alert("emulate_table_write", target=page)
                return hc.HVC_DENIED
        self.cpu.compute(nwords * self.costs.hypersec_verify_pte // 8)
        saved = self.cpu.current_el
        self.cpu.current_el = EL2
        try:
            self.platform.caches.touch_block(dest_paddr, nwords, is_write=True)
        finally:
            self.cpu.current_el = saved
        self.stats.add("gap_emulated_writes", nwords)
        return hc.HVC_OK

    # ------------------------------------------------------------------
    # Trapped VM-control registers (paper 5.2.2)
    # ------------------------------------------------------------------
    def handle_trapped_msr(self, cpu: CPUCore, register: str, value: int) -> None:
        cpu.compute(self.costs.hypersec_verify_reg)
        self.stats.add(f"trap.{register}")
        if register == "TTBR1_EL1":
            if value != self.kernel_root:
                self._alert("rogue_ttbr1", value=value)
                raise SecurityViolation(
                    f"attempt to switch TTBR1_EL1 to {value:#x}",
                    policy="ttbr",
                )
        elif register == "TTBR0_EL1":
            if (value & ~(PAGE_BYTES - 1)) not in self.root_tables:
                self._alert("rogue_ttbr0", value=value)
                raise SecurityViolation(
                    f"attempt to switch TTBR0_EL1 to unregistered root "
                    f"{value:#x}",
                    policy="ttbr",
                )
        elif register == "SCTLR_EL1":
            if self._protected and not value & SCTLR_M:
                self._alert("mmu_disable", value=value)
                raise SecurityViolation(
                    "attempt to disable the stage-1 MMU", policy="sctlr"
                )
        else:  # TCR_EL1 / MAIR_EL1: configuration must not change.
            if self._protected and value != self.recorded_regs.get(register, value):
                self._alert("vm_config_change", register=register)
                raise SecurityViolation(
                    f"attempt to retune {register}", policy="vmcfg"
                )
        cpu.regs.write(register, value)

    # ------------------------------------------------------------------
    # Region registration (paper 5.3, Figure 4 green path)
    # ------------------------------------------------------------------
    def _h_register_region(self, sid: int, base_kva: int, size: int) -> int:
        if sid not in self._apps:
            self._alert("unknown_sid", sid=sid)
            return hc.HVC_DENIED
        if self.mbm is None:
            self._alert("no_mbm", sid=sid)
            return hc.HVC_DENIED
        self.cpu.compute(self.costs.hypersec_register_region)
        base_pa = self.kernel.linear_map.pa(base_kva)
        if (self.platform.in_secure_region(base_pa)
                or self.platform.in_secure_region(base_pa + size - 1)):
            self._alert("register_secure", base=base_pa)
            return hc.HVC_DENIED
        end_pa = base_pa + size
        # Enable the bitmap bits (uncached stores the MBM snoops).
        for word_addr, mask in self.mbm.bitmap.words_for_range(base_pa, size):
            current = self._el2_read(word_addr, cacheable=False)
            self._el2_write(word_addr, current | mask, cacheable=False)
        # Index the range and make its pages non-cacheable.
        for page in self.mbm.bitmap.pages_for_range(base_pa, size):
            self._region_index.setdefault(page, []).append((base_pa, end_pa, sid))
            refs = self._monitored_page_refs.get(page, 0)
            self._monitored_page_refs[page] = refs + 1
            if refs == 0:
                self._set_page_cacheability(page, cacheable=False)
        self.stats.add("regions_registered")
        return hc.HVC_OK

    def _h_unregister_region(self, sid: int, base_kva: int, size: int) -> int:
        if sid not in self._apps or self.mbm is None:
            return hc.HVC_DENIED
        self.cpu.compute(self.costs.hypersec_register_region)
        base_pa = self.kernel.linear_map.pa(base_kva)
        end_pa = base_pa + size
        for word_addr, mask in self.mbm.bitmap.words_for_range(base_pa, size):
            current = self._el2_read(word_addr, cacheable=False)
            self._el2_write(word_addr, current & ~mask, cacheable=False)
        for page in self.mbm.bitmap.pages_for_range(base_pa, size):
            ranges = self._region_index.get(page, [])
            if (base_pa, end_pa, sid) in ranges:
                ranges.remove((base_pa, end_pa, sid))
            refs = self._monitored_page_refs.get(page, 1) - 1
            if refs <= 0:
                self._monitored_page_refs.pop(page, None)
                self._set_page_cacheability(page, cacheable=True)
            else:
                self._monitored_page_refs[page] = refs
        self.stats.add("regions_unregistered")
        return hc.HVC_OK

    def _set_page_cacheability(self, page_paddr: int, cacheable: bool) -> None:
        """Retune the linear-map attribute so MBM sees (or stops seeing)
        every write: paper 5.3, "any cache entry for the page including
        the monitored region is not generated"."""
        desc_addr, level = self.kernel.linear_map.leaf_desc_addr(page_paddr)
        raw = self.platform.bus.peek(desc_addr)
        new = (raw & ~DESC_NC) if cacheable else (raw | DESC_NC)
        self._el2_write(desc_addr, new)
        if not cacheable:
            # Flush any dirty lines so no stale writeback bypasses the
            # MBM.  The bitmap bits are already armed, so the flushed
            # lines cover monitored words by construction: bracket the
            # flush so the MBM books them as the mitigation working
            # (flushed_writebacks), not as missed-event hazards.
            flush = (
                self.mbm.expected_flush()
                if self.mbm is not None
                else nullcontext()
            )
            with flush:
                if level == 2:
                    section = align_down(page_paddr, SECTION_BYTES)
                    for off in range(0, SECTION_BYTES, PAGE_BYTES):
                        self.platform.caches.clean_invalidate_page(
                            section + off
                        )
                else:
                    self.platform.caches.clean_invalidate_page(page_paddr)
        if level == 2:
            self.cpu.tlbi_all()
        else:
            self.cpu.tlbi_va(self.kernel.linear_map.kva(page_paddr))

    # ------------------------------------------------------------------
    # MBM interrupt service (paper 5.3, Figure 4 red path)
    # ------------------------------------------------------------------
    def _h_mbm_service(self) -> int:
        if self.mbm is None:
            return hc.HVC_DENIED
        events = self.mbm.ring.consume_all(
            reader=lambda paddr: self._el2_read(paddr, cacheable=False),
            writer=lambda paddr, value: self._el2_write(
                paddr, value, cacheable=False
            ),
        )
        for addr, value in events:
            self.cpu.compute(self.costs.hypersec_irq_dispatch)
            self._dispatch_event(addr, value)
        self.stats.add("mbm_events_dispatched", len(events))
        return hc.HVC_OK

    def _dispatch_event(self, addr: int, value: int) -> None:
        page = align_down(addr, PAGE_BYTES)
        matched = False
        for base, end, sid in self._region_index.get(page, []):
            if base <= addr < end:
                matched = True
                self._apps[sid].on_event(addr, value)
        if not matched:
            self.stats.add("orphan_events")

    # ------------------------------------------------------------------
    # Runtime verification (Discussion section: verifiable TCB)
    # ------------------------------------------------------------------
    def audit(self):
        """Check every Hypernel security invariant against live machine
        state (real table walks, real bitmap contents).  Returns an
        :class:`~repro.core.audit.AuditReport`."""
        from repro.core.audit import HypersecAuditor
        return HypersecAuditor(self).audit()

    # ------------------------------------------------------------------
    # Introspection used by tests and the analysis layer
    # ------------------------------------------------------------------
    def monitored_word_count(self) -> int:
        """Registered monitored bytes / 8 (from the live region index)."""
        total = 0
        seen = set()
        for ranges in self._region_index.values():
            for base, end, sid in ranges:
                if (base, end, sid) not in seen:
                    seen.add((base, end, sid))
                    total += (end - base) // WORD_BYTES
        return total
