"""The Memory Bus Monitor (MBM) hardware model.

Paper Figure 5, one module per block:

* :mod:`~repro.core.mbm.snooper` — bus-traffic snooper: captures write
  address/value pairs off the CPU<->DRAM bus.
* :mod:`~repro.core.mbm.fifo` — the capture FIFO between the snooper
  and the bitmap translator.
* :mod:`~repro.core.mbm.bitmap` — the word-granularity bitmap (1 bit per
  8-byte word) held in secure memory.
* :mod:`~repro.core.mbm.bitmap_cache` — the read-allocate bitmap cache,
  invalidation-updated by snooped writes to the bitmap region.
* :mod:`~repro.core.mbm.translator` — computes each event's bitmap word
  address and fetches it (through the cache).
* :mod:`~repro.core.mbm.decision` — tests the event's bit and, on a hit,
  records (address, value) in the ring buffer and raises the interrupt.
* :mod:`~repro.core.mbm.ringbuf` — the output ring buffer in secure
  memory that Hypersec drains.
* :mod:`~repro.core.mbm.mbm` — the assembled monitor.
"""

from repro.core.mbm.bitmap import WordBitmap
from repro.core.mbm.bitmap_cache import BitmapCache
from repro.core.mbm.fifo import CaptureFifo
from repro.core.mbm.mbm import MemoryBusMonitor
from repro.core.mbm.ringbuf import EventRingBuffer

__all__ = [
    "BitmapCache",
    "CaptureFifo",
    "EventRingBuffer",
    "MemoryBusMonitor",
    "WordBitmap",
]
