"""The word-granularity monitoring bitmap.

Paper section 5.3: "the monitored region is represented at the word
granularity through a bitmap which maps one word (8 bytes) to one bit."
The bitmap lives in the secure physical region, out of the kernel's
reach; Hypersec sets/clears bits with *uncached* stores so the MBM (which
snoops bus traffic) can keep its bitmap cache coherent.

This class is the layout/arithmetic helper shared by Hypersec (the
writer) and the MBM (the reader); it does not access memory itself —
callers pass an accessor so reads and writes are charged to the right
agent.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.config import WORD_BYTES
from repro.errors import ConfigurationError
from repro.utils.bitops import is_aligned

#: monitored words per bitmap word (one bit each).
WORDS_PER_BITMAP_WORD = 64


class WordBitmap:
    """Address arithmetic for a bitmap covering ``[covered_base,
    covered_limit)`` stored at ``bitmap_base`` in secure memory."""

    def __init__(self, bitmap_base: int, covered_base: int, covered_limit: int):
        if not is_aligned(covered_base, WORD_BYTES * WORDS_PER_BITMAP_WORD):
            raise ConfigurationError("covered base must be 512-byte aligned")
        if covered_limit <= covered_base:
            raise ConfigurationError("empty covered range")
        self.bitmap_base = bitmap_base
        self.covered_base = covered_base
        self.covered_limit = covered_limit

    @property
    def size_bytes(self) -> int:
        """Bytes of secure memory the bitmap occupies."""
        covered_words = (self.covered_limit - self.covered_base) // WORD_BYTES
        bitmap_words = (covered_words + WORDS_PER_BITMAP_WORD - 1) // WORDS_PER_BITMAP_WORD
        return bitmap_words * WORD_BYTES

    def covers(self, paddr: int) -> bool:
        """True if ``paddr`` falls in the covered physical range."""
        return self.covered_base <= paddr < self.covered_limit

    def locate(self, paddr: int) -> Tuple[int, int]:
        """Map a covered physical address to ``(bitmap_word_paddr, bit)``."""
        if not self.covers(paddr):
            raise ConfigurationError(f"{paddr:#x} outside the monitored range")
        word_index = (paddr - self.covered_base) // WORD_BYTES
        return (
            self.bitmap_base + (word_index // WORDS_PER_BITMAP_WORD) * WORD_BYTES,
            word_index % WORDS_PER_BITMAP_WORD,
        )

    def words_for_range(self, base: int, size: int) -> Iterator[Tuple[int, int]]:
        """Yield ``(bitmap_word_paddr, bit_mask)`` pairs whose OR covers
        the byte range ``[base, base + size)``, coalesced per bitmap word.
        """
        if size <= 0:
            return
        first_word = (base - self.covered_base) // WORD_BYTES
        last_word = (base + size - 1 - self.covered_base) // WORD_BYTES
        current_bitmap_word = None
        mask = 0
        for word_index in range(first_word, last_word + 1):
            bitmap_word = word_index // WORDS_PER_BITMAP_WORD
            bit = word_index % WORDS_PER_BITMAP_WORD
            if bitmap_word != current_bitmap_word:
                if current_bitmap_word is not None:
                    yield (
                        self.bitmap_base + current_bitmap_word * WORD_BYTES,
                        mask,
                    )
                current_bitmap_word = bitmap_word
                mask = 0
            mask |= 1 << bit
        if current_bitmap_word is not None:
            yield (self.bitmap_base + current_bitmap_word * WORD_BYTES, mask)

    def bitmap_range(self) -> Tuple[int, int]:
        """``(base, limit)`` of the bitmap's own storage (for snooping)."""
        return self.bitmap_base, self.bitmap_base + self.size_bytes

    def pages_for_range(self, base: int, size: int) -> List[int]:
        """4 KB-aligned covered pages a byte range intersects."""
        if size <= 0:
            return []
        first = base & ~0xFFF
        last = (base + size - 1) & ~0xFFF
        return list(range(first, last + 0x1000, 0x1000))
