"""The MBM's bitmap cache.

Paper section 6.3: "accessing the main memory and fetching the bitmap
data for every write event in the same region is inefficient, [so] we
implemented a bitmap cache in MBM.  The bitmap cache follows the
read-allocate cache policy and is updated when a memory write event to
the bitmap is detected."

Modelled as a small fully-associative LRU cache of bitmap *words*.  The
write-update path is driven by the snooper: Hypersec's (uncached) bitmap
stores appear on the bus and refresh any cached copy.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.utils.stats import StatSet


class BitmapCache:
    """Fully-associative LRU cache of 64-bit bitmap words."""

    def __init__(self, entries: int = 64, enabled: bool = True):
        if entries <= 0:
            raise ValueError(f"cache needs a positive capacity, got {entries}")
        self.capacity = entries
        self.enabled = enabled
        self._lines: "OrderedDict[int, int]" = OrderedDict()
        self.stats = StatSet("mbm_bitmap_cache")
        self.stats.flush_hook = self._flush_pending
        # Batched hot-path counters: lookup() runs once per captured
        # write event (see StatSet docs).
        self._hits = 0
        self._misses = 0
        self._bypasses = 0

    def _flush_pending(self) -> None:
        stats = self.stats
        if self._hits:
            hits, self._hits = self._hits, 0
            stats.add("hits", hits)
        if self._misses:
            misses, self._misses = self._misses, 0
            stats.add("misses", misses)
        if self._bypasses:
            bypasses, self._bypasses = self._bypasses, 0
            stats.add("bypasses", bypasses)

    def lookup(self, bitmap_word_paddr: int) -> Optional[int]:
        """Cached value of the bitmap word, or ``None`` on a miss."""
        if not self.enabled:
            self._bypasses += 1
            return None
        value = self._lines.get(bitmap_word_paddr)
        if value is None:
            self._misses += 1
            return None
        self._lines.move_to_end(bitmap_word_paddr)
        self._hits += 1
        return value

    def fill(self, bitmap_word_paddr: int, value: int) -> None:
        """Read-allocate: install a word fetched from main memory."""
        if not self.enabled:
            return
        if bitmap_word_paddr in self._lines:
            del self._lines[bitmap_word_paddr]
        elif len(self._lines) >= self.capacity:
            self._lines.popitem(last=False)
            self.stats.add("evictions")
        self._lines[bitmap_word_paddr] = value
        self.stats.add("fills")

    def snoop_update(self, bitmap_word_paddr: int, value: int) -> None:
        """A bus write to the bitmap was observed: update a cached copy.

        (Write-update rather than write-allocate: absent words stay
        absent, per the read-allocate policy.)
        """
        if self.enabled and bitmap_word_paddr in self._lines:
            self._lines[bitmap_word_paddr] = value
            self.stats.add("snoop_updates")

    def invalidate_all(self) -> None:
        self._lines.clear()

    def state_dict(self) -> dict:
        """Lines in LRU order (oldest first), as stored."""
        return {
            "lines": [[addr, value] for addr, value in self._lines.items()],
            "stats": self.stats.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self._lines = OrderedDict(
            (int(addr), int(value)) for addr, value in state["lines"]
        )
        self.stats.load_state(state["stats"])
        self._hits = self._misses = self._bypasses = 0

    def __len__(self) -> int:
        return len(self._lines)
