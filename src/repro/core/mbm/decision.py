"""The MBM's decision unit.

Paper section 6.3: "the decision unit checks if a bit of the bitmap
data, which represents whether the write event should be monitored or
not, is enabled.  If it is, the decision unit sends an interrupt to the
host CPU."  The event record goes to the ring buffer first (section
5.3), so Hypersec finds it there when it services the interrupt.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.config import CostModel
from repro.core.mbm.ringbuf import EventRingBuffer
from repro.utils.stats import StatSet


class DecisionUnit:
    """Tests bitmap bits and emits detections."""

    def __init__(
        self,
        ring: EventRingBuffer,
        costs: CostModel,
        raise_irq: Optional[Callable[[], None]] = None,
    ):
        self.ring = ring
        self.costs = costs
        self.raise_irq = raise_irq
        #: Optional detection observer ``(paddr, value, queued)``; wiring
        #: for :class:`repro.obs.export.DetectionTrace`.  A plain
        #: attribute (not an EventHook) keeps the no-observer hot path at
        #: one attribute load.
        self.on_hit: Optional[Callable[[int, Optional[int], bool], None]] = None
        self._checked = 0
        self._hits = 0
        self._decision_cost = costs.mbm_decision
        self.stats = StatSet("mbm_decision")
        self.stats.flush_hook = self._flush_pending
        self.busy_cycles = 0

    def _flush_pending(self) -> None:
        if self._checked:
            checked, self._checked = self._checked, 0
            self.stats.add("checked", checked)
        if self._hits:
            hits, self._hits = self._hits, 0
            self.stats.add("hits", hits)

    def state_dict(self) -> dict:
        return {
            "busy_cycles": self.busy_cycles,
            "stats": self.stats.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self.busy_cycles = int(state["busy_cycles"])
        self.stats.load_state(state["stats"])
        self._checked = 0
        self._hits = 0

    def decide(
        self, paddr: int, value: Optional[int], bitmap_word: int, bit: int
    ) -> bool:
        """Process one captured event; True when it was a monitored hit."""
        self.busy_cycles += self._decision_cost
        self._checked += 1
        if not (bitmap_word >> bit) & 1:
            return False
        self._hits += 1
        queued = self.ring.produce(paddr, value)
        if not queued:
            # Overflow: the record is gone, so notifying Hypersec would
            # only add an interrupt with nothing behind it (events
            # already queued keep their own pending notifications).
            # ``lost_events`` is a run-integrity failure — see
            # repro.obs.metrics.
            self.stats.add("lost_events")
        if self.on_hit is not None:
            self.on_hit(paddr, value, queued)
        if queued and self.raise_irq is not None:
            self.raise_irq()
        return True
