"""The MBM capture FIFO.

Sits between the bus-traffic snooper and the bitmap translator (paper
Figure 5): snooped write address/value pairs are queued here while the
translator works.  The simulation drains the FIFO synchronously, so the
structure mainly models *capacity*: a burst larger than the FIFO drops
events, which the hardware reports via a sticky overrun flag (a real
monitor must be provisioned so this never happens silently).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.utils.stats import StatSet

#: (paddr, value) — value is None for block-modelled streams.
FifoEntry = Tuple[int, Optional[int]]


class CaptureFifo:
    """Bounded FIFO of captured write events."""

    def __init__(self, depth: int = 64):
        if depth <= 0:
            raise ValueError(f"FIFO depth must be positive, got {depth}")
        self.depth = depth
        self._entries: Deque[FifoEntry] = deque()
        self.overrun = False
        self.stats = StatSet("mbm_fifo")

    def push(self, paddr: int, value: Optional[int]) -> bool:
        """Capture one event; returns False (and sets the overrun flag)
        when the FIFO is full and the event is lost."""
        if len(self._entries) >= self.depth:
            self.overrun = True
            self.stats.add("dropped")
            return False
        self._entries.append((paddr, value))
        self.stats.add("pushed")
        high = len(self._entries)
        if high > self.stats.get("max_depth"):
            self.stats.add("max_depth", high - self.stats.get("max_depth"))
        return True

    def pop(self) -> Optional[FifoEntry]:
        """Remove and return the oldest event, or ``None`` when empty."""
        if not self._entries:
            return None
        self.stats.add("popped")
        return self._entries.popleft()

    def __len__(self) -> int:
        return len(self._entries)

    def clear_overrun(self) -> None:
        """Acknowledge a previously latched overrun."""
        self.overrun = False

    def state_dict(self) -> dict:
        return {
            "entries": [[paddr, value] for paddr, value in self._entries],
            "overrun": self.overrun,
            "stats": self.stats.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self._entries = deque(
            (int(paddr), None if value is None else int(value))
            for paddr, value in state["entries"]
        )
        self.overrun = bool(state["overrun"])
        self.stats.load_state(state["stats"])
