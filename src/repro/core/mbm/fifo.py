"""The MBM capture FIFO.

Sits between the bus-traffic snooper and the bitmap translator (paper
Figure 5): snooped write address/value pairs are queued here while the
translator works.  The simulation drains the FIFO synchronously, so the
structure mainly models *capacity*: a burst larger than the FIFO drops
events, which the hardware reports via a sticky overrun flag (a real
monitor must be provisioned so this never happens silently).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.utils.stats import StatSet

#: (paddr, value) — value is None for block-modelled streams.
FifoEntry = Tuple[int, Optional[int]]


class CaptureFifo:
    """Bounded FIFO of captured write events."""

    def __init__(self, depth: int = 64):
        if depth <= 0:
            raise ValueError(f"FIFO depth must be positive, got {depth}")
        self.depth = depth
        self._entries: Deque[FifoEntry] = deque()
        self.overrun = False
        self.stats = StatSet("mbm_fifo")
        self.stats.flush_hook = self._flush_pending
        # Batched hot-path counters (see StatSet docs).  ``max_depth``
        # is a high-water mark, not an increment: ``_max_seen`` tracks
        # the deepest occupancy ever, ``_max_flushed`` how much of it
        # the StatSet already holds — the flush adds the difference.
        self._pushed = 0
        self._popped = 0
        self._dropped = 0
        self._max_seen = 0
        self._max_flushed = 0

    def _flush_pending(self) -> None:
        stats = self.stats
        if self._pushed:
            pushed, self._pushed = self._pushed, 0
            stats.add("pushed", pushed)
        if self._popped:
            popped, self._popped = self._popped, 0
            stats.add("popped", popped)
        if self._dropped:
            dropped, self._dropped = self._dropped, 0
            stats.add("dropped", dropped)
        if self._max_seen > self._max_flushed:
            stats.add("max_depth", self._max_seen - self._max_flushed)
            self._max_flushed = self._max_seen

    def push(self, paddr: int, value: Optional[int]) -> bool:
        """Capture one event; returns False (and sets the overrun flag)
        when the FIFO is full and the event is lost."""
        entries = self._entries
        if len(entries) >= self.depth:
            self.overrun = True
            self._dropped += 1
            return False
        entries.append((paddr, value))
        self._pushed += 1
        high = len(entries)
        if high > self._max_seen:
            self._max_seen = high
        return True

    def pop(self) -> Optional[FifoEntry]:
        """Remove and return the oldest event, or ``None`` when empty."""
        if not self._entries:
            return None
        self._popped += 1
        return self._entries.popleft()

    def __len__(self) -> int:
        return len(self._entries)

    def clear_overrun(self) -> None:
        """Acknowledge a previously latched overrun."""
        self.overrun = False

    def state_dict(self) -> dict:
        return {
            "entries": [[paddr, value] for paddr, value in self._entries],
            "overrun": self.overrun,
            "stats": self.stats.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self._entries = deque(
            (int(paddr), None if value is None else int(value))
            for paddr, value in state["entries"]
        )
        self.overrun = bool(state["overrun"])
        self.stats.load_state(state["stats"])
        self._pushed = self._popped = self._dropped = 0
        # The serialized max_depth is both "seen" and "flushed".
        self._max_seen = self._max_flushed = int(
            state["stats"].get("max_depth", 0)
        )
