"""The assembled Memory Bus Monitor.

Wires the Figure 5 pipeline together — snooper -> FIFO -> bitmap
translator (+ bitmap cache) -> decision unit -> ring buffer + IRQ — and
owns the secure-memory layout of the bitmap and ring buffer.

The monitor runs off the CPU's critical path: its own memory traffic is
uncharged on the global clock and accumulates in ``busy_cycles``
(occupancy), which the bitmap-cache ablation reports.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.config import WORD_BYTES
from repro.errors import ConfigurationError
from repro.hw.platform import MBM_IRQ, Platform
from repro.core.mbm.bitmap import WordBitmap
from repro.core.mbm.bitmap_cache import BitmapCache
from repro.core.mbm.decision import DecisionUnit
from repro.core.mbm.fifo import CaptureFifo
from repro.core.mbm.ringbuf import EventRingBuffer
from repro.core.mbm.snooper import BusTrafficSnooper
from repro.core.mbm.translator import BitmapTranslator
from repro.utils.bitops import align_up
from repro.utils.events import EventHook
from repro.utils.stats import StatSet


class MemoryBusMonitor:
    """The MBM device on one platform."""

    def __init__(
        self,
        platform: Platform,
        bitmap_cache_enabled: bool = True,
        raise_interrupts: bool = True,
        irq_coalesce: int = 1,
    ):
        """``irq_coalesce`` is an extension knob: raise the interrupt
        only every N-th detection (events accumulate safely in the ring
        buffer meanwhile).  N=1 is the paper's behaviour — one interrupt
        per event; larger N trades notification latency for fewer
        EL1->EL2 round trips under event storms.  Call
        :meth:`flush_events` to deliver stragglers."""
        if irq_coalesce < 1:
            raise ConfigurationError("irq_coalesce must be >= 1")
        self.platform = platform
        config = platform.config
        costs = config.costs
        self.irq_coalesce = irq_coalesce
        self._undelivered = 0
        self.stats = StatSet("mbm")
        self.stats.flush_hook = self._flush_pending
        self._irqs_raised = 0  # batched hot-path counter (see StatSet docs)
        self.tamper_alert = EventHook("mbm_tamper")

        # ---- secure-memory layout -------------------------------------
        # [hypersec image pad | bitmap | ring buffer]
        bitmap_base = platform.secure_base + 1024 * 1024
        self.bitmap = WordBitmap(
            bitmap_base,
            covered_base=config.dram_base,
            covered_limit=platform.secure_base,
        )
        self.bitmap_storage: Tuple[int, int] = self.bitmap.bitmap_range()
        ring_base = align_up(self.bitmap_storage[1], 4096)
        self.ring = EventRingBuffer(
            platform.bus, ring_base, entries=config.mbm_ring_entries
        )
        if ring_base + self.ring.size_bytes > platform.secure_limit:
            raise ConfigurationError("secure region too small for MBM state")

        # ---- pipeline --------------------------------------------------
        self.fifo = CaptureFifo(config.mbm_fifo_entries)
        self.bitmap_cache = BitmapCache(
            config.mbm_bitmap_cache_lines, enabled=bitmap_cache_enabled
        )
        self.translator = BitmapTranslator(
            platform.bus, self.bitmap, self.bitmap_cache, costs
        )
        raise_irq = self._raise_irq if raise_interrupts else None
        self.decision = DecisionUnit(self.ring, costs, raise_irq)
        self.snooper = BusTrafficSnooper(self)
        self._costs = costs
        self._snoop_cost = costs.mbm_snoop
        self._attached = False
        # Transient: non-zero only inside expected_flush() brackets,
        # which never span a snapshot point (they close within one
        # hypercall) — deliberately absent from state_dict.
        self._expected_flush_depth = 0

    def _flush_pending(self) -> None:
        if self._irqs_raised:
            raised, self._irqs_raised = self._irqs_raised, 0
            self.stats.add("irqs_raised", raised)

    # ------------------------------------------------------------------
    # Checkpoint/restore
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Pipeline state; the bitmap and ring contents live in
        simulated (secure) memory, the layout objects are geometry."""
        return {
            "undelivered": self._undelivered,
            "fifo": self.fifo.state_dict(),
            "ring": self.ring.state_dict(),
            "bitmap_cache": self.bitmap_cache.state_dict(),
            "translator": self.translator.state_dict(),
            "decision": self.decision.state_dict(),
            "snooper": self.snooper.state_dict(),
            "stats": self.stats.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self._undelivered = int(state["undelivered"])
        self._irqs_raised = 0
        self.fifo.load_state(state["fifo"])
        self.ring.load_state(state["ring"])
        self.bitmap_cache.load_state(state["bitmap_cache"])
        self.translator.load_state(state["translator"])
        self.decision.load_state(state["decision"])
        self.snooper.load_state(state["snooper"])
        self.stats.load_state(state["stats"])

    # ------------------------------------------------------------------
    @property
    def secure_range(self) -> Tuple[int, int]:
        return self.platform.secure_base, self.platform.secure_limit

    @property
    def busy_cycles(self) -> int:
        """Total monitor occupancy (snoop + translate + decide)."""
        return self.translator.busy_cycles + self.decision.busy_cycles

    @property
    def events_detected(self) -> int:
        """Monitored-write detections (== interrupts without coalescing),
        the quantity Table 2 reports."""
        return self.decision.stats.get("hits")

    @property
    def events_lost(self) -> int:
        """Events the pipeline dropped anywhere: capture-FIFO overruns
        plus ring-buffer overflows.  Non-zero means detections are
        missing and any monitoring result from this run is suspect —
        repro.obs turns this into a hard integrity failure."""
        return self.fifo.stats.get("dropped") + self.decision.stats.get(
            "lost_events"
        )

    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Connect the snooper to the memory bus."""
        if self._attached:
            raise ConfigurationError("MBM already attached")
        self.platform.bus.attach_snooper(self.snooper)
        self._attached = True

    def detach(self) -> None:
        self.platform.bus.detach_snooper(self.snooper)
        self._attached = False

    def _raise_irq(self) -> None:
        self._undelivered += 1
        if self._undelivered < self.irq_coalesce:
            self.stats.add("irqs_coalesced")
            return
        self._undelivered = 0
        self._irqs_raised += 1
        self.platform.gic.raise_irq(MBM_IRQ)

    def flush_events(self) -> None:
        """Deliver any detections held back by interrupt coalescing."""
        if self._undelivered:
            self._undelivered = 0
            self._irqs_raised += 1
            self.platform.gic.raise_irq(MBM_IRQ)

    # ------------------------------------------------------------------
    # Pipeline entry points (called by the snooper)
    # ------------------------------------------------------------------
    def capture(self, paddr: int, value: Optional[int]) -> None:
        """One word write: FIFO -> translate -> decide."""
        self.translator.busy_cycles += self._snoop_cost
        if not self.fifo.push(paddr, value):
            self.stats.add("fifo_drops")
            return
        entry = self.fifo.pop()
        assert entry is not None
        word_paddr, word_value = entry
        bitmap_word, bit = self.translator.translate(word_paddr)
        self.decision.decide(word_paddr, word_value, bitmap_word, bit)

    def capture_block(self, paddr: int, nwords: int) -> None:
        """A modelled burst of sequential writes: the translator fetches
        each covering bitmap word once and the decision unit walks the
        set bits (values are unavailable for block-modelled streams)."""
        self.translator.busy_cycles += self._snoop_cost
        for word_addr, mask in self.bitmap.words_for_range(
            paddr, nwords * WORD_BYTES
        ):
            word_value = self.translator.fetch_word(word_addr)
            hits = word_value & mask
            while hits:
                bit = (hits & -hits).bit_length() - 1
                hits &= hits - 1
                # Each bitmap word covers 64 consecutive machine words.
                event_paddr = (
                    self.bitmap.covered_base
                    + ((word_addr - self.bitmap.bitmap_base) // WORD_BYTES)
                    * 64
                    * WORD_BYTES
                    + bit * WORD_BYTES
                )
                self.decision.decide(event_paddr, None, word_value, bit)

    def note_writeback(self, line_paddr: int, nwords: int) -> None:
        """A dirty-line writeback covered monitored words: the per-word
        values were invisible, so events may have been missed.  Hypersec
        prevents this by making monitored pages non-cacheable; the
        counter exists to prove that necessity.

        The one legitimate exception is Hypersec's own registration
        flush: region registration arms the bitmap bits and *then*
        clean-invalidates the page, so the flushed lines hold values
        written before monitoring began — not missed events.  Hypersec
        brackets that flush with :meth:`expected_flush`, which rebuckets
        the count as ``flushed_writebacks`` (the mitigation observably
        doing its job) instead of ``writeback_hazards`` (an integrity
        failure).  The bitmap scan itself is identical either way, so
        suppression never changes bus traffic or monitor occupancy."""
        for word_addr, mask in self.bitmap.words_for_range(
            line_paddr, nwords * WORD_BYTES
        ):
            if self.translator.fetch_word(word_addr) & mask:
                if self._expected_flush_depth:
                    self.stats.add("flushed_writebacks")
                else:
                    self.stats.add("writeback_hazards")
                return

    def expected_flush(self):
        """Context manager marking an intentional clean-invalidate of
        monitored pages (see :meth:`note_writeback`)."""
        return _ExpectedFlush(self)


class _ExpectedFlush:
    """Re-entrant bracket for Hypersec's registration flushes."""

    def __init__(self, mbm: MemoryBusMonitor):
        self._mbm = mbm

    def __enter__(self) -> "_ExpectedFlush":
        self._mbm._expected_flush_depth += 1
        return self

    def __exit__(self, *exc_info) -> None:
        self._mbm._expected_flush_depth -= 1
