"""The MBM's output ring buffer.

Paper section 5.3: on a bitmap hit, "the MBM records the information of
the event (address, value) in a ring buffer and raises an interrupt to
notify Hypersec."  The ring lives in the secure region, so the kernel
cannot tamper with queued events.

Layout in secure memory (all 64-bit words)::

    +0      head (producer index, written by the MBM)
    +8      tail (consumer index, written by Hypersec)
    +16     entry[0].addr,  entry[0].value
    +32     entry[1].addr,  entry[1].value
    ...

The producer (MBM) writes with unstalling device stores; the consumer
(Hypersec) reads with uncached loads — both charged to their own agent.

Head and tail are free-running indices wrapped at ``2 * entries`` (the
classic power-of-two ring trick): the extra bit disambiguates full from
empty, and the stored index values stay bounded, so a quiescent ring
returns to an identical memory image instead of carrying an
ever-growing producer count.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.config import WORD_BYTES
from repro.errors import ProtocolError
from repro.hw.bus import MemoryBus
from repro.utils.stats import StatSet

_HEADER_WORDS = 2
_ENTRY_WORDS = 2


class EventRingBuffer:
    """A producer/consumer ring of (address, value) event records."""

    def __init__(self, bus: MemoryBus, base_paddr: int, entries: int = 1024):
        if entries <= 1:
            raise ProtocolError("ring needs at least two entries")
        self.bus = bus
        self.base = base_paddr
        self.entries = entries
        self.stats = StatSet("mbm_ring")
        self.stats.flush_hook = self._flush_pending
        self._produced = 0  # batched hot-path counter (see StatSet docs)
        # Reset indices in memory (device initialization).
        bus.poke(self.base, 0)
        bus.poke(self.base + WORD_BYTES, 0)

    def _flush_pending(self) -> None:
        if self._produced:
            produced, self._produced = self._produced, 0
            self.stats.add("produced", produced)

    @property
    def size_bytes(self) -> int:
        return (_HEADER_WORDS + self.entries * _ENTRY_WORDS) * WORD_BYTES

    def state_dict(self) -> dict:
        """Counters only: head/tail/entries live in simulated memory."""
        return {"stats": self.stats.state_dict()}

    def load_state(self, state: dict) -> None:
        self.stats.load_state(state["stats"])
        self._produced = 0

    def _entry_addr(self, index: int) -> int:
        return self.base + (_HEADER_WORDS + (index % self.entries) * _ENTRY_WORDS) * WORD_BYTES

    # ------------------------------------------------------------------
    # Producer side (the MBM decision unit)
    # ------------------------------------------------------------------
    def produce(self, addr: int, value: Optional[int]) -> bool:
        """Record one event; returns False when the ring is full.

        The MBM's stores do not stall the CPU (charge=False) but are
        real bus transactions into the secure region.
        """
        bus = self.bus
        base = self.base
        wrap = 2 * self.entries
        head = bus.peek(base)
        tail = bus.peek(base + WORD_BYTES)
        if (head - tail) % wrap >= self.entries:
            self.stats.add("overflow_drops")
            return False
        entry = self._entry_addr(head)
        bus.write(entry, addr, initiator="mbm", charge=False)
        bus.write(
            entry + WORD_BYTES,
            value if value is not None else (1 << 64) - 1,
            initiator="mbm",
            charge=False,
        )
        bus.write(base, (head + 1) % wrap, initiator="mbm", charge=False)
        self._produced += 1
        return True

    # ------------------------------------------------------------------
    # Consumer side (Hypersec's interrupt handler)
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Events waiting (backdoor peek for tests/stats)."""
        head = self.bus.peek(self.base)
        tail = self.bus.peek(self.base + WORD_BYTES)
        return (head - tail) % (2 * self.entries)

    def consume_all(self, reader=None, writer=None) -> List[Tuple[int, int]]:
        """Drain every queued event with uncached (device) reads.

        ``reader`` is a callable performing a charged uncached read for
        the consuming agent; it defaults to charged bus reads.
        ``writer`` is the matching charged store used for the tail
        write-back — a consumer that supplies its own ``reader`` must
        supply the consistent ``writer``, or its one store per drain is
        silently charged (and attributed on the bus) as a plain CPU
        write.  Both default to raw bus accesses, preserving the
        reader-less behaviour.
        """
        if reader is None:
            reader = lambda paddr: self.bus.read(paddr)  # noqa: E731
        if writer is None:
            writer = lambda paddr, value: self.bus.write(paddr, value)  # noqa: E731
        events: List[Tuple[int, int]] = []
        wrap = 2 * self.entries
        head = reader(self.base)
        tail = reader(self.base + WORD_BYTES)
        occupancy = (head - tail) % wrap
        if occupancy > self.entries:
            raise ProtocolError("ring tail ran past head")
        for _ in range(occupancy):
            entry = self._entry_addr(tail)
            addr = reader(entry)
            value = reader(entry + WORD_BYTES)
            events.append((addr, value))
            tail = (tail + 1) % wrap
        writer(self.base + WORD_BYTES, tail)
        self.stats.add("consumed", len(events))
        return events
