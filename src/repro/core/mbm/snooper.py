"""The MBM's bus-traffic snooper.

Paper section 6.3: "The bus traffic snooper, a hardware module that
monitors the memory bus traffic, captures the write address/value
pairs."  It also does the housekeeping only a bus-resident agent can:

* snoops writes to the bitmap's own storage to keep the bitmap cache
  write-updated (section 6.3);
* flags dirty-line writebacks that overlap monitored words — a write
  the monitor could *not* decode, which is why Hypersec maps monitored
  pages non-cacheable (section 5.3);
* flags non-CPU (DMA) writes into the secure region — the bus-level
  tamper detection sketched in the paper's Discussion section.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import WORD_BYTES
from repro.hw.bus import BusTransaction, TxnKind
from repro.utils.stats import StatSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.mbm.mbm import MemoryBusMonitor


class BusTrafficSnooper:
    """The bus-facing front end of the MBM."""

    def __init__(self, mbm: "MemoryBusMonitor"):
        self.mbm = mbm
        self._observed = 0
        self._captured = 0
        self.stats = StatSet("mbm_snooper")
        self.stats.flush_hook = self._flush_pending
        # The snooper runs once per bus transaction — the hottest call
        # site in a monitored system.  The pipeline objects it forwards
        # to are created once and mutated in place (load_state included),
        # so their bound methods and the bitmap geometry can be captured
        # here instead of chased through ``self.mbm`` on every event.
        self._bitmap_lo, self._bitmap_hi = mbm.bitmap_storage
        self._covers = mbm.bitmap.covers
        self._snoop_update = mbm.bitmap_cache.snoop_update
        self._capture = mbm.capture

    def _flush_pending(self) -> None:
        if self._observed:
            observed, self._observed = self._observed, 0
            self.stats.add("observed", observed)
        if self._captured:
            captured, self._captured = self._captured, 0
            self.stats.add("captured", captured)

    def state_dict(self) -> dict:
        return {"stats": self.stats.state_dict()}

    def load_state(self, state: dict) -> None:
        self.stats.load_state(state["stats"])
        self._observed = 0
        self._captured = 0

    def __call__(self, txn: BusTransaction) -> None:
        """Observe one bus transaction (installed as a bus snooper)."""
        initiator = txn.initiator
        if initiator == "mbm":
            return  # our own bitmap fetches / ring stores
        self._observed += 1
        if initiator != "cpu" and txn.is_write_like:
            # Secure-region tamper detection (DMA attack, Discussion).
            if self._overlaps_secure(txn):
                self.stats.add("secure_tamper_writes")
                self.mbm.tamper_alert.fire(txn)
        kind = txn.kind
        if kind is TxnKind.WRITE:
            paddr = txn.paddr
            if self._bitmap_lo <= paddr < self._bitmap_hi:
                # Hypersec updating the bitmap: write-update the cache.
                self._snoop_update(paddr, txn.value or 0)
                return
            if self._covers(paddr):
                self._captured += 1
                self._capture(paddr, txn.value)
        elif kind is TxnKind.BLOCK_WRITE:
            if self._covers(txn.paddr):
                self.stats.add("captured_blocks")
                self.mbm.capture_block(txn.paddr, txn.nwords)
        elif kind is TxnKind.WRITEBACK:
            if self._covers(txn.paddr):
                self.mbm.note_writeback(txn.paddr, txn.nwords)

    def _overlaps_secure(self, txn: BusTransaction) -> bool:
        secure_base, secure_limit = self.mbm.secure_range
        end = txn.paddr + txn.nwords * WORD_BYTES
        return txn.paddr < secure_limit and end > secure_base
