"""The MBM's bus-traffic snooper.

Paper section 6.3: "The bus traffic snooper, a hardware module that
monitors the memory bus traffic, captures the write address/value
pairs."  It also does the housekeeping only a bus-resident agent can:

* snoops writes to the bitmap's own storage to keep the bitmap cache
  write-updated (section 6.3);
* flags dirty-line writebacks that overlap monitored words — a write
  the monitor could *not* decode, which is why Hypersec maps monitored
  pages non-cacheable (section 5.3);
* flags non-CPU (DMA) writes into the secure region — the bus-level
  tamper detection sketched in the paper's Discussion section.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import WORD_BYTES
from repro.hw.bus import BusTransaction, TxnKind
from repro.utils.stats import StatSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.mbm.mbm import MemoryBusMonitor


class BusTrafficSnooper:
    """The bus-facing front end of the MBM."""

    def __init__(self, mbm: "MemoryBusMonitor"):
        self.mbm = mbm
        self._observed = 0
        self.stats = StatSet("mbm_snooper")
        self.stats.flush_hook = self._flush_pending

    def _flush_pending(self) -> None:
        if self._observed:
            observed, self._observed = self._observed, 0
            self.stats.add("observed", observed)

    def state_dict(self) -> dict:
        return {"stats": self.stats.state_dict()}

    def load_state(self, state: dict) -> None:
        self.stats.load_state(state["stats"])
        self._observed = 0

    def __call__(self, txn: BusTransaction) -> None:
        """Observe one bus transaction (installed as a bus snooper)."""
        mbm = self.mbm
        initiator = txn.initiator
        if initiator == "mbm":
            return  # our own bitmap fetches / ring stores
        self._observed += 1
        # Secure-region tamper detection (DMA attack, Discussion section).
        if initiator != "cpu" and txn.is_write_like:
            if self._overlaps_secure(txn):
                self.stats.add("secure_tamper_writes")
                mbm.tamper_alert.fire(txn)
        if txn.kind is TxnKind.WRITE:
            if mbm.bitmap_storage[0] <= txn.paddr < mbm.bitmap_storage[1]:
                # Hypersec updating the bitmap: write-update the cache.
                mbm.bitmap_cache.snoop_update(txn.paddr, txn.value or 0)
                return
            if mbm.bitmap.covers(txn.paddr):
                self.stats.add("captured")
                mbm.capture(txn.paddr, txn.value)
        elif txn.kind is TxnKind.BLOCK_WRITE:
            if mbm.bitmap.covers(txn.paddr):
                self.stats.add("captured_blocks")
                mbm.capture_block(txn.paddr, txn.nwords)
        elif txn.kind is TxnKind.WRITEBACK:
            if mbm.bitmap.covers(txn.paddr):
                mbm.note_writeback(txn.paddr, txn.nwords)

    def _overlaps_secure(self, txn: BusTransaction) -> bool:
        secure_base, secure_limit = self.mbm.secure_range
        end = txn.paddr + txn.nwords * WORD_BYTES
        return txn.paddr < secure_limit and end > secure_base
