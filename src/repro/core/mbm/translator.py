"""The MBM's bitmap translator.

Paper section 6.3: "When the bitmap translator is in the idle state, it
loads the captured data from the FIFO buffer and calculates the
corresponding bitmap address.  Then, the bitmap translator reads the
bitmap data from the main memory" — through the bitmap cache.

The translator issues its own bus reads (initiator ``"mbm"``), which do
not stall the CPU: its latency accumulates in the monitor's occupancy
statistics instead.
"""

from __future__ import annotations

from repro.config import CostModel
from repro.hw.bus import MemoryBus
from repro.core.mbm.bitmap import WordBitmap
from repro.core.mbm.bitmap_cache import BitmapCache
from repro.utils.stats import StatSet


class BitmapTranslator:
    """Computes and fetches the bitmap word for captured events."""

    def __init__(
        self,
        bus: MemoryBus,
        bitmap: WordBitmap,
        cache: BitmapCache,
        costs: CostModel,
    ):
        self.bus = bus
        self.bitmap = bitmap
        self.cache = cache
        self.costs = costs
        self._translations = 0
        self.stats = StatSet("mbm_translator")
        self.stats.flush_hook = self._flush_pending
        self.busy_cycles = 0

    def _flush_pending(self) -> None:
        if self._translations:
            translations, self._translations = self._translations, 0
            self.stats.add("translations", translations)

    def state_dict(self) -> dict:
        return {
            "busy_cycles": self.busy_cycles,
            "stats": self.stats.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self.busy_cycles = int(state["busy_cycles"])
        self.stats.load_state(state["stats"])
        self._translations = 0

    def fetch_word(self, bitmap_word_paddr: int) -> int:
        """Return the bitmap word, consulting the cache first."""
        cached = self.cache.lookup(bitmap_word_paddr)
        if cached is not None:
            self.busy_cycles += self.costs.mbm_bitmap_cache_hit
            return cached
        value = self.bus.read(bitmap_word_paddr, initiator="mbm", charge=False)
        self.busy_cycles += self.costs.mbm_bitmap_fetch
        self.stats.add("dram_fetches")
        self.cache.fill(bitmap_word_paddr, value)
        return value

    def translate(self, paddr: int) -> tuple[int, int]:
        """Bitmap word value and bit index for one captured address."""
        bitmap_word_paddr, bit = self.bitmap.locate(paddr)
        self._translations += 1
        return self.fetch_word(bitmap_word_paddr), bit
