"""Exception hierarchy for the Hypernel reproduction.

Two families live here:

* **Simulation errors** (:class:`SimulationError` and subclasses) signal
  misuse of the simulator itself — out-of-range physical addresses,
  double-free in an allocator, malformed descriptors.  They indicate a bug
  in the caller and are never part of the modelled machine's behaviour.

* **Architectural faults** (:class:`ArchFault` and subclasses) model the
  synchronous exceptions a real AArch64 machine raises — translation
  faults, permission faults, trapped system-register accesses, hypercalls.
  They are *control flow* inside the simulation: the CPU model catches
  them and routes them to the exception vector of the appropriate
  exception level, exactly as hardware would.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for errors that indicate misuse of the simulator."""


class MemoryRangeError(SimulationError):
    """A physical address fell outside the installed memory."""


class AlignmentError(SimulationError):
    """An access was not aligned to its required size."""


class AllocationError(SimulationError):
    """A memory allocator could not satisfy or validate a request."""


class ConfigurationError(SimulationError):
    """A component was assembled or configured inconsistently."""


class SnapshotError(SimulationError):
    """A machine snapshot could not be written, read or restored."""


class ProtocolError(SimulationError):
    """A hardware-protocol invariant was violated (e.g. FIFO overrun
    handling misused, ring-buffer read past the producer)."""


class IntegrityError(SimulationError):
    """A run-integrity check failed: the monitoring pipeline lost events
    (FIFO overrun, ring overflow) during a run that did not waive the
    check.  Raised by :mod:`repro.obs.metrics` so silent event loss
    fails loudly instead of skewing Table 2."""


class ArchFault(Exception):
    """Base class for modelled architectural synchronous exceptions.

    :param vaddr: faulting virtual address, if the fault is address-related.
    :param el: exception level the fault was taken *from*.
    """

    def __init__(self, message: str, vaddr: int | None = None, el: int | None = None):
        super().__init__(message)
        self.vaddr = vaddr
        self.el = el


class TranslationFault(ArchFault):
    """Stage-1 translation failed: no valid descriptor for the address."""


class PermissionFault(ArchFault):
    """Stage-1 translation succeeded but the access violates permissions."""


class Stage2Fault(ArchFault):
    """Stage-2 (IPA -> PA) translation failed or was not permitted.

    On real hardware this is taken to EL2; the simulator routes it to the
    hypervisor model.  ``ipa`` carries the faulting intermediate physical
    address and ``is_write`` whether the access was a store.
    """

    def __init__(self, message: str, ipa: int, is_write: bool, vaddr: int | None = None):
        super().__init__(message, vaddr=vaddr)
        self.ipa = ipa
        self.is_write = is_write


class TrappedInstruction(ArchFault):
    """A privileged instruction executed at EL1 was trapped to EL2.

    Raised when, e.g., ``HCR_EL2.TVM`` is set and the kernel writes a
    virtual-memory control register such as ``TTBR1_EL1``.
    """

    def __init__(self, message: str, register: str, value: int):
        super().__init__(message)
        self.register = register
        self.value = value


class SecurityViolation(Exception):
    """A security policy enforced by Hypersec (or a baseline) was violated.

    These are *detections*: Hypersec raises one when it refuses a hostile
    page-table update, a write into the secure space, or a trapped
    register write that would disable protection.  Attack scenarios assert
    on them.
    """

    def __init__(self, message: str, policy: str = "generic"):
        super().__init__(message)
        self.policy = policy
