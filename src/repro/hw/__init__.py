"""Hardware substrate: clock, physical memory, bus, DRAM, caches, IRQs.

These models sit *below* the architecture layer.  Everything the simulated
CPU, page-table walker, hypervisor or MBM does to memory flows through
:class:`~repro.hw.bus.MemoryBus`, which is where the MBM's bus-traffic
snooper attaches — exactly the attachment point of the paper's Figure 5.
"""

from repro.hw.bus import BusTransaction, MemoryBus, TxnKind
from repro.hw.cache import Cache, CacheHierarchy
from repro.hw.clock import Clock
from repro.hw.dram import DramModel
from repro.hw.interrupt import InterruptController
from repro.hw.memory import PhysicalMemory
from repro.hw.platform import Platform

__all__ = [
    "BusTransaction",
    "Cache",
    "CacheHierarchy",
    "Clock",
    "DramModel",
    "InterruptController",
    "MemoryBus",
    "PhysicalMemory",
    "Platform",
    "TxnKind",
]
