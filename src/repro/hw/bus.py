"""The memory bus between the CPU (cache hierarchy) and main memory.

Every access that actually reaches DRAM is a :class:`BusTransaction`, and
every transaction is published to registered *snoopers* after completion.
The Hypernel MBM attaches here (paper Figure 5: "bus traffic snooper"),
as does the optional DMA engine used by the attack scenarios.

Transaction kinds
-----------------
``READ`` / ``WRITE``
    Single-word transfers, carrying the exact address and (for writes)
    value — what an uncached CPU access or a device access produces.
``LINE_FILL`` / ``WRITEBACK``
    Whole-cache-line transfers produced by the cache hierarchy.  A
    writeback does **not** carry per-word values: a bus monitor cannot
    reconstruct which words changed, which is precisely why Hypersec
    makes monitored pages non-cacheable (paper section 5.3).
``BLOCK_WRITE``
    A modelled stream of ``nwords`` sequential word writes whose
    individual values the simulation does not track (bulk data copies in
    workloads).  Snoopers are told the covered range.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.config import LINE_BYTES, WORD_BYTES
from repro.hw.clock import Clock
from repro.hw.dram import DramModel
from repro.hw.memory import PhysicalMemory
from repro.utils.stats import StatSet

LINE_WORDS = LINE_BYTES // WORD_BYTES


class TxnKind(enum.Enum):
    """Kind of bus transaction; see module docstring."""

    READ = "read"
    WRITE = "write"
    LINE_FILL = "line_fill"
    WRITEBACK = "writeback"
    BLOCK_WRITE = "block_write"


@dataclass(frozen=True)
class BusTransaction:
    """One completed transfer on the memory bus."""

    kind: TxnKind
    paddr: int
    #: Word value for ``WRITE``; ``None`` for all other kinds.
    value: Optional[int] = None
    #: Number of words covered (1 for word transfers, line/block size else).
    nwords: int = 1
    #: Who issued the transfer: ``"cpu"``, ``"mbm"``, ``"dma"``, ...
    initiator: str = "cpu"

    @property
    def is_write_like(self) -> bool:
        """True for any transaction that modifies memory."""
        return self.kind in (TxnKind.WRITE, TxnKind.WRITEBACK, TxnKind.BLOCK_WRITE)

    def as_dict(self) -> dict:
        """JSON-ready form (``kind`` flattened to its string value);
        consumed by the JSONL exporters in :mod:`repro.obs.export`."""
        return {
            "kind": self.kind.value,
            "paddr": self.paddr,
            "value": self.value,
            "nwords": self.nwords,
            "initiator": self.initiator,
        }


Snooper = Callable[[BusTransaction], None]


class MemoryBus:
    """Mediates all DRAM traffic; charges timing; notifies snoopers."""

    def __init__(self, memory: PhysicalMemory, dram: DramModel, clock: Clock):
        self.memory = memory
        self.dram = dram
        self.clock = clock
        self._snoopers: List[Snooper] = []
        self.stats = StatSet("bus")
        self.stats.flush_hook = self._flush_stats
        # Batched hot-path counters, folded into ``stats`` on read.
        self._reads = 0
        self._writes = 0
        self._line_fills = 0
        self._writebacks = 0
        self._block_writes = 0
        self._block_words = 0

    def _flush_stats(self) -> None:
        stats = self.stats
        for key, attr in (
            ("reads", "_reads"),
            ("writes", "_writes"),
            ("line_fills", "_line_fills"),
            ("writebacks", "_writebacks"),
            ("block_writes", "_block_writes"),
            ("block_words", "_block_words"),
        ):
            pending = getattr(self, attr)
            if pending:
                setattr(self, attr, 0)
                stats.add(key, pending)

    def state_dict(self) -> dict:
        """Counters only: memory contents and snoopers belong elsewhere."""
        return {"stats": self.stats.state_dict()}

    def load_state(self, state: dict) -> None:
        self.stats.load_state(state["stats"])
        self._reads = 0
        self._writes = 0
        self._line_fills = 0
        self._writebacks = 0
        self._block_writes = 0
        self._block_words = 0

    # ------------------------------------------------------------------
    # Snooper management
    # ------------------------------------------------------------------
    def attach_snooper(self, snooper: Snooper) -> None:
        """Attach a snooper; it sees every subsequent transaction."""
        self._snoopers.append(snooper)

    def detach_snooper(self, snooper: Snooper) -> None:
        """Detach a previously attached snooper."""
        self._snoopers.remove(snooper)

    def _notify(self, txn: BusTransaction) -> None:
        for snooper in self._snoopers:
            snooper(txn)

    # ------------------------------------------------------------------
    # Word transfers
    # ------------------------------------------------------------------
    def read(self, paddr: int, initiator: str = "cpu", charge: bool = True) -> int:
        """Read one word from DRAM.

        ``charge=False`` lets off-critical-path agents (the MBM works in
        parallel with the CPU) account their latency separately instead
        of stalling the global clock.
        """
        cycles = self.dram.access_cycles(paddr)
        if charge:
            self.clock.advance(cycles)
        value = self.memory.read_word(paddr)
        self._reads += 1
        snoopers = self._snoopers
        if snoopers:
            txn = BusTransaction(TxnKind.READ, paddr, None, 1, initiator)
            for snooper in snoopers:
                snooper(txn)
        return value

    def write(
        self, paddr: int, value: int, initiator: str = "cpu", charge: bool = True
    ) -> None:
        """Write one word to DRAM; snoopers see the exact address/value."""
        cycles = self.dram.access_cycles(paddr)
        if charge:
            self.clock.advance(cycles)
        self.memory.write_word(paddr, value)
        self._writes += 1
        snoopers = self._snoopers
        if snoopers:
            txn = BusTransaction(TxnKind.WRITE, paddr, value, 1, initiator)
            for snooper in snoopers:
                snooper(txn)

    # ------------------------------------------------------------------
    # Line transfers (cache hierarchy)
    # ------------------------------------------------------------------
    def fill_line(self, line_paddr: int, initiator: str = "cpu") -> None:
        """Fetch one cache line from DRAM (timing + snoop only)."""
        self.clock.advance(self.dram.burst_cycles(line_paddr, LINE_WORDS))
        self._line_fills += 1
        if self._snoopers:
            self._notify(
                BusTransaction(
                    TxnKind.LINE_FILL, line_paddr, None, LINE_WORDS, initiator
                )
            )

    def writeback_line(self, line_paddr: int, initiator: str = "cpu") -> None:
        """Write one dirty line back to DRAM.

        Word values are not carried (see module docstring) — the backing
        store is already up to date because the cache models are
        timing-only.
        """
        self.clock.advance(self.dram.burst_cycles(line_paddr, LINE_WORDS))
        self._writebacks += 1
        if self._snoopers:
            self._notify(
                BusTransaction(
                    TxnKind.WRITEBACK, line_paddr, None, LINE_WORDS, initiator
                )
            )

    # ------------------------------------------------------------------
    # Bulk transfers (workload data streams)
    # ------------------------------------------------------------------
    def write_block(
        self, paddr: int, nwords: int, initiator: str = "cpu", charge: bool = True
    ) -> None:
        """Model a stream of ``nwords`` sequential word writes.

        Used for bulk data movement (file contents, page copies) where
        tracking individual values would add nothing: the range is
        reported to snoopers so the MBM can check it against its bitmap.
        """
        if nwords <= 0:
            return
        if charge:
            self.clock.advance(self.dram.burst_cycles(paddr, nwords))
        self._block_writes += 1
        self._block_words += nwords
        if self._snoopers:
            self._notify(
                BusTransaction(TxnKind.BLOCK_WRITE, paddr, None, nwords, initiator)
            )

    # ------------------------------------------------------------------
    # Backdoor access (no timing, no snoop) for loaders and checkers
    # ------------------------------------------------------------------
    def peek(self, paddr: int) -> int:
        """Read memory without timing or snooping (testing/loader use)."""
        return self.memory.read_word(paddr)

    def poke(self, paddr: int, value: int) -> None:
        """Write memory without timing or snooping (testing/loader use)."""
        self.memory.write_word(paddr, value)
