"""Set-associative write-back cache models.

The caches are *timing-only*: data always lives in
:class:`~repro.hw.memory.PhysicalMemory` (the backing store is updated on
every write), while the cache models track which lines would be resident
and dirty, charge hit/miss latencies, and generate the line-fill and
writeback bus traffic that a real hierarchy would.

The property that matters for Hypernel: a **cacheable** write updates the
cache and does *not* produce a word-granular bus transaction — only an
eventual ``WRITEBACK`` of the whole line, without per-word values.  The
MBM therefore cannot monitor cacheable pages, which is why Hypersec maps
monitored pages non-cacheable (paper section 5.3).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.config import LINE_BYTES, PAGE_BYTES, WORD_BYTES, CostModel
from repro.errors import ConfigurationError
from repro.hw.bus import MemoryBus
from repro.utils.bitops import align_down
from repro.utils.stats import StatSet


class Cache:
    """One level of set-associative cache with true-LRU replacement."""

    def __init__(self, name: str, size_bytes: int, ways: int, line_bytes: int = LINE_BYTES):
        if size_bytes % (ways * line_bytes) != 0:
            raise ConfigurationError(
                f"{name}: size {size_bytes} not divisible by ways*line "
                f"({ways}*{line_bytes})"
            )
        self.name = name
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (ways * line_bytes)
        # Precomputed shift/mask set indexing for the (usual) power-of-two
        # geometry; ``None`` falls back to divide/modulo.
        if line_bytes & (line_bytes - 1) == 0 and self.num_sets & (self.num_sets - 1) == 0:
            self._line_shift: Optional[int] = line_bytes.bit_length() - 1
            self._set_mask = self.num_sets - 1
        else:
            self._line_shift = None
            self._set_mask = 0
        # Per-set LRU ordering: maps line base address -> dirty flag.
        # OrderedDict order is LRU -> MRU.
        self._sets: Dict[int, "OrderedDict[int, bool]"] = {}
        self._hits = 0
        self._misses = 0
        self.stats = StatSet(name)
        self.stats.flush_hook = self._flush_pending

    def _flush_pending(self) -> None:
        if self._hits:
            hits, self._hits = self._hits, 0
            self.stats.add("hits", hits)
        if self._misses:
            misses, self._misses = self._misses, 0
            self.stats.add("misses", misses)

    def _set_index(self, line_addr: int) -> int:
        if self._line_shift is not None:
            return (line_addr >> self._line_shift) & self._set_mask
        return (line_addr // self.line_bytes) % self.num_sets

    def _set_for(self, line_addr: int) -> "OrderedDict[int, bool]":
        return self._sets.setdefault(self._set_index(line_addr), OrderedDict())

    def lookup(self, line_addr: int, touch: bool = True) -> bool:
        """True if the line is resident; refreshes LRU when ``touch``."""
        lines = self._sets.get(self._set_index(line_addr))
        if lines is not None and line_addr in lines:
            if touch:
                lines.move_to_end(line_addr)
            self._hits += 1
            return True
        self._misses += 1
        return False

    def insert(self, line_addr: int, dirty: bool = False) -> Optional[Tuple[int, bool]]:
        """Insert a line; returns ``(evicted_addr, was_dirty)`` or ``None``.

        If the line is already present this only merges the dirty bit.
        """
        lines = self._set_for(line_addr)
        if line_addr in lines:
            lines[line_addr] = lines[line_addr] or dirty
            lines.move_to_end(line_addr)
            return None
        evicted = None
        if len(lines) >= self.ways:
            evicted_addr, was_dirty = lines.popitem(last=False)
            evicted = (evicted_addr, was_dirty)
            self.stats.add("evictions")
            if was_dirty:
                self.stats.add("dirty_evictions")
        lines[line_addr] = dirty
        return evicted

    def mark_dirty(self, line_addr: int) -> None:
        """Set the dirty bit of a resident line (no-op when absent)."""
        lines = self._sets.get(self._set_index(line_addr))
        if lines is not None and line_addr in lines:
            lines[line_addr] = True

    def remove(self, line_addr: int) -> Optional[bool]:
        """Invalidate a line; returns its dirty bit, or ``None`` if absent."""
        lines = self._sets.get(self._set_index(line_addr))
        if lines is None:
            return None
        return lines.pop(line_addr, None)

    def resident_lines(self) -> List[int]:
        """All resident line addresses (test/maintenance helper)."""
        return [addr for lines in self._sets.values() for addr in lines]

    def invalidate_all(self) -> None:
        """Drop every line without writeback (power-on state)."""
        self._sets.clear()

    def state_dict(self) -> dict:
        """Full replacement state: per-set LRU order and dirty bits."""
        return {
            "stats": self.stats.state_dict(),  # flushes batched hits/misses
            "sets": [
                [index, [[addr, dirty] for addr, dirty in lines.items()]]
                for index, lines in sorted(self._sets.items())
            ],
        }

    def load_state(self, state: dict) -> None:
        self._sets = {
            int(index): OrderedDict(
                (int(addr), bool(dirty)) for addr, dirty in lines
            )
            for index, lines in state["sets"]
        }
        self.stats.load_state(state["stats"])
        self._hits = 0
        self._misses = 0


class CacheHierarchy:
    """A two-level (L1 + unified L2) write-back write-allocate hierarchy.

    Front door for all CPU-originated memory traffic:

    * non-cacheable accesses bypass straight to the bus word-by-word,
    * cacheable accesses hit/miss through L1 then L2, generating
      ``LINE_FILL`` and ``WRITEBACK`` bus traffic on misses/evictions.
    """

    def __init__(self, l1: Cache, l2: Cache, bus: MemoryBus, costs: CostModel):
        if l1.line_bytes != l2.line_bytes:
            raise ConfigurationError("L1 and L2 must share a line size")
        self.l1 = l1
        self.l2 = l2
        self.bus = bus
        self.costs = costs
        self.stats = StatSet("cache_hierarchy")
        self.stats.flush_hook = self._flush_pending
        self._line_mask = ~(l1.line_bytes - 1)
        self._cached_reads = 0
        self._cached_writes = 0
        self._uncached_reads = 0
        self._uncached_writes = 0

    def _flush_pending(self) -> None:
        stats = self.stats
        for key, attr in (
            ("cached_reads", "_cached_reads"),
            ("cached_writes", "_cached_writes"),
            ("uncached_reads", "_uncached_reads"),
            ("uncached_writes", "_uncached_writes"),
        ):
            pending = getattr(self, attr)
            if pending:
                setattr(self, attr, 0)
                stats.add(key, pending)

    # ------------------------------------------------------------------
    def _line_addr(self, paddr: int) -> int:
        return paddr & self._line_mask

    def _ensure_resident(self, paddr: int, initiator: str) -> None:
        """Bring the line containing ``paddr`` into L1 (and L2), charging
        the appropriate latencies and emitting fill/writeback traffic."""
        line = paddr & self._line_mask
        if self.l1.lookup(line):
            self.bus.clock.advance(self.costs.l1_hit)
            return
        if self.l2.lookup(line):
            self.bus.clock.advance(self.costs.l1_hit + self.costs.l2_hit)
        else:
            # Full miss: fetch from DRAM (bus charges the burst).
            self.bus.clock.advance(self.costs.l1_hit + self.costs.l2_hit)
            self.bus.fill_line(line, initiator=initiator)
            evicted = self.l2.insert(line, dirty=False)
            if evicted is not None and evicted[1]:
                self.bus.writeback_line(evicted[0], initiator=initiator)
        evicted = self.l1.insert(line, dirty=False)
        if evicted is not None:
            evicted_addr, was_dirty = evicted
            # L1 victim folds into L2 (dirty bit merges); if L2 must evict
            # a dirty line to make room, that one goes to DRAM.
            displaced = self.l2.insert(evicted_addr, dirty=was_dirty)
            if displaced is not None and displaced[1]:
                self.bus.writeback_line(displaced[0], initiator=initiator)

    # ------------------------------------------------------------------
    # Public access API
    # ------------------------------------------------------------------
    def read(self, paddr: int, cacheable: bool, initiator: str = "cpu") -> int:
        """Read one word through the hierarchy."""
        if not cacheable:
            self._uncached_reads += 1
            return self.bus.read(paddr, initiator=initiator)
        self._cached_reads += 1
        # Inline L1-hit fast path: identical accounting to
        # ``_ensure_resident`` (lookup-touch, batched hit counter, one
        # l1_hit charge) without the call chain.
        l1 = self.l1
        if l1._line_shift is not None:
            line = paddr & self._line_mask
            lines = l1._sets.get((line >> l1._line_shift) & l1._set_mask)
            if lines is not None and line in lines:
                lines.move_to_end(line)
                l1._hits += 1
                self.bus.clock.advance(self.costs.l1_hit)
                return self.bus.memory.read_word(paddr)
        self._ensure_resident(paddr, initiator)
        return self.bus.memory.read_word(paddr)

    def write(self, paddr: int, value: int, cacheable: bool, initiator: str = "cpu") -> None:
        """Write one word through the hierarchy.

        Cacheable writes update the backing store silently (timing-only
        cache) and mark the line dirty; the word-level transaction never
        appears on the bus.
        """
        if not cacheable:
            self._uncached_writes += 1
            self.bus.write(paddr, value, initiator=initiator)
            return
        self._cached_writes += 1
        l1 = self.l1
        if l1._line_shift is not None:
            line = paddr & self._line_mask
            lines = l1._sets.get((line >> l1._line_shift) & l1._set_mask)
            if lines is not None and line in lines:
                lines.move_to_end(line)
                lines[line] = True
                l1._hits += 1
                self.bus.clock.advance(self.costs.l1_hit)
                self.bus.memory.write_word(paddr, value)
                return
        self._ensure_resident(paddr, initiator)
        self.l1.mark_dirty(paddr & self._line_mask)
        self.bus.memory.write_word(paddr, value)

    def touch_block(self, paddr: int, nwords: int, is_write: bool) -> None:
        """Run a sequential ``nwords`` access stream through the caches.

        Reads fill lines normally.  Writes use streaming-store semantics
        (write-allocate-no-fetch, as ``DC ZVA`` / non-temporal stores
        give bulk memset/memcpy on real ARM cores): whole lines are
        installed dirty without fetching their old contents, so a page
        clear costs cache-write bandwidth rather than a fill per line.
        Word values are not tracked — this is the cacheable counterpart
        of :meth:`~repro.hw.bus.MemoryBus.write_block`.

        The write path runs as one batched loop over both cache levels:
        per-line latencies and hit/miss/eviction counters accumulate in
        locals and fold into the clock / StatSets once per burst.  Sums
        and event order (writebacks, DRAM row transitions) are identical
        to the per-line reference path ``_install_dirty``, which remains
        the fallback for non-power-of-two geometries.
        """
        if nwords <= 0:
            return
        line_bytes = self.l1.line_bytes
        first = paddr & self._line_mask
        last = (paddr + (nwords - 1) * WORD_BYTES) & self._line_mask
        l1 = self.l1
        l2 = self.l2
        if not is_write:
            if l1._line_shift is None:
                for line in range(first, last + 1, line_bytes):
                    self._ensure_resident(line, initiator="cpu")
                return
            # Inline the L1-hit case; misses take the full path (which
            # charges its own latency and emits its own bus traffic).
            l1_sets = l1._sets
            l1_shift = l1._line_shift
            l1_mask = l1._set_mask
            hits = 0
            hit_cycles = 0
            l1_hit = self.costs.l1_hit
            ensure = self._ensure_resident
            for line in range(first, last + 1, line_bytes):
                lines = l1_sets.get((line >> l1_shift) & l1_mask)
                if lines is not None and line in lines:
                    lines.move_to_end(line)
                    hits += 1
                    hit_cycles += l1_hit
                else:
                    ensure(line, initiator="cpu")
            if hits:
                l1._hits += hits
                self.bus.clock.advance(hit_cycles)
            return
        if l1._line_shift is None or l2._line_shift is None:
            for line in range(first, last + 1, line_bytes):
                self._install_dirty(line)
            return
        # ---- batched streaming-store path --------------------------------
        l1_sets = l1._sets
        l1_shift = l1._line_shift
        l1_mask = l1._set_mask
        l1_ways = l1.ways
        l2_sets = l2._sets
        l2_shift = l2._line_shift
        l2_mask = l2._set_mask
        l2_ways = l2.ways
        writeback = self.bus.writeback_line
        l1_hits = 0
        l1_misses = 0
        l1_evictions = 0
        l1_dirty_evictions = 0
        l2_evictions = 0
        l2_dirty_evictions = 0
        nlines = 0
        for line in range(first, last + 1, line_bytes):
            nlines += 1
            lines = l1_sets.get((line >> l1_shift) & l1_mask)
            if lines is None:
                lines = l1_sets[(line >> l1_shift) & l1_mask] = OrderedDict()
            elif line in lines:
                lines.move_to_end(line)
                lines[line] = True
                l1_hits += 1
                continue
            l1_misses += 1
            if len(lines) >= l1_ways:
                ev_addr, ev_dirty = lines.popitem(last=False)
                l1_evictions += 1
                if ev_dirty:
                    l1_dirty_evictions += 1
                # L1 victim folds into L2 (dirty bit merges).
                l2_lines = l2_sets.get((ev_addr >> l2_shift) & l2_mask)
                if l2_lines is None:
                    l2_lines = l2_sets[(ev_addr >> l2_shift) & l2_mask] = OrderedDict()
                if ev_addr in l2_lines:
                    l2_lines[ev_addr] = l2_lines[ev_addr] or ev_dirty
                    l2_lines.move_to_end(ev_addr)
                else:
                    if len(l2_lines) >= l2_ways:
                        d_addr, d_dirty = l2_lines.popitem(last=False)
                        l2_evictions += 1
                        if d_dirty:
                            l2_dirty_evictions += 1
                            writeback(d_addr, initiator="cpu")
                    l2_lines[ev_addr] = ev_dirty
            lines[line] = True
        l1._hits += l1_hits
        l1._misses += l1_misses
        if l1_evictions:
            l1.stats.add("evictions", l1_evictions)
        if l1_dirty_evictions:
            l1.stats.add("dirty_evictions", l1_dirty_evictions)
        if l2_evictions:
            l2.stats.add("evictions", l2_evictions)
        if l2_dirty_evictions:
            l2.stats.add("dirty_evictions", l2_dirty_evictions)
        self.bus.clock.advance(self.costs.l1_hit * nlines)

    def _install_dirty(self, line: int) -> None:
        """Install a whole line dirty without fetching it (streaming)."""
        self.bus.clock.advance(self.costs.l1_hit)
        if self.l1.lookup(line):
            self.l1.mark_dirty(line)
            return
        evicted = self.l1.insert(line, dirty=True)
        if evicted is not None:
            evicted_addr, was_dirty = evicted
            displaced = self.l2.insert(evicted_addr, dirty=was_dirty)
            if displaced is not None and displaced[1]:
                self.bus.writeback_line(displaced[0], initiator="cpu")

    # ------------------------------------------------------------------
    # Cache maintenance
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "l1": self.l1.state_dict(),
            "l2": self.l2.state_dict(),
            "stats": self.stats.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self.l1.load_state(state["l1"])
        self.l2.load_state(state["l2"])
        self.stats.load_state(state["stats"])
        self._cached_reads = 0
        self._cached_writes = 0
        self._uncached_reads = 0
        self._uncached_writes = 0

    def clean_invalidate_page(self, page_paddr: int) -> int:
        """Clean+invalidate every line of the 4 KB page at ``page_paddr``.

        Used by Hypersec when it turns a page non-cacheable: resident
        dirty lines are written back, clean lines dropped.  Returns the
        number of lines written back.
        """
        base = align_down(page_paddr, PAGE_BYTES)
        written_back = 0
        for offset in range(0, PAGE_BYTES, self.l1.line_bytes):
            line = base + offset
            l1_dirty = self.l1.remove(line)
            l2_dirty = self.l2.remove(line)
            dirty = bool(l1_dirty) or bool(l2_dirty)
            if dirty:
                self.bus.writeback_line(line)
                written_back += 1
        self.stats.add("page_maintenance_ops")
        return written_back
