"""The simulation clock.

A single global cycle counter shared by every component on a platform.
Components *charge* cycles for the events they model; workload drivers
read the clock before and after an operation to obtain its latency.

The clock also supports nested *charge scopes* used by the benchmark
layer to attribute cycles to a specific operation while the simulation
is running (e.g. "cycles spent inside fork()").
"""

from __future__ import annotations


class Clock:
    """Monotonic cycle counter with frequency-aware conversions."""

    def __init__(self, freq_hz: float = 1.15e9):
        if freq_hz <= 0:
            raise ValueError(f"clock frequency must be positive, got {freq_hz}")
        self.freq_hz = freq_hz
        self._cycles = 0

    @property
    def now(self) -> int:
        """Current cycle count."""
        return self._cycles

    def advance(self, cycles: int) -> None:
        """Charge ``cycles`` to the global counter.

        Negative charges are rejected: time does not run backwards.
        """
        if cycles < 0:
            raise ValueError(f"cannot advance clock by negative cycles: {cycles}")
        self._cycles += cycles

    def elapsed_since(self, start: int) -> int:
        """Cycles elapsed since a previously captured ``now`` value."""
        return self._cycles - start

    def state_dict(self) -> dict:
        return {"freq_hz": self.freq_hz, "cycles": self._cycles}

    def load_state(self, state: dict) -> None:
        self.freq_hz = float(state["freq_hz"])
        self._cycles = int(state["cycles"])

    def to_us(self, cycles: int) -> float:
        """Convert a cycle count to microseconds at this clock's frequency."""
        return cycles / self.freq_hz * 1e6

    def to_seconds(self, cycles: int) -> float:
        """Convert a cycle count to seconds at this clock's frequency."""
        return cycles / self.freq_hz

    def __repr__(self) -> str:
        return f"Clock({self._cycles} cycles @ {self.freq_hz / 1e9:.2f} GHz)"
