"""The simulation clock.

A single global cycle counter shared by every component on a platform.
Components *charge* cycles for the events they model; workload drivers
read the clock before and after an operation to obtain its latency.

The clock also supports nested *charge scopes* used by the benchmark
layer to attribute cycles to a specific operation while the simulation
is running (e.g. "cycles spent inside fork()").
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator


class Clock:
    """Monotonic cycle counter with frequency-aware conversions."""

    def __init__(self, freq_hz: float = 1.15e9):
        if freq_hz <= 0:
            raise ValueError(f"clock frequency must be positive, got {freq_hz}")
        self.freq_hz = freq_hz
        self._cycles = 0
        #: Cycles accumulated per charge-scope label (observer-side
        #: bookkeeping — never part of machine state, so snapshots
        #: neither save nor restore it).
        self.attribution: Dict[str, int] = {}

    @property
    def now(self) -> int:
        """Current cycle count."""
        return self._cycles

    def advance(self, cycles: int) -> None:
        """Charge ``cycles`` to the global counter.

        Negative charges are rejected: time does not run backwards.
        """
        if cycles < 0:
            raise ValueError(f"cannot advance clock by negative cycles: {cycles}")
        self._cycles += cycles

    def elapsed_since(self, start: int) -> int:
        """Cycles elapsed since a previously captured ``now`` value."""
        return self._cycles - start

    @contextmanager
    def scope(self, label: str) -> Iterator[None]:
        """Attribute cycles charged inside the ``with`` block to ``label``.

        Zero-cost for the simulation itself: the block's charges advance
        the global counter exactly as they would outside the scope; the
        elapsed delta is added to :attr:`attribution` on exit.  Scopes
        may nest, in which case the inner delta is (deliberately)
        counted under both labels — callers picking disjoint labels get
        disjoint buckets.
        """
        start = self._cycles
        try:
            yield
        finally:
            delta = self._cycles - start
            if delta:
                self.attribution[label] = self.attribution.get(label, 0) + delta

    def clear_attribution(self) -> None:
        """Drop all charge-scope buckets (e.g. between benchmark phases)."""
        self.attribution.clear()

    def state_dict(self) -> dict:
        return {"freq_hz": self.freq_hz, "cycles": self._cycles}

    def load_state(self, state: dict) -> None:
        self.freq_hz = float(state["freq_hz"])
        self._cycles = int(state["cycles"])

    def to_us(self, cycles: int) -> float:
        """Convert a cycle count to microseconds at this clock's frequency."""
        return cycles / self.freq_hz * 1e6

    def to_seconds(self, cycles: int) -> float:
        """Convert a cycle count to seconds at this clock's frequency."""
        return cycles / self.freq_hz

    def __repr__(self) -> str:
        return f"Clock({self._cycles} cycles @ {self.freq_hz / 1e9:.2f} GHz)"
