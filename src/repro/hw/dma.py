"""DMA engine and IOMMU models (paper Discussion section).

"Hypernel must thwart the adversary's attempt to tamper with the memory
region of the secure space through DMA. ... such a malicious attempt can
be easily circumvented by leveraging IOMMU.  Furthermore, since our MBM
can watch the bus traffic between the CPU and main memory, we expect
that Hypernel can detect such an attack."

Both halves are implemented as extensions:

* :class:`DmaEngine` — a bus-mastering peripheral a compromised driver
  can program to write arbitrary physical addresses (initiator
  ``"dma"``, so the MBM's snooper can tell it from CPU traffic).
* :class:`Iommu` — a System-MMU in front of the device: only
  explicitly granted windows are writable; everything else faults.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.config import WORD_BYTES
from repro.errors import SecurityViolation
from repro.hw.bus import MemoryBus
from repro.utils.stats import StatSet


class Iommu:
    """A System-MMU enforcing per-device access windows."""

    def __init__(self):
        self._windows: List[Tuple[int, int]] = []
        self.stats = StatSet("iommu")

    def grant(self, base: int, size: int) -> None:
        """Open a DMA window ``[base, base+size)``."""
        self._windows.append((base, base + size))
        self.stats.add("windows")

    def revoke_all(self) -> None:
        self._windows.clear()

    def check_write(self, paddr: int, nbytes: int) -> None:
        """Raise :class:`SecurityViolation` unless fully inside a window."""
        end = paddr + nbytes
        for base, limit in self._windows:
            if base <= paddr and end <= limit:
                self.stats.add("allowed")
                return
        self.stats.add("blocked")
        raise SecurityViolation(
            f"IOMMU blocked DMA write to {paddr:#x}", policy="iommu"
        )


class DmaEngine:
    """A bus-mastering device (e.g. a compromised NIC/GPU driver target).

    With an IOMMU attached, transfers are checked before reaching the
    bus; without one, they land directly in physical memory — which is
    the attack surface the paper's Discussion section describes.
    """

    def __init__(self, bus: MemoryBus, iommu: Iommu | None = None):
        self.bus = bus
        self.iommu = iommu
        self.stats = StatSet("dma_engine")

    def write_word(self, paddr: int, value: int) -> None:
        """One device-initiated word write."""
        if self.iommu is not None:
            self.iommu.check_write(paddr, WORD_BYTES)
        self.stats.add("writes")
        self.bus.write(paddr, value, initiator="dma")

    def write_block(self, paddr: int, nwords: int) -> None:
        """A device-initiated burst."""
        if self.iommu is not None:
            self.iommu.check_write(paddr, nwords * WORD_BYTES)
        self.stats.add("block_writes")
        self.bus.write_block(paddr, nwords, initiator="dma")
