"""DRAM timing model with per-bank open-row tracking.

A deliberately small model: the physical address is decomposed into
(bank, row); an access to the currently open row of its bank costs the
row-hit latency, anything else costs the row-miss latency and opens the
row.  This is enough to make spatially local traffic (page-table walks
within one table, MBM bitmap bursts) cheaper than scattered traffic,
which is the only DRAM property the reproduced experiments depend on.
"""

from __future__ import annotations

from typing import Dict

from repro.config import CostModel
from repro.utils.stats import StatSet


class DramModel:
    """Open-row DRAM latency model."""

    def __init__(self, costs: CostModel, banks: int = 8, row_bytes: int = 8192):
        if banks <= 0 or row_bytes <= 0:
            raise ValueError("banks and row_bytes must be positive")
        self._costs = costs
        self._banks = banks
        self._row_bytes = row_bytes
        self._open_rows: Dict[int, int] = {}
        self._row_hits = 0
        self._row_misses = 0
        self._burst_words = 0
        self.stats = StatSet("dram")
        self.stats.flush_hook = self._flush_pending

    def _flush_pending(self) -> None:
        if self._row_hits:
            hits, self._row_hits = self._row_hits, 0
            self.stats.add("row_hits", hits)
        if self._row_misses:
            misses, self._row_misses = self._row_misses, 0
            self.stats.add("row_misses", misses)
        if self._burst_words:
            words, self._burst_words = self._burst_words, 0
            self.stats.add("burst_words", words)

    def _decompose(self, paddr: int) -> tuple[int, int]:
        row = paddr // self._row_bytes
        bank = row % self._banks
        return bank, row

    def access_cycles(self, paddr: int) -> int:
        """Latency in cycles for one access at ``paddr``; updates row state."""
        row = paddr // self._row_bytes
        bank = row % self._banks
        open_rows = self._open_rows
        if open_rows.get(bank) == row:
            self._row_hits += 1
            return self._costs.dram_row_hit
        open_rows[bank] = row
        self._row_misses += 1
        return self._costs.dram_row_miss

    def burst_cycles(self, paddr: int, nwords: int) -> int:
        """Latency for a burst of ``nwords`` sequential words.

        The first beat pays the full access latency; subsequent beats in
        the same row stream at one cycle per word.
        """
        if nwords <= 0:
            return 0
        total = self.access_cycles(paddr)
        total += nwords - 1
        self._burst_words += nwords
        return total

    def reset(self) -> None:
        """Close all rows (e.g. across benchmark iterations)."""
        self._open_rows.clear()

    def state_dict(self) -> dict:
        return {
            "open_rows": [[bank, row] for bank, row in self._open_rows.items()],
            "stats": self.stats.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self._open_rows = {int(b): int(r) for b, r in state["open_rows"]}
        self.stats.load_state(state["stats"])
        self._row_hits = 0
        self._row_misses = 0
        self._burst_words = 0
