"""GIC-like interrupt controller.

The simulation is synchronous, so an unmasked interrupt is dispatched
immediately when raised: the registered handler runs inline (charging
whatever cycles it models).  If a line is masked, or a handler for the
same line is already in service, the interrupt is *pended* and delivered
when the line is unmasked / the handler returns — matching level-style
behaviour closely enough for the MBM's notification path.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import ConfigurationError
from repro.utils.stats import StatSet

Handler = Callable[[int], None]


class InterruptController:
    """Registers IRQ lines and dispatches them to handlers."""

    def __init__(self):
        self._handlers: Dict[int, Handler] = {}
        self._masked: Dict[int, bool] = {}
        self._pending: Dict[int, int] = {}
        self._in_service: Dict[int, bool] = {}
        self.stats = StatSet("gic")

    def register(self, irq: int, handler: Handler) -> None:
        """Install ``handler`` for IRQ line ``irq`` (one handler per line)."""
        if irq in self._handlers:
            raise ConfigurationError(f"IRQ {irq} already has a handler")
        self._handlers[irq] = handler
        self._masked[irq] = False
        self._pending[irq] = 0
        self._in_service[irq] = False

    def mask(self, irq: int) -> None:
        """Mask a line; raised interrupts accumulate as pending."""
        self._require(irq)
        self._masked[irq] = True

    def unmask(self, irq: int) -> None:
        """Unmask a line, delivering anything that pended while masked."""
        self._require(irq)
        self._masked[irq] = False
        self._drain(irq)

    def raise_irq(self, irq: int) -> None:
        """Assert IRQ line ``irq``."""
        self._require(irq)
        self.stats.add("raised")
        self._pending[irq] += 1
        self._drain(irq)

    def pending(self, irq: int) -> int:
        """Number of undelivered assertions on the line."""
        self._require(irq)
        return self._pending[irq]

    def state_dict(self) -> dict:
        """Mask/pending state per registered line (handlers are wiring,
        recreated when the owning component reinstalls itself)."""
        return {
            "lines": [
                [irq, bool(self._masked[irq]), int(self._pending[irq])]
                for irq in self._handlers
            ],
            "stats": self.stats.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        for irq, masked, pending in state["lines"]:
            self._require(int(irq))
            self._masked[int(irq)] = bool(masked)
            self._pending[int(irq)] = int(pending)
            self._in_service[int(irq)] = False
        self.stats.load_state(state["stats"])

    # ------------------------------------------------------------------
    def _require(self, irq: int) -> None:
        if irq not in self._handlers:
            raise ConfigurationError(f"IRQ {irq} has no registered handler")

    def _drain(self, irq: int) -> None:
        if self._masked[irq] or self._in_service[irq]:
            return
        handler = self._handlers[irq]
        while self._pending[irq] > 0 and not self._masked[irq]:
            self._pending[irq] -= 1
            self._in_service[irq] = True
            try:
                self.stats.add("dispatched")
                handler(irq)
            finally:
                self._in_service[irq] = False
