"""Sparse physical-memory model.

Memory is stored as a dictionary of 64-bit words keyed by word-aligned
physical address.  Unwritten words read as zero, matching DRAM that the
boot firmware scrubbed.  The model is purely functional storage: *timing*
lives in :class:`~repro.hw.dram.DramModel` and *visibility* (who gets to
observe an access) lives in :class:`~repro.hw.bus.MemoryBus`.

Multiple address ranges can be installed (e.g. motherboard DRAM plus the
LogicTile daughterboard SDRAM of the paper's section 6 setup).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.config import WORD_BYTES
from repro.errors import MemoryRangeError
from repro.utils.bitops import require_aligned

_WORD_MASK = (1 << 64) - 1


class PhysicalMemory:
    """Word-addressable sparse backing store with range checking."""

    def __init__(self):
        self._words: Dict[int, int] = {}
        self._ranges: List[Tuple[int, int]] = []  # (base, limit) pairs

    # ------------------------------------------------------------------
    # Range management
    # ------------------------------------------------------------------
    def add_range(self, base: int, size: int) -> None:
        """Install a physical address range ``[base, base + size)``.

        Ranges may not overlap an existing one.
        """
        require_aligned(base, WORD_BYTES, "range base")
        require_aligned(size, WORD_BYTES, "range size")
        limit = base + size
        for existing_base, existing_limit in self._ranges:
            if base < existing_limit and existing_base < limit:
                raise MemoryRangeError(
                    f"range {base:#x}+{size:#x} overlaps existing "
                    f"[{existing_base:#x}, {existing_limit:#x})"
                )
        self._ranges.append((base, limit))
        self._ranges.sort()

    def contains(self, paddr: int) -> bool:
        """True if ``paddr`` falls inside an installed range."""
        return any(base <= paddr < limit for base, limit in self._ranges)

    def check(self, paddr: int) -> None:
        """Raise :class:`MemoryRangeError` unless ``paddr`` is installed."""
        if not self.contains(paddr):
            raise MemoryRangeError(f"physical address {paddr:#x} is not backed")

    @property
    def ranges(self) -> List[Tuple[int, int]]:
        """Installed ``(base, limit)`` pairs, sorted by base."""
        return list(self._ranges)

    # ------------------------------------------------------------------
    # Word access
    # ------------------------------------------------------------------
    def read_word(self, paddr: int) -> int:
        """Read the 64-bit word at word-aligned ``paddr``."""
        require_aligned(paddr, WORD_BYTES)
        self.check(paddr)
        return self._words.get(paddr, 0)

    def write_word(self, paddr: int, value: int) -> None:
        """Write the 64-bit word at word-aligned ``paddr``."""
        require_aligned(paddr, WORD_BYTES)
        self.check(paddr)
        value &= _WORD_MASK
        if value:
            self._words[paddr] = value
        else:
            # Keep the store sparse: zero is the reset value.
            self._words.pop(paddr, None)

    # ------------------------------------------------------------------
    # Bulk helpers (functional, used by loaders and tests)
    # ------------------------------------------------------------------
    def fill(self, paddr: int, nwords: int, value: int = 0) -> None:
        """Set ``nwords`` consecutive words starting at ``paddr``."""
        for i in range(nwords):
            self.write_word(paddr + i * WORD_BYTES, value)

    def read_words(self, paddr: int, nwords: int) -> List[int]:
        """Read ``nwords`` consecutive words starting at ``paddr``."""
        return [self.read_word(paddr + i * WORD_BYTES) for i in range(nwords)]

    def copy_words(self, src: int, dst: int, nwords: int) -> None:
        """Copy ``nwords`` words from ``src`` to ``dst`` (non-overlapping)."""
        for i in range(nwords):
            self.write_word(dst + i * WORD_BYTES, self.read_word(src + i * WORD_BYTES))

    def population(self) -> int:
        """Number of non-zero words currently stored (for tests)."""
        return len(self._words)
