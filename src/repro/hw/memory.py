"""Sparse physical-memory model.

Memory is stored as lazily-allocated flat ``bytearray`` chunks hanging
off each installed address range.  Unwritten words read as zero,
matching DRAM that the boot firmware scrubbed.  The model is purely
functional storage: *timing* lives in :class:`~repro.hw.dram.DramModel`
and *visibility* (who gets to observe an access) lives in
:class:`~repro.hw.bus.MemoryBus`.

Multiple address ranges can be installed (e.g. motherboard DRAM plus the
LogicTile daughterboard SDRAM of the paper's section 6 setup).  Range
lookup is a bisect over the sorted bases with a one-entry "last range
hit" cache in front, so the common case — streams of accesses inside one
range — costs two integer compares.

The chunked backing keeps the sparse property of the original dict
store: a 2 GB DRAM range allocates nothing until written, a page that
was never written back to non-zero values costs no memory, and
``population()`` still reports the number of non-zero words.
"""

from __future__ import annotations

import struct
from bisect import bisect_right, insort
from typing import Dict, List, Tuple

from repro.config import WORD_BYTES
from repro.errors import MemoryRangeError
from repro.utils.bitops import require_aligned

_WORD_MASK = (1 << 64) - 1

#: Bytes per backing chunk.  Must be a power of two and a multiple of
#: WORD_BYTES; 64 KB keeps per-chunk allocation cheap while bounding the
#: overhead of sparsely touched ranges.
_CHUNK_BYTES = 1 << 16
_CHUNK_SHIFT = 16
_CHUNK_MASK = _CHUNK_BYTES - 1

_ZERO_CHUNK = bytes(_CHUNK_BYTES)


class PhysicalMemory:
    """Word-addressable sparse backing store with range checking."""

    __slots__ = (
        "_ranges",
        "_bases",
        "_chunk_maps",
        "_last_base",
        "_last_limit",
        "_last_chunks",
    )

    def __init__(self):
        self._ranges: List[Tuple[int, int]] = []  # (base, limit), sorted
        self._bases: List[int] = []               # sorted bases (parallel)
        self._chunk_maps: List[Dict[int, bytearray]] = []  # parallel
        # One-entry "last range hit" cache.  The sentinel (1, 0) matches
        # no address because base > limit.
        self._last_base = 1
        self._last_limit = 0
        self._last_chunks: Dict[int, bytearray] = {}

    # ------------------------------------------------------------------
    # Range management
    # ------------------------------------------------------------------
    def add_range(self, base: int, size: int) -> None:
        """Install a physical address range ``[base, base + size)``.

        Ranges may not overlap an existing one.
        """
        require_aligned(base, WORD_BYTES, "range base")
        require_aligned(size, WORD_BYTES, "range size")
        limit = base + size
        for existing_base, existing_limit in self._ranges:
            if base < existing_limit and existing_base < limit:
                raise MemoryRangeError(
                    f"range {base:#x}+{size:#x} overlaps existing "
                    f"[{existing_base:#x}, {existing_limit:#x})"
                )
        index = bisect_right(self._bases, base)
        self._bases.insert(index, base)
        self._ranges.insert(index, (base, limit))
        self._chunk_maps.insert(index, {})

    def _locate(self, paddr: int) -> Dict[int, bytearray]:
        """Resolve ``paddr`` to its range's chunk map, updating the
        last-range cache; raises :class:`MemoryRangeError` when unbacked."""
        index = bisect_right(self._bases, paddr) - 1
        if index >= 0:
            base, limit = self._ranges[index]
            if paddr < limit:
                self._last_base = base
                self._last_limit = limit
                self._last_chunks = self._chunk_maps[index]
                return self._last_chunks
        raise MemoryRangeError(f"physical address {paddr:#x} is not backed")

    def contains(self, paddr: int) -> bool:
        """True if ``paddr`` falls inside an installed range."""
        if self._last_base <= paddr < self._last_limit:
            return True
        index = bisect_right(self._bases, paddr) - 1
        return index >= 0 and paddr < self._ranges[index][1]

    def check(self, paddr: int) -> None:
        """Raise :class:`MemoryRangeError` unless ``paddr`` is installed."""
        if not self.contains(paddr):
            raise MemoryRangeError(f"physical address {paddr:#x} is not backed")

    @property
    def ranges(self) -> List[Tuple[int, int]]:
        """Installed ``(base, limit)`` pairs, sorted by base."""
        return list(self._ranges)

    # ------------------------------------------------------------------
    # Word access
    # ------------------------------------------------------------------
    def read_word(self, paddr: int) -> int:
        """Read the 64-bit word at word-aligned ``paddr``."""
        if paddr & 7:
            require_aligned(paddr, WORD_BYTES)
        if self._last_base <= paddr < self._last_limit:
            chunks = self._last_chunks
        else:
            chunks = self._locate(paddr)
        offset = paddr - self._last_base
        chunk = chunks.get(offset >> _CHUNK_SHIFT)
        if chunk is None:
            return 0
        low = offset & _CHUNK_MASK
        return int.from_bytes(chunk[low:low + 8], "little")

    def write_word(self, paddr: int, value: int) -> None:
        """Write the 64-bit word at word-aligned ``paddr``."""
        if paddr & 7:
            require_aligned(paddr, WORD_BYTES)
        if self._last_base <= paddr < self._last_limit:
            chunks = self._last_chunks
        else:
            chunks = self._locate(paddr)
        offset = paddr - self._last_base
        key = offset >> _CHUNK_SHIFT
        chunk = chunks.get(key)
        value &= _WORD_MASK
        if chunk is None:
            if not value:
                return  # stays sparse: zero is the reset value
            chunk = chunks[key] = bytearray(_CHUNK_BYTES)
        low = offset & _CHUNK_MASK
        chunk[low:low + 8] = value.to_bytes(8, "little")

    # ------------------------------------------------------------------
    # Bulk helpers (functional, used by loaders and tests)
    # ------------------------------------------------------------------
    def fill(self, paddr: int, nwords: int, value: int = 0) -> None:
        """Set ``nwords`` consecutive words starting at ``paddr``."""
        if nwords <= 0:
            return
        require_aligned(paddr, WORD_BYTES)
        chunks = (
            self._last_chunks
            if self._last_base <= paddr < self._last_limit
            else self._locate(paddr)
        )
        end = paddr + nwords * WORD_BYTES
        span_end = min(end, self._last_limit)
        value &= _WORD_MASK
        self._fill_span(chunks, paddr - self._last_base,
                        (span_end - paddr) // WORD_BYTES, value)
        if end > span_end:
            # The run crosses out of this range: fall back to per-word
            # writes, which locate (or reject) each remaining address.
            for addr in range(span_end, end, WORD_BYTES):
                self.write_word(addr, value)

    def _fill_span(self, chunks: Dict[int, bytearray], offset: int,
                   nwords: int, value: int) -> None:
        """Fill a run that lies entirely within one range."""
        remaining = nwords * WORD_BYTES
        while remaining > 0:
            key = offset >> _CHUNK_SHIFT
            low = offset & _CHUNK_MASK
            take = min(remaining, _CHUNK_BYTES - low)
            chunk = chunks.get(key)
            if value:
                if chunk is None:
                    chunk = chunks[key] = bytearray(_CHUNK_BYTES)
                chunk[low:low + take] = value.to_bytes(8, "little") * (take // 8)
            elif chunk is not None:
                chunk[low:low + take] = _ZERO_CHUNK[:take]
            offset += take
            remaining -= take

    def read_words(self, paddr: int, nwords: int) -> List[int]:
        """Read ``nwords`` consecutive words starting at ``paddr``."""
        if nwords <= 0:
            return []
        require_aligned(paddr, WORD_BYTES)
        chunks = (
            self._last_chunks
            if self._last_base <= paddr < self._last_limit
            else self._locate(paddr)
        )
        end = paddr + nwords * WORD_BYTES
        if end <= self._last_limit:
            # Fast path: the run lies in one range; if it also lies in one
            # chunk, unpack straight from the backing bytearray (no copy).
            offset = paddr - self._last_base
            low = offset & _CHUNK_MASK
            if low + nwords * WORD_BYTES <= _CHUNK_BYTES:
                chunk = chunks.get(offset >> _CHUNK_SHIFT)
                if chunk is None:
                    return [0] * nwords
                return list(struct.unpack_from(f"<{nwords}Q", chunk, low))
        span_end = min(end, self._last_limit)
        span_words = (span_end - paddr) // WORD_BYTES
        data = self._read_span(chunks, paddr - self._last_base, span_words)
        values = list(struct.unpack(f"<{span_words}Q", data))
        if end > span_end:
            values.extend(
                self.read_word(addr) for addr in range(span_end, end, WORD_BYTES)
            )
        return values

    def _read_span(self, chunks: Dict[int, bytearray], offset: int,
                   nwords: int) -> bytes:
        """Gather the bytes of a run that lies entirely within one range."""
        pieces = []
        remaining = nwords * WORD_BYTES
        while remaining > 0:
            key = offset >> _CHUNK_SHIFT
            low = offset & _CHUNK_MASK
            take = min(remaining, _CHUNK_BYTES - low)
            chunk = chunks.get(key)
            pieces.append(
                _ZERO_CHUNK[:take] if chunk is None else bytes(chunk[low:low + take])
            )
            offset += take
            remaining -= take
        return b"".join(pieces)

    def copy_words(self, src: int, dst: int, nwords: int) -> None:
        """Copy ``nwords`` words from ``src`` to ``dst`` (non-overlapping)."""
        if nwords <= 0:
            return
        require_aligned(src, WORD_BYTES)
        require_aligned(dst, WORD_BYTES)
        nbytes = nwords * WORD_BYTES
        src_chunks = (
            self._last_chunks
            if self._last_base <= src < self._last_limit
            else self._locate(src)
        )
        src_in_range = src + nbytes <= self._last_limit
        src_offset = src - self._last_base
        if src_in_range:
            data = self._read_span(src_chunks, src_offset, nwords)
            dst_chunks = (
                self._last_chunks
                if self._last_base <= dst < self._last_limit
                else self._locate(dst)
            )
            if dst + nbytes <= self._last_limit:
                self._write_span(dst_chunks, dst - self._last_base, data)
                return
            # Destination spans ranges: unpack and store per word.
            for i, value in enumerate(struct.unpack(f"<{nwords}Q", data)):
                self.write_word(dst + i * WORD_BYTES, value)
            return
        for i in range(nwords):
            self.write_word(dst + i * WORD_BYTES,
                            self.read_word(src + i * WORD_BYTES))

    def _write_span(self, chunks: Dict[int, bytearray], offset: int,
                    data: bytes) -> None:
        """Scatter ``data`` into a run that lies entirely within one range."""
        cursor = 0
        remaining = len(data)
        while remaining > 0:
            key = offset >> _CHUNK_SHIFT
            low = offset & _CHUNK_MASK
            take = min(remaining, _CHUNK_BYTES - low)
            piece = data[cursor:cursor + take]
            chunk = chunks.get(key)
            if chunk is None:
                if piece.count(0) != take:
                    chunk = chunks[key] = bytearray(_CHUNK_BYTES)
                    chunk[low:low + take] = piece
            else:
                chunk[low:low + take] = piece
            offset += take
            cursor += take
            remaining -= take

    # ------------------------------------------------------------------
    # Checkpoint/restore
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable contents: per-range chunk maps, base64-encoded.

        All-zero chunks are dropped, so the encoding is independent of
        materialization history (a chunk that was written and later
        zeroed serializes the same as one never touched) — reads of
        absent chunks return zero either way.
        """
        import base64

        encoded = []
        for chunks in self._chunk_maps:
            encoded.append({
                str(key): base64.b64encode(bytes(chunk)).decode("ascii")
                for key, chunk in sorted(chunks.items())
                if any(chunk)
            })
        return {
            "ranges": [[base, limit] for base, limit in self._ranges],
            "chunks": encoded,
        }

    def load_state(self, state: dict) -> None:
        """Replace all contents.  Installed ranges must match the state's."""
        import base64

        recorded = [tuple(pair) for pair in state["ranges"]]
        if recorded != self._ranges:
            raise MemoryRangeError(
                f"snapshot ranges {recorded} do not match installed "
                f"ranges {self._ranges}"
            )
        self._chunk_maps = [
            {int(key): bytearray(base64.b64decode(blob))
             for key, blob in chunks.items()}
            for chunks in state["chunks"]
        ]
        # Drop the last-range cache: it may alias a replaced chunk map.
        self._last_base = 1
        self._last_limit = 0
        self._last_chunks = {}

    def population(self) -> int:
        """Number of non-zero words currently stored (for tests)."""
        total = 0
        for chunks in self._chunk_maps:
            for chunk in chunks.values():
                total += sum(1 for word in memoryview(chunk).cast("Q") if word)
        return total
