"""Platform assembly: wires clock, memory, DRAM, bus, caches and GIC.

:class:`Platform` is the hardware half of a simulated machine; the
architecture layer (:mod:`repro.arch`) adds the CPU on top, and the
system builders in :mod:`repro.core.hypernel` add kernel, hypervisor,
Hypersec and MBM as required by each experimental configuration.
"""

from __future__ import annotations

from repro.config import PlatformConfig, juno_r1
from repro.hw.bus import MemoryBus
from repro.hw.cache import Cache, CacheHierarchy
from repro.hw.clock import Clock
from repro.hw.dram import DramModel
from repro.hw.interrupt import InterruptController
from repro.hw.memory import PhysicalMemory

#: IRQ line number assigned to the MBM (platform-specific choice).
MBM_IRQ = 42


class Platform:
    """A fully wired hardware platform (no CPU yet)."""

    def __init__(self, config: PlatformConfig | None = None):
        self.config = config or juno_r1()
        self.clock = Clock(self.config.cpu_freq_hz)
        self.memory = PhysicalMemory()
        self.memory.add_range(self.config.dram_base, self.config.dram_bytes)
        self.dram = DramModel(
            self.config.costs,
            banks=self.config.dram_banks,
            row_bytes=self.config.dram_row_bytes,
        )
        self.bus = MemoryBus(self.memory, self.dram, self.clock)
        self.l1 = Cache("l1", self.config.l1_bytes, self.config.l1_ways)
        self.l2 = Cache("l2", self.config.l2_bytes, self.config.l2_ways)
        self.caches = CacheHierarchy(self.l1, self.l2, self.bus, self.config.costs)
        self.gic = InterruptController()

    @property
    def secure_base(self) -> int:
        """Base of the reserved secure physical region."""
        return self.config.secure_base

    @property
    def secure_limit(self) -> int:
        """First address past the secure region (== end of DRAM)."""
        return self.config.dram_limit

    def in_secure_region(self, paddr: int) -> bool:
        """True if ``paddr`` lies in the reserved secure region."""
        return self.secure_base <= paddr < self.secure_limit

    def __repr__(self) -> str:
        mb = self.config.dram_bytes // (1024 * 1024)
        return f"Platform({mb} MB DRAM @ {self.config.dram_base:#x})"
