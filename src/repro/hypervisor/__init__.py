"""The KVM-like baseline hypervisor (nested paging).

This is the comparison system of the paper's evaluation: a hypervisor
that isolates itself from the guest kernel with **stage-2 translation**,
paying the two-stage page-table-walk and world-switch costs that
Hypernel is designed to avoid.
"""

from repro.hypervisor.kvm import KvmHypervisor

__all__ = ["KvmHypervisor"]
