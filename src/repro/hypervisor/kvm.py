"""KVM/ARM-style hypervisor model.

The guest kernel runs unmodified (direct page-table writes, no TVM
traps); isolation comes from stage-2 translation:

* IPA space is identity-sized with guest DRAM; stage-2 mappings are
  installed **on demand**, each first touch costing a VM exit, fault
  handling and a stage-2 table update — like KVM's user_mem_abort path.
* Every guest TLB miss then walks two stages (see
  :mod:`repro.arch.mmu`), the paper's "two stages of address translation
  for every memory access".

Stage-2 tables live in host-reserved memory at the top of DRAM (the
same area Hypernel would use as its secure space, which keeps the
memory budget of the two configurations comparable).
"""

from __future__ import annotations

from repro.config import PAGE_BYTES
from repro.errors import AllocationError, SecurityViolation, Stage2Fault
from repro.hw.platform import Platform
from repro.arch.cpu import CPUCore
from repro.arch.exceptions import EL2Vector
from repro.arch.pagetable import index_for_level, make_page_desc, make_table_desc
from repro.arch.registers import HCR_VM
from repro.utils.stats import StatSet


class KvmHypervisor(EL2Vector):
    """The EL2 resident for the KVM-guest configuration."""

    def __init__(self, platform: Platform, cpu: CPUCore):
        self.platform = platform
        self.cpu = cpu
        self.costs = platform.config.costs
        self.stats = StatSet("kvm")
        # Host memory for stage-2 tables: the reserved top-of-DRAM area.
        self._table_cursor = platform.secure_base
        self._table_limit = platform.secure_limit
        self._tables: dict = {}
        self.s2_root = 0
        #: guest physical (== IPA) range the hypervisor will back
        self.guest_base = platform.config.dram_base
        self.guest_limit = platform.secure_base

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Install at EL2: vector, empty stage-2 root, HCR_EL2.VM."""
        self.s2_root = self._alloc_table()
        self.cpu.install_el2_vector(self)
        self.cpu.regs.write("VTTBR_EL2", self.s2_root)
        self.cpu.regs.set_bits("HCR_EL2", HCR_VM)

    def state_dict(self) -> dict:
        """Stage-2 bookkeeping; descriptor contents live in memory."""
        return {
            "table_cursor": self._table_cursor,
            "tables": [[list(key), table]
                       for key, table in self._tables.items()],
            "s2_root": self.s2_root,
            "stats": self.stats.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self._table_cursor = int(state["table_cursor"])
        self._tables = {tuple(int(i) for i in key): int(table)
                        for key, table in state["tables"]}
        self.s2_root = int(state["s2_root"])
        self.cpu.regs.write("VTTBR_EL2", self.s2_root)
        self.stats.load_state(state["stats"])

    def _alloc_table(self) -> int:
        if self._table_cursor >= self._table_limit:
            raise AllocationError("host out of stage-2 table memory")
        paddr = self._table_cursor
        self._table_cursor += PAGE_BYTES
        for offset in range(0, PAGE_BYTES, 8):
            self.platform.bus.poke(paddr + offset, 0)
        return paddr

    # ------------------------------------------------------------------
    # Stage-2 mapping
    # ------------------------------------------------------------------
    def map_ipa(self, ipa: int, writable: bool = True) -> None:
        """Install the stage-2 mapping for one IPA page (identity PA).

        Descriptor writes go through the CPU at EL2 (host kernel memory
        accesses: cacheable, fully charged).
        """
        ipa &= ~(PAGE_BYTES - 1)
        table = self.s2_root
        for level in (1, 2):
            key = (level, index_for_level(ipa, 1),
                   index_for_level(ipa, 2) if level == 2 else 0)
            desc_addr = table + index_for_level(ipa, level) * 8
            if key in self._tables:
                table = self._tables[key]
            else:
                new_table = self._alloc_table()
                self._tables[key] = new_table
                self._write_host(desc_addr, make_table_desc(new_table))
                table = new_table
        leaf = table + index_for_level(ipa, 3) * 8
        self._write_host(leaf, make_page_desc(ipa, writable=writable))
        self.stats.add("stage2_pages_mapped")

    def _write_host(self, paddr: int, value: int) -> None:
        # Host-side store: EL2 identity map, cacheable.
        saved = self.cpu.current_el
        self.cpu.current_el = 2
        try:
            self.cpu.write(paddr, value)
        finally:
            self.cpu.current_el = saved

    # ------------------------------------------------------------------
    # EL2Vector interface
    # ------------------------------------------------------------------
    def handle_stage2_fault(self, cpu: CPUCore, fault: Stage2Fault) -> None:
        """user_mem_abort: back the faulting IPA and resume the guest."""
        ipa = fault.ipa & ~(PAGE_BYTES - 1)
        if not self.guest_base <= ipa < self.guest_limit:
            raise SecurityViolation(
                f"guest touched IPA {ipa:#x} outside its memory",
                policy="stage2",
            )
        cpu.compute(self.costs.stage2_fault_handling)
        self.map_ipa(ipa)
        cpu.mmu.invalidate_stage2()
        self.stats.add("stage2_faults")

    def handle_hvc(self, cpu: CPUCore, func: int, args) -> int:
        """PSCI-style guest hypercalls (none needed by the workloads)."""
        self.stats.add("hvc")
        return 0

    def handle_trapped_msr(self, cpu: CPUCore, register: str, value: int) -> None:
        """KVM does not set TVM; emulate transparently if it ever fires."""
        self.stats.add("trapped_msr")
        cpu.regs.write(register, value)

    # ------------------------------------------------------------------
    # Warm-up helper (steady-state measurement support)
    # ------------------------------------------------------------------
    def prepopulate(self, base: int, limit: int) -> None:
        """Eagerly back an IPA range (like a warmed-up guest)."""
        for ipa in range(base, limit, PAGE_BYTES):
            self.map_ipa(ipa)
        self.cpu.mmu.invalidate_stage2()
