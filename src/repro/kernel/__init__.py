"""A simulated monolithic (Linux 3.10-flavoured) kernel.

This is the workload substrate of the reproduction: real page tables in
simulated physical memory, a page allocator with the 2 MB-section /
4 KB-page linear-map choice of paper section 6.2, a slab allocator whose
``cred`` and ``dentry`` objects are the monitoring targets of Table 2,
processes with fork/exec/COW, a VFS with a dentry cache, signals, pipes
and sockets for the LMbench operations of Table 1.

Every architecturally visible action goes through the simulated CPU, so
the Native / KVM-guest / Hypernel differences emerge from mechanism
(page-table write routing, traps, nested walks) rather than constants.
"""

from repro.kernel.kernel import Kernel, KernelConfig
from repro.kernel.objects import CRED, DENTRY, FILE_OBJ, INODE, PIPE, TASK_STRUCT
from repro.kernel.pgtable_mgmt import (
    DirectPgTableWriter,
    HypercallPgTableWriter,
    PgTableWriter,
)

__all__ = [
    "CRED",
    "DENTRY",
    "DirectPgTableWriter",
    "FILE_OBJ",
    "HypercallPgTableWriter",
    "INODE",
    "Kernel",
    "KernelConfig",
    "PIPE",
    "PgTableWriter",
    "TASK_STRUCT",
]
