"""Execution-environment adapters.

The same kernel code runs bare-metal (Native, Hypernel) or as a KVM
guest.  A few machine events cost differently between those worlds; the
kernel reports them through this adapter and the system builders install
the right implementation.

Modelled KVM-guest costs (calibrated against Dall et al., "ARM
Virtualization: Performance and Architectural Implications", ISCA 2016,
which the paper cites as [9]):

* **page lifecycle** — KVM ages guest pages through the stage-2 access
  flag (kvm_age_gfn / mmu-notifier path): cleared flags make the next
  guest touch take a stage-2 permission-style fault into the
  hypervisor.  Workloads that churn mappings (fork/exec/exit, mmap)
  therefore pay a stream of extra world switches roughly proportional
  to the pages they manipulate.  We charge one access-flag fault per
  ``AF_FAULT_PERIOD`` page operations, deterministically.
* **context switch** — guest scheduling drags the hypervisor in for
  virtual-timer and vGIC state synchronisation; a small per-switch
  overhead.
* **IPI** — cross-core wakeups need SGI emulation: two world-switch
  round trips.  (The paper's Table 1/Figure 6 runs were pinned to one
  A57 core, so the Table 1 operations never take this path; the
  multi-core attack scenarios and examples can.)
"""

from __future__ import annotations

from repro.config import CostModel
from repro.arch.cpu import CPUCore
from repro.utils.stats import StatSet


class ExecutionEnvironment:
    """Bare-metal behaviour (Native and Hypernel): no hypervisor tax."""

    name = "native"

    def __init__(self, cpu: CPUCore):
        self.cpu = cpu
        self.costs: CostModel = cpu.costs
        self.stats = StatSet(f"env.{self.name}")

    def state_dict(self) -> dict:
        return {"name": self.name, "stats": self.stats.state_dict()}

    def load_state(self, state: dict) -> None:
        if state["name"] != self.name:
            raise ValueError(
                f"environment mismatch: snapshot is {state['name']!r}, "
                f"system runs {self.name!r}"
            )
        self.stats.load_state(state["stats"])

    def page_lifecycle(self, count: int = 1) -> None:
        """``count`` user-page mapping operations occurred."""
        self.stats.add("page_ops", count)

    def context_switch_overhead(self) -> None:
        """An address-space switch occurred."""
        self.stats.add("context_switches")

    def process_fork(self) -> None:
        """A process was forked."""
        self.stats.add("forks")

    def interprocessor_interrupt(self) -> None:
        """Cost of signalling and taking one IPI on another core."""
        self.stats.add("ipis")
        self.cpu.compute(self.costs.irq_entry + self.costs.irq_exit)

    def block_io(self, nbytes: int) -> None:
        """One storage request: DMA setup + completion interrupt."""
        self.stats.add("block_ios")
        self.stats.add("block_io_bytes", nbytes)
        self.cpu.compute(
            self.costs.io_request_base + self.costs.irq_entry + self.costs.irq_exit
        )

    def net_io(self, packets: int = 1) -> None:
        """One network send/receive batch (NIC doorbell + completion)."""
        self.stats.add("net_ios")
        self.cpu.compute(
            self.costs.io_request_base + self.costs.irq_entry + self.costs.irq_exit
        )


class KvmGuestEnvironment(ExecutionEnvironment):
    """Guest-mode behaviour: the hypervisor taxes machine events."""

    name = "kvm-guest"

    #: one stage-2 access-flag fault per this many page operations.
    AF_FAULT_PERIOD = 24

    def __init__(self, cpu: CPUCore):
        super().__init__(cpu)
        self._af_accumulator = 0

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["af_accumulator"] = self._af_accumulator
        return state

    def load_state(self, state: dict) -> None:
        super().load_state(state)
        self._af_accumulator = int(state["af_accumulator"])

    def page_lifecycle(self, count: int = 1) -> None:
        self.stats.add("page_ops", count)
        self._af_accumulator += count
        while self._af_accumulator >= self.AF_FAULT_PERIOD:
            self._af_accumulator -= self.AF_FAULT_PERIOD
            self.stats.add("af_faults")
            self.cpu.compute(
                self.costs.vm_exit
                + self.costs.kvm_af_fault_handling
                + self.costs.vm_enter
            )

    def context_switch_overhead(self) -> None:
        self.stats.add("context_switches")
        self.cpu.compute(self.costs.kvm_context_switch_overhead)

    def process_fork(self) -> None:
        """Guest fork drags the hypervisor in well beyond the per-page
        costs: the COW write-protection sweep ends in flush_tlb_mm, whose
        broadcast invalidate also drops every *combined* two-stage TLB
        entry of the VM, and the refill storm walks both stages; KVM's
        page-aging scans also concentrate around address-space
        duplication.  Charged as a calibrated per-fork aggregate
        (see DESIGN.md section 5)."""
        self.stats.add("forks")
        self.cpu.compute(self.costs.kvm_fork_overhead)

    def interprocessor_interrupt(self) -> None:
        self.stats.add("ipis")
        self.stats.add("vm_exits", 2)
        self.cpu.compute(
            2 * (self.costs.vm_exit + self.costs.vm_enter)
            + self.costs.irq_entry
            + self.costs.irq_exit
        )

    def block_io(self, nbytes: int) -> None:
        """virtio-blk: the doorbell kick exits to the host, and the
        completion is injected with another world-switch round trip."""
        super().block_io(nbytes)
        self.stats.add("vm_exits", 2)
        self.cpu.compute(2 * (self.costs.vm_exit + self.costs.vm_enter))

    def net_io(self, packets: int = 1) -> None:
        """virtio-net: one world-switch round trip per batch — under
        sustained load NAPI polling and TX-kick suppression coalesce the
        doorbell and completion sides."""
        super().net_io(packets)
        self.stats.add("vm_exits", 1)
        self.cpu.compute(self.costs.vm_exit + self.costs.vm_enter)
