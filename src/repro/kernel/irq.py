"""Kernel interrupt plumbing for the MBM.

Paper section 6.2: "we inserted a hypercall in the kernel interrupt
handler to allow Hypersec to handle this interrupt."  The MBM's IRQ is
taken by the kernel at EL1, whose stub immediately forwards into
Hypersec via HVC; Hypersec then drains the MBM ring buffer and routes
events to security applications.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.hypercalls import HVC_MBM_SERVICE
from repro.hw.platform import MBM_IRQ
from repro.utils.stats import StatSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel


class MbmIrqStub:
    """The ~200-SLoC kernel patch's interrupt-forwarding half."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.stats = StatSet("mbm_irq_stub")

    def install(self) -> None:
        """Register with the interrupt controller for the MBM line."""
        self.kernel.platform.gic.register(MBM_IRQ, self._handle)

    def _handle(self, irq: int) -> None:
        kernel = self.kernel
        self.stats.add("irqs")
        kernel.cpu.compute(kernel.costs.irq_entry)
        kernel.cpu.hvc(HVC_MBM_SERVICE)
        kernel.cpu.compute(kernel.costs.irq_exit)
