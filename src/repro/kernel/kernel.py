"""The kernel facade: boot, subsystem wiring, field-level memory access.

A :class:`Kernel` owns every kernel subsystem and the knobs that
distinguish the experimental environments:

* ``config.linear_map_mode`` — ``"section"`` (vanilla 2 MB mappings:
  Native and KVM-guest) or ``"page"`` (the Hypernel-patched 4 KB
  mappings of paper section 6.2);
* ``pgwriter`` — direct stores vs hypercalls for page-table updates;
* ``env`` — bare-metal vs KVM-guest machine-event costs.

All kernel object field accesses go through :meth:`write_field` /
:meth:`read_field`, i.e. through the simulated CPU, MMU and caches — so
they are visible to the MBM exactly when the paper says they should be
(monitored pages made non-cacheable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.config import PAGE_BYTES, WORD_BYTES
from repro.errors import ConfigurationError, PermissionFault, SecurityViolation
from repro.hw.platform import Platform
from repro.arch.cpu import CPUCore
from repro.arch.registers import SCTLR_M
from repro.core.hypercalls import HVC_DENIED, HVC_EMULATE_WRITE
from repro.kernel.env import ExecutionEnvironment
from repro.kernel.objects import ObjectLayout
from repro.kernel.pgtable_mgmt import DirectPgTableWriter, PgTableWriter
from repro.kernel.physmem import LinearMap, PageAllocator
from repro.kernel.pipes import PipeManager
from repro.kernel.process import ProcessManager
from repro.kernel.signals import SignalManager
from repro.kernel.slab import SlabRegistry
from repro.kernel.sockets import SocketManager
from repro.kernel.vfs import VFS
from repro.kernel.vmm import UserVmm
from repro.utils.bitops import align_up
from repro.utils.events import EventHook
from repro.utils.stats import StatSet


@dataclass
class OpCosts:
    """Base compute costs (cycles) for kernel work the simulator does
    not model access-by-access.

    Calibrated so the *Native* column of Table 1 lands near the paper's
    Native column on the default platform; the KVM and Hypernel columns
    are then emergent (see DESIGN.md section 5).
    """

    slab_alloc: int = 40
    slab_free: int = 30
    fault_entry: int = 1300
    path_component: int = 120
    stat_base: int = 1400
    open_base: int = 500
    close_base: int = 200
    rw_base: int = 400
    create_base: int = 900
    unlink_base: int = 700
    attr_base: int = 300
    sigaction_base: int = 400
    signal_deliver_base: int = 2100
    sigreturn_base: int = 500
    pipe_create_base: int = 2000
    pipe_rw_base: int = 2200
    socket_create_base: int = 4500
    socket_rw_base: int = 5200
    context_switch_base: int = 6000
    fork_base: int = 222000
    exec_base: int = 14000
    exit_base: int = 62000
    wait_base: int = 9000
    mmap_base: int = 8000
    munmap_base: int = 8000
    syscall_dispatch: int = 250


@dataclass
class KernelConfig:
    """Build-time kernel configuration."""

    #: ``"section"`` (vanilla) or ``"page"`` (Hypernel-patched, §6.2).
    linear_map_mode: str = "section"
    #: DRAM reserved at the bottom for the kernel image + boot tables.
    image_reserve_bytes: int = 24 * 1024 * 1024
    op_costs: OpCosts = field(default_factory=OpCosts)


class Kernel:
    """One booted kernel instance on one platform/CPU."""

    def __init__(
        self,
        platform: Platform,
        cpu: CPUCore,
        config: Optional[KernelConfig] = None,
        pgwriter: Optional[PgTableWriter] = None,
        env: Optional[ExecutionEnvironment] = None,
    ):
        self.platform = platform
        self.cpu = cpu
        self.costs = platform.config.costs
        self.config = config or KernelConfig()
        self.op_costs = self.config.op_costs
        self.linear_map = LinearMap(platform, self.config.linear_map_mode)
        self.allocator: Optional[PageAllocator] = None
        self.pgwriter: PgTableWriter = pgwriter or DirectPgTableWriter(
            cpu, self.linear_map
        )
        self.env: ExecutionEnvironment = env or ExecutionEnvironment(cpu)
        self.stats = StatSet("kernel")
        # Object lifecycle hooks: security monitors subscribe here
        # (models the in-kernel hooks of paper section 5.3).
        self.object_alloc = EventHook("object_alloc")
        self.object_free = EventHook("object_free")
        # Fired just before the kernel performs a *legitimate* update of
        # a monitored sensitive field (e.g. setuid), so integrity
        # monitors can whitelist the incoming MBM event.
        self.authorized_update = EventHook("authorized_update")
        self._booted = False
        # Subsystems are created at boot.
        self.slab: Optional[SlabRegistry] = None
        self.vmm: Optional[UserVmm] = None
        self.vfs: Optional[VFS] = None
        self.procs: Optional[ProcessManager] = None
        self.signals: Optional[SignalManager] = None
        self.pipes: Optional[PipeManager] = None
        self.sockets: Optional[SocketManager] = None
        self.sys = None  # SyscallLayer, created at boot

    # ------------------------------------------------------------------
    # Boot
    # ------------------------------------------------------------------
    def boot(self) -> None:
        """Bring the kernel up: linear map, MMU on, subsystems."""
        if self._booted:
            raise ConfigurationError("kernel already booted")
        config = self.platform.config
        image_base = config.dram_base
        image_limit = image_base + self.config.image_reserve_bytes
        # Boot translation tables are carved from the top of the image
        # reservation (enough for the page-mode map of all of DRAM).
        table_pool_base = image_base + 2 * 1024 * 1024
        root = self.linear_map.build(table_pool_base, image_limit)
        self.allocator = PageAllocator(
            align_up(image_limit, PAGE_BYTES), self.platform.secure_base
        )
        self.cpu.msr("TTBR1_EL1", root)
        self.cpu.msr("SCTLR_EL1", self.cpu.regs.read("SCTLR_EL1") | SCTLR_M)
        self.slab = SlabRegistry(self)
        self.vmm = UserVmm(self)
        self.vfs = VFS(self)
        self.procs = ProcessManager(self)
        self.signals = SignalManager(self)
        self.pipes = PipeManager(self)
        self.sockets = SocketManager(self)
        from repro.kernel.syscalls import SyscallLayer  # late: avoids cycle
        self.sys = SyscallLayer(self)
        self._booted = True
        self.stats.add("booted")

    @property
    def booted(self) -> bool:
        return self._booted

    # ------------------------------------------------------------------
    # Checkpoint/restore
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Full software state of a *booted* kernel.

        CPU/platform state is captured separately by the system-level
        snapshot; hook subscribers and the pgwriter are wiring, recreated
        by rebuilding the system skeleton.
        """
        if not self._booted:
            raise ConfigurationError("cannot snapshot an unbooted kernel")
        return {
            "booted": True,
            "linear_map": self.linear_map.state_dict(),
            "allocator": self.allocator.state_dict(),
            "env": self.env.state_dict(),
            "slab": self.slab.state_dict(),
            "vmm": self.vmm.state_dict(),
            "vfs": self.vfs.state_dict(),
            "procs": self.procs.state_dict(),
            "signals": self.signals.stats.state_dict(),
            "pipes": self.pipes.stats.state_dict(),
            "sockets": self.sockets.stats.state_dict(),
            "syscalls": self.sys.stats.state_dict(),
            "stats": self.stats.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        """Restore into an *unbooted* kernel skeleton.

        Subsystems are created without their boot-time construction
        (no linear-map build, no root-node allocation): the simulated
        memory image carrying their descriptors and objects is restored
        separately, before this runs.
        """
        if self._booted:
            raise ConfigurationError("cannot restore into a booted kernel")
        self.linear_map.load_state(state["linear_map"])
        allocator_state = state["allocator"]
        self.allocator = PageAllocator(
            int(allocator_state["base"]), int(allocator_state["limit"])
        )
        self.allocator.load_state(allocator_state)
        self.env.load_state(state["env"])
        self.slab = SlabRegistry(self)
        self.slab.load_state(state["slab"])
        self.vmm = UserVmm(self)
        self.vmm.load_state(state["vmm"])
        # VFS.__init__ allocates the root node with simulated writes;
        # bypass it — the restored memory image already holds the tree.
        self.vfs = VFS.__new__(VFS)
        self.vfs.kernel = self
        self.vfs.stats = StatSet("vfs")
        self.vfs.load_state(state["vfs"])
        self.procs = ProcessManager(self)
        self.procs.load_state(state["procs"])
        self.signals = SignalManager(self)
        self.signals.stats.load_state(state["signals"])
        self.pipes = PipeManager(self)
        self.pipes.stats.load_state(state["pipes"])
        self.sockets = SocketManager(self)
        self.sockets.stats.load_state(state["sockets"])
        from repro.kernel.syscalls import SyscallLayer  # late: avoids cycle
        self.sys = SyscallLayer(self)
        self.sys.stats.load_state(state["syscalls"])
        self.stats.load_state(state["stats"])
        self._booted = bool(state["booted"])

    def uptime(self) -> int:
        """A time value for timestamps (derived from the cycle clock)."""
        return self.platform.clock.now >> 10

    # ------------------------------------------------------------------
    # Kernel-space memory access (with granularity-gap fallback)
    # ------------------------------------------------------------------
    def kwrite(self, kvaddr: int, value: int) -> None:
        """Write one word of kernel memory.

        If the write faults because its page was collaterally made
        read-only (a page table sharing a 2 MB section, the protection-
        granularity gap of paper sections 1/6.2), the kernel falls back
        to asking Hypersec to validate and emulate the write.
        """
        try:
            self.cpu.write(kvaddr, value)
        except PermissionFault:
            self.stats.add("granularity_gap_faults")
            self.cpu.compute(self.op_costs.fault_entry)
            result = self.cpu.hvc(
                HVC_EMULATE_WRITE, self.linear_map.pa(kvaddr), value
            )
            if result == HVC_DENIED:
                raise SecurityViolation(
                    f"Hypersec denied emulated write at {kvaddr:#x}",
                    policy="pgtable",
                )

    def kwrite_block(self, kvaddr: int, nwords: int) -> None:
        """Bulk kernel write with the granularity-gap fallback.

        When the destination's section was collaterally write-protected,
        every one of the ``nwords`` stores would trap; the full per-word
        trap cost is charged here and a single bulk hypercall performs
        the writes (simulation batching only — see
        ``HVC_EMULATE_WRITE_BLOCK``).
        """
        try:
            self.cpu.write_block(kvaddr, nwords)
        except PermissionFault:
            self.stats.add("granularity_gap_faults", nwords)
            self.cpu.compute(
                nwords
                * (
                    self.op_costs.fault_entry
                    + self.costs.hvc_entry
                    + self.costs.hvc_exit
                )
            )
            from repro.core.hypercalls import HVC_EMULATE_WRITE_BLOCK
            result = self.cpu.hvc(
                HVC_EMULATE_WRITE_BLOCK, self.linear_map.pa(kvaddr), nwords
            )
            if result == HVC_DENIED:
                raise SecurityViolation(
                    f"Hypersec denied emulated block write at {kvaddr:#x}",
                    policy="pgtable",
                )

    def kread(self, kvaddr: int) -> int:
        """Read one word of kernel memory."""
        return self.cpu.read(kvaddr)

    def write_field(
        self,
        obj_paddr: int,
        layout: ObjectLayout,
        name: str,
        value: int,
        index: int = 0,
    ) -> None:
        """Write word ``index`` of field ``name`` of an object instance."""
        field_def = layout.field(name)
        if index >= field_def.size:
            raise ConfigurationError(
                f"{layout.name}.{name}[{index}] out of range"
            )
        word_paddr = obj_paddr + field_def.byte_offset + index * WORD_BYTES
        # Announce the legitimate update before performing it, so
        # integrity monitors can tell kernel-code writes (trusted code
        # paths, per the threat model) from arbitrary-write exploits.
        self.authorized_update.fire(word_paddr, value)
        self.kwrite(self.linear_map.kva(word_paddr), value)

    def read_field(
        self, obj_paddr: int, layout: ObjectLayout, name: str, index: int = 0
    ) -> int:
        """Read word ``index`` of field ``name`` of an object instance."""
        field_def = layout.field(name)
        if index >= field_def.size:
            raise ConfigurationError(
                f"{layout.name}.{name}[{index}] out of range"
            )
        return self.kread(
            self.linear_map.kva(
                obj_paddr + field_def.byte_offset + index * WORD_BYTES
            )
        )

    def alloc_page(self, purpose: str) -> int:
        """Allocate one kernel page (slab, page cache, buffers).

        Reports the page-lifecycle event to the execution environment:
        under KVM, freshly (re)used guest pages periodically take
        stage-2 access-flag faults (page aging).
        """
        paddr = self.allocator.alloc(purpose)
        self.env.page_lifecycle(1)
        return paddr

    def memory_copy(self, src_paddr: int, dst_paddr: int, nwords: int) -> None:
        """Functional bulk copy (timing charged separately by callers)."""
        self.platform.memory.copy_words(src_paddr, dst_paddr, nwords)

    def zero_page(self, paddr: int) -> None:
        """clear_page(): charge streaming-store timing *and* functionally
        zero the frame (page-table pages must really read as invalid)."""
        from repro.config import PAGE_WORDS
        self.kwrite_block(self.linear_map.kva(paddr), PAGE_WORDS)
        self.platform.memory.fill(paddr, PAGE_WORDS, 0)
