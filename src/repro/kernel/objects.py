"""Kernel object layouts with sensitive-field annotations.

Table 2 of the paper monitors the *sensitive fields* of ``cred`` and
``dentry`` objects (word granularity) versus the *entire* objects (the
page-granularity estimator).  The ratio between the two is emergent from
these layouts: reference counts, lock words and list pointers are written
on every lookup/get/put, while the security-relevant identity fields are
written essentially only at initialization — so monitoring only the
sensitive words suppresses the hot traffic.

Layouts are word-granular (8-byte words, matching the MBM bitmap
granularity) and loosely follow the Linux 3.10 structures; exact offsets
do not matter, only which fields are hot and which are sensitive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.config import WORD_BYTES


@dataclass(frozen=True)
class Field:
    """One named field of a kernel object."""

    name: str
    offset: int        #: offset in words from the object base
    size: int = 1      #: size in words
    sensitive: bool = False

    @property
    def byte_offset(self) -> int:
        return self.offset * WORD_BYTES

    @property
    def byte_size(self) -> int:
        return self.size * WORD_BYTES


class ObjectLayout:
    """A kernel object type: named fields over a fixed-size word span."""

    def __init__(self, name: str, fields: Iterable[Field]):
        self.name = name
        self.fields: Dict[str, Field] = {}
        cursor = 0
        for field in fields:
            if field.name in self.fields:
                raise ValueError(f"{name}: duplicate field {field.name}")
            if field.offset < cursor:
                raise ValueError(
                    f"{name}: field {field.name} overlaps its predecessor"
                )
            self.fields[field.name] = field
            cursor = field.offset + field.size
        self.size_words = cursor

    @property
    def size_bytes(self) -> int:
        return self.size_words * WORD_BYTES

    def field(self, name: str) -> Field:
        """Look up a field by name (KeyError when unknown)."""
        return self.fields[name]

    def sensitive_fields(self) -> List[Field]:
        """Fields a word-granularity monitor would register."""
        return [f for f in self.fields.values() if f.sensitive]

    def sensitive_ranges(self, base_paddr: int) -> List[Tuple[int, int]]:
        """Coalesced ``(paddr, nbytes)`` ranges of the sensitive fields of
        an object instance at ``base_paddr``."""
        ranges: List[Tuple[int, int]] = []
        for field in sorted(self.sensitive_fields(), key=lambda f: f.offset):
            start = base_paddr + field.byte_offset
            if ranges and ranges[-1][0] + ranges[-1][1] == start:
                prev_start, prev_len = ranges.pop()
                ranges.append((prev_start, prev_len + field.byte_size))
            else:
                ranges.append((start, field.byte_size))
        return ranges

    def whole_range(self, base_paddr: int) -> Tuple[int, int]:
        """The ``(paddr, nbytes)`` range covering the entire object —
        what the paper's page-granularity estimator registers."""
        return (base_paddr, self.size_bytes)

    def __repr__(self) -> str:
        return f"ObjectLayout({self.name}, {self.size_words} words)"


#: Process credentials.  The identity and capability words are the
#: rootkit target (privilege escalation, paper footnote 2); ``usage`` is
#: the refcount written by every get_cred/put_cred.
CRED = ObjectLayout(
    "cred",
    [
        Field("usage", 0),                      # refcount — hot, not sensitive
        Field("uid", 1, sensitive=True),
        Field("gid", 2, sensitive=True),
        Field("suid", 3, sensitive=True),
        Field("sgid", 4, sensitive=True),
        Field("euid", 5, sensitive=True),
        Field("egid", 6, sensitive=True),
        Field("fsuid", 7, sensitive=True),
        Field("fsgid", 8, sensitive=True),
        Field("securebits", 9, sensitive=True),
        Field("cap_inheritable", 10, sensitive=True),
        Field("cap_permitted", 11, sensitive=True),
        Field("cap_effective", 12, sensitive=True),
        Field("cap_bset", 13, sensitive=True),
        Field("jit_keyring", 14),
        Field("session_keyring", 15),
        Field("process_keyring", 16),
        Field("thread_keyring", 17),
        Field("request_key_auth", 18),
        Field("security", 19),
        Field("user_struct", 20),
    ],
)

#: Directory entry.  ``d_parent``/``d_name``/``d_inode``/``d_op`` decide
#: which inode a path resolves to (paper footnote 2); ``d_lockref`` is
#: written by every path-walk step, ``d_seq``/``d_flags`` by rename and
#: state transitions.
DENTRY = ObjectLayout(
    "dentry",
    [
        Field("d_flags", 0),                    # hot
        Field("d_seq", 1),                      # hot
        Field("d_hash", 2),
        Field("d_parent", 3, sensitive=True),
        Field("d_name", 4, size=2, sensitive=True),
        Field("d_inode", 6, sensitive=True),
        Field("d_iname", 7, size=4),            # inline short name
        Field("d_op", 11, sensitive=True),
        Field("d_sb", 12, sensitive=True),
        Field("d_lockref", 13),                 # hot: every dget/dput
        Field("d_lru", 14, size=2),
        Field("d_child", 16, size=2),
        Field("d_subdirs", 18, size=2),
        Field("d_alias", 20, size=2),
        Field("d_time", 22),
        Field("d_fsdata", 23),
    ],
)

#: Index node (not monitored by the paper's solutions; present because
#: the VFS needs it and extensions can monitor it).
INODE = ObjectLayout(
    "inode",
    [
        Field("i_mode", 0, sensitive=True),
        Field("i_uid", 1, sensitive=True),
        Field("i_gid", 2, sensitive=True),
        Field("i_flags", 3),
        Field("i_op", 4, sensitive=True),
        Field("i_sb", 5),
        Field("i_nlink", 6),
        Field("i_size", 7),
        Field("i_atime", 8),
        Field("i_mtime", 9),
        Field("i_ctime", 10),
        Field("i_count", 11),                   # hot refcount
        Field("i_mapping", 12),
        Field("i_private", 13),
    ],
)

#: Task structure (the ``cred`` pointer is the classic swap target).
TASK_STRUCT = ObjectLayout(
    "task_struct",
    [
        Field("state", 0),
        Field("flags", 1),
        Field("prio", 2),
        Field("mm", 3),
        Field("pid", 4),
        Field("parent", 5),
        Field("cred", 6, sensitive=True),       # pointer to the cred object
        Field("comm", 7, size=2),
        Field("sighand", 9),
        Field("files", 10),
        Field("fs", 11),
        Field("usage", 12),                     # hot refcount
        Field("sched_info", 13, size=3),
    ],
)

#: Open-file object.
FILE_OBJ = ObjectLayout(
    "file",
    [
        Field("f_count", 0),                    # hot refcount
        Field("f_flags", 1),
        Field("f_mode", 2),
        Field("f_pos", 3),
        Field("f_dentry", 4, sensitive=True),
        Field("f_op", 5, sensitive=True),
        Field("f_cred", 6),
        Field("private_data", 7),
    ],
)

#: Pipe / socket-pair endpoint bookkeeping.
PIPE = ObjectLayout(
    "pipe",
    [
        Field("readers", 0),
        Field("writers", 1),
        Field("head", 2),
        Field("tail", 3),
        Field("buf_page", 4),
        Field("wait_front", 5),
        Field("wait_back", 6),
    ],
)

ALL_LAYOUTS = {
    layout.name: layout
    for layout in (CRED, DENTRY, INODE, TASK_STRUCT, FILE_OBJ, PIPE)
}
