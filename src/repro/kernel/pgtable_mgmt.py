"""Page-table update strategies.

The kernel never touches descriptors through raw pointers; every runtime
descriptor write funnels through a :class:`PgTableWriter`.  Which writer
is installed is *the* difference between the experimental environments:

* :class:`DirectPgTableWriter` — Native and KVM-guest: an ordinary
  cached store through the linear map.
* :class:`HypercallPgTableWriter` — Hypernel: the store is replaced by a
  hypercall ("a la TZ-RKP", paper 5.2.1) that Hypersec verifies and
  performs from EL2.

The writers also see table-page lifecycle events so Hypernel can flip
new table pages read-only before they go live (paper 6.2).
"""

from __future__ import annotations

import abc

from repro.errors import SecurityViolation
from repro.arch.cpu import CPUCore
from repro.core.hypercalls import (
    HVC_DENIED,
    HVC_PGTABLE_ALLOC,
    HVC_PGTABLE_FREE,
    HVC_PGTABLE_WRITE,
)
from repro.kernel.physmem import LinearMap
from repro.utils.stats import StatSet


class PgTableWriter(abc.ABC):
    """Strategy for runtime kernel page-table modification."""

    def __init__(self):
        self.stats = StatSet(type(self).__name__)

    @abc.abstractmethod
    def write_desc(self, desc_paddr: int, value: int, level: int) -> None:
        """Write one translation-table descriptor.

        ``level`` is the table level the descriptor belongs to (1-3);
        the Hypernel path forwards it so Hypersec can apply the right
        policy (table pointer vs leaf mapping).
        """

    def on_table_alloc(self, table_paddr: int, is_root: bool = False) -> None:
        """A page was turned into a translation table."""

    def on_table_free(self, table_paddr: int) -> None:
        """A translation-table page was retired."""


class DirectPgTableWriter(PgTableWriter):
    """Plain stores through the linear map (Native / KVM-guest)."""

    def __init__(self, cpu: CPUCore, linear_map: LinearMap):
        super().__init__()
        self.cpu = cpu
        self.linear_map = linear_map

    def write_desc(self, desc_paddr: int, value: int, level: int) -> None:
        self.stats.add("desc_writes")
        self.cpu.write(self.linear_map.kva(desc_paddr), value)


class HypercallPgTableWriter(PgTableWriter):
    """Descriptor writes routed through Hypersec (Hypernel)."""

    def __init__(self, cpu: CPUCore):
        super().__init__()
        self.cpu = cpu

    def write_desc(self, desc_paddr: int, value: int, level: int) -> None:
        self.stats.add("desc_writes")
        self.stats.add("hypercalls")
        result = self.cpu.hvc(HVC_PGTABLE_WRITE, desc_paddr, value, level)
        if result == HVC_DENIED:
            raise SecurityViolation(
                f"Hypersec denied page-table write at {desc_paddr:#x}",
                policy="pgtable",
            )

    def on_table_alloc(self, table_paddr: int, is_root: bool = False) -> None:
        self.stats.add("table_allocs")
        self.stats.add("hypercalls")
        self.cpu.hvc(HVC_PGTABLE_ALLOC, table_paddr, int(is_root))

    def on_table_free(self, table_paddr: int) -> None:
        self.stats.add("table_frees")
        self.stats.add("hypercalls")
        result = self.cpu.hvc(HVC_PGTABLE_FREE, table_paddr)
        if result == HVC_DENIED:
            # Letting the frame go back to the allocator while Hypersec
            # still tracks (and write-protects) it would silently desync
            # the two views of the table set.
            raise SecurityViolation(
                f"Hypersec denied table free at {table_paddr:#x}",
                policy="pgtable",
            )
