"""Physical page allocation and the kernel linear map.

Two pieces live here:

* :class:`PageAllocator` — a free-list allocator over the kernel-usable
  part of DRAM (everything between the kernel image and the secure
  region), with per-purpose accounting.

* :class:`LinearMap` — the kernel's direct mapping of physical memory at
  ``KERNEL_VA_BASE``.  Paper section 6.2 is about exactly this map: the
  vanilla AArch64 Linux kernel maps it with **2 MB sections**, so a page
  table sharing a section with unrelated data cannot be write-protected
  on its own (the protection-granularity gap); Hypernel's modified
  kernel maps it with **4 KB pages** so each page-table page can be made
  read-only exactly.  Both modes are implemented; the mode is the knob
  for ablation B.

The boot-time construction writes descriptors with the bus backdoor
(firmware runs before measurement); *runtime* modifications go through
the kernel's page-table writer strategy so they are verified under
Hypernel.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from repro.config import PAGE_BYTES, SECTION_BYTES
from repro.errors import AllocationError, ConfigurationError
from repro.hw.platform import Platform
from repro.arch.pagetable import (
    KERNEL_VA_BASE,
    index_for_level,
    make_block_desc,
    make_page_desc,
    make_table_desc,
)
from repro.utils.bitops import align_up, is_aligned
from repro.utils.stats import StatSet


class PageAllocator:
    """Address-ordered allocator for 4 KB physical pages.

    The free pool is a min-heap keyed by physical address, so ``alloc``
    always hands out the lowest free page (as a buddy allocator would).
    This makes the allocator's state a function of the free *set* alone:
    a closed allocate/free cycle restores it exactly, independent of the
    order the pages came back in.
    """

    def __init__(self, base: int, limit: int):
        if not is_aligned(base, PAGE_BYTES) or not is_aligned(limit, PAGE_BYTES):
            raise ConfigurationError("allocator bounds must be page-aligned")
        if limit <= base:
            raise ConfigurationError("allocator range is empty")
        self.base = base
        self.limit = limit
        self._free: List[int] = list(range(base, limit, PAGE_BYTES))
        self._allocated: Dict[int, str] = {}
        self.stats = StatSet("page_allocator")

    def alloc(self, purpose: str = "anon") -> int:
        """Allocate the lowest free page; returns its physical address."""
        if not self._free:
            raise AllocationError("out of physical pages")
        paddr = heapq.heappop(self._free)
        self._allocated[paddr] = purpose
        self.stats.add(f"alloc.{purpose}")
        return paddr

    def free(self, paddr: int) -> None:
        """Return a page to the free pool."""
        purpose = self._allocated.pop(paddr, None)
        if purpose is None:
            raise AllocationError(f"freeing unallocated page {paddr:#x}")
        self.stats.add(f"free.{purpose}")
        heapq.heappush(self._free, paddr)

    def purpose_of(self, paddr: int) -> Optional[str]:
        """Purpose tag of an allocated page, or ``None``."""
        return self._allocated.get(paddr)

    def state_dict(self) -> dict:
        """Free pages in canonical (sorted) order.

        Allocation order is address-ordered, so the free *set* fully
        determines future behaviour; the heap's internal layout does
        not need to be preserved.
        """
        return {
            "base": self.base,
            "limit": self.limit,
            "free": sorted(self._free),
            "allocated": [[paddr, purpose]
                          for paddr, purpose in self._allocated.items()],
            "stats": self.stats.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self.base = int(state["base"])
        self.limit = int(state["limit"])
        self._free = [int(p) for p in state["free"]]
        heapq.heapify(self._free)
        self._allocated = {int(p): str(purpose)
                           for p, purpose in state["allocated"]}
        self.stats.load_state(state["stats"])

    @property
    def free_pages(self) -> int:
        return len(self._free)

    @property
    def allocated_pages(self) -> int:
        return len(self._allocated)


class LinearMap:
    """The kernel's direct physical mapping at ``KERNEL_VA_BASE``.

    ``mode`` is ``"page"`` (4 KB leaf descriptors — the Hypernel-patched
    kernel) or ``"section"`` (2 MB blocks — the vanilla kernel).
    """

    def __init__(self, platform: Platform, mode: str = "page"):
        if mode not in ("page", "section"):
            raise ConfigurationError(f"unknown linear-map mode {mode!r}")
        self.platform = platform
        self.mode = mode
        self.root = 0
        #: physical pages holding the linear-map translation tables
        self.table_pages: Set[int] = set()
        self._table_cursor = 0
        self._table_limit = 0

    # ------------------------------------------------------------------
    # Address conversion
    # ------------------------------------------------------------------
    def kva(self, paddr: int) -> int:
        """Kernel virtual address of a physical address."""
        return KERNEL_VA_BASE + (paddr - self.platform.config.dram_base)

    def pa(self, kvaddr: int) -> int:
        """Physical address of a kernel linear-map virtual address."""
        return self.platform.config.dram_base + (kvaddr - KERNEL_VA_BASE)

    # ------------------------------------------------------------------
    # Boot-time construction
    # ------------------------------------------------------------------
    def _alloc_table(self) -> int:
        if self._table_cursor >= self._table_limit:
            raise AllocationError("linear-map table pool exhausted")
        paddr = self._table_cursor
        self._table_cursor += PAGE_BYTES
        self.table_pages.add(paddr)
        for offset in range(0, PAGE_BYTES, 8):
            self.platform.bus.poke(paddr + offset, 0)
        return paddr

    def build(self, table_pool_base: int, table_pool_limit: int) -> int:
        """Construct the map for all non-secure DRAM; returns the root.

        ``table_pool_*`` bound the physical region the boot code carves
        translation tables from (part of the kernel image reservation).
        """
        self._table_cursor = table_pool_base
        self._table_limit = table_pool_limit
        self.root = self._alloc_table()
        config = self.platform.config
        base = config.dram_base
        limit = self.platform.secure_base  # the secure region is NOT mapped
        bus = self.platform.bus

        l2_tables: Dict[int, int] = {}
        l3_tables: Dict[int, int] = {}

        def l2_for(offset: int) -> int:
            index = index_for_level(offset, 1)
            if index not in l2_tables:
                table = self._alloc_table()
                bus.poke(self.root + index * 8, make_table_desc(table))
                l2_tables[index] = table
            return l2_tables[index]

        if self.mode == "section":
            for paddr in range(base, align_up(limit, SECTION_BYTES), SECTION_BYTES):
                offset = paddr - base
                l2 = l2_for(offset)
                desc = make_block_desc(paddr, writable=True, cacheable=True)
                bus.poke(l2 + index_for_level(offset, 2) * 8, desc)
        else:
            for paddr in range(base, limit, PAGE_BYTES):
                offset = paddr - base
                l2 = l2_for(offset)
                section_index = offset // SECTION_BYTES
                if section_index not in l3_tables:
                    table = self._alloc_table()
                    bus.poke(
                        l2 + index_for_level(offset, 2) * 8, make_table_desc(table)
                    )
                    l3_tables[section_index] = table
                desc = make_page_desc(paddr, writable=True, cacheable=True)
                bus.poke(l3_tables[section_index] + index_for_level(offset, 3) * 8, desc)
        return self.root

    def state_dict(self) -> dict:
        """Bookkeeping only: descriptor contents live in memory."""
        return {
            "mode": self.mode,
            "root": self.root,
            "table_pages": sorted(self.table_pages),
            "table_cursor": self._table_cursor,
            "table_limit": self._table_limit,
        }

    def load_state(self, state: dict) -> None:
        self.mode = str(state["mode"])
        self.root = int(state["root"])
        self.table_pages = {int(p) for p in state["table_pages"]}
        self._table_cursor = int(state["table_cursor"])
        self._table_limit = int(state["table_limit"])

    # ------------------------------------------------------------------
    # Runtime descriptor location (used to retune attributes of a page)
    # ------------------------------------------------------------------
    def leaf_desc_addr(self, paddr: int) -> Tuple[int, int]:
        """Locate the leaf descriptor mapping physical page ``paddr``.

        Returns ``(descriptor_paddr, leaf_level)`` where leaf_level is 2
        in section mode and 3 in page mode.  Walks the real tables with
        backdoor reads (maintenance path, timing charged by callers).
        """
        offset = paddr - self.platform.config.dram_base
        bus = self.platform.bus
        l1_desc = bus.peek(self.root + index_for_level(offset, 1) * 8)
        if not l1_desc & 1:
            raise AllocationError(f"paddr {paddr:#x} not covered by linear map")
        l2 = l1_desc & ~0xFFF & ((1 << 48) - 1)
        l2_addr = l2 + index_for_level(offset, 2) * 8
        l2_desc = bus.peek(l2_addr)
        if not l2_desc & 1:
            raise AllocationError(f"paddr {paddr:#x} not covered by linear map")
        if not l2_desc & 2:  # block: section mode leaf
            return l2_addr, 2
        l3 = l2_desc & ~0xFFF & ((1 << 48) - 1)
        return l3 + index_for_level(offset, 3) * 8, 3
