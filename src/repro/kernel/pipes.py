"""Pipes: kernel FIFO buffers between two tasks (LMbench ``pipe lat``).

A pipe write copies user data into a kernel buffer page; a read copies
it back out.  The pass-a-token latency measured by LMbench additionally
includes two context switches per round trip, orchestrated by the
workload driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.config import PAGE_BYTES, WORD_BYTES
from repro.errors import SimulationError
from repro.kernel.objects import PIPE
from repro.utils.stats import StatSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel


@dataclass
class Pipe:
    """One pipe: a slab bookkeeping object plus one buffer page."""

    pipe_pa: int
    buf_page: int
    fill_bytes: int = 0


class PipeManager:
    """pipe() / write / read."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.stats = StatSet("pipes")

    def create(self) -> Pipe:
        kernel = self.kernel
        kernel.cpu.compute(kernel.op_costs.pipe_create_base)
        pipe_pa = kernel.slab.cache(PIPE).alloc()
        buf_page = kernel.alloc_page("pipe_buf")
        write = kernel.write_field
        write(pipe_pa, PIPE, "readers", 1)
        write(pipe_pa, PIPE, "writers", 1)
        write(pipe_pa, PIPE, "head", 0)
        write(pipe_pa, PIPE, "tail", 0)
        write(pipe_pa, PIPE, "buf_page", buf_page)
        self.stats.add("created")
        return Pipe(pipe_pa=pipe_pa, buf_page=buf_page)

    def destroy(self, pipe: Pipe) -> None:
        kernel = self.kernel
        kernel.allocator.free(pipe.buf_page)
        kernel.slab.cache(PIPE).free(pipe.pipe_pa)
        self.stats.add("destroyed")

    def write(self, pipe: Pipe, nbytes: int) -> None:
        """Copy ``nbytes`` from user space into the pipe buffer."""
        if nbytes > PAGE_BYTES:
            raise SimulationError("pipe writes above one page unsupported")
        kernel = self.kernel
        kernel.cpu.compute(kernel.op_costs.pipe_rw_base)
        nwords = max(1, nbytes // WORD_BYTES)
        kernel.kwrite_block(kernel.linear_map.kva(pipe.buf_page), nwords)
        head = kernel.read_field(pipe.pipe_pa, PIPE, "head")
        kernel.write_field(pipe.pipe_pa, PIPE, "head", head + nbytes)
        pipe.fill_bytes += nbytes
        self.stats.add("writes")

    def read(self, pipe: Pipe, nbytes: int) -> int:
        """Copy up to ``nbytes`` out of the pipe buffer to user space."""
        kernel = self.kernel
        kernel.cpu.compute(kernel.op_costs.pipe_rw_base)
        nbytes = min(nbytes, pipe.fill_bytes)
        nwords = max(1, nbytes // WORD_BYTES)
        kernel.cpu.read_block(kernel.linear_map.kva(pipe.buf_page), nwords)
        tail = kernel.read_field(pipe.pipe_pa, PIPE, "tail")
        kernel.write_field(pipe.pipe_pa, PIPE, "tail", tail + nbytes)
        pipe.fill_bytes -= nbytes
        self.stats.add("reads")
        return nbytes
