"""Processes: task/cred lifecycle, fork, exec, exit, context switch.

fork() is the page-table-heaviest kernel operation: it duplicates the
parent's address space (every child PTE installed and every writable
parent PTE re-armed for COW goes through the page-table writer — one
verified hypercall each under Hypernel), copies the credentials (cred
object writes, visible to the MBM when monitored) and reschedules (IPI
to the sibling core, a world-switch-expensive event under KVM).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.config import PAGE_BYTES
from repro.errors import SimulationError
from repro.kernel.objects import CRED, TASK_STRUCT
from repro.kernel.vmm import MM
from repro.utils.stats import StatSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel


@dataclass
class Task:
    """One process."""

    pid: int
    task_pa: int
    cred_pa: int
    mm: MM
    parent: Optional["Task"] = None
    name: str = "task"
    state: str = "running"
    sigactions: Dict[int, int] = field(default_factory=dict)

    @property
    def alive(self) -> bool:
        return self.state != "dead"


class ProcessManager:
    """The kernel's process table and lifecycle operations."""

    #: pages in the default process image (text/data/stack VMAs).
    TEXT_PAGES = 24
    DATA_PAGES = 16
    STACK_PAGES = 8

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.tasks: Dict[int, Task] = {}
        self.current: Optional[Task] = None
        self._next_pid = 1
        # Freed pids are recycled lowest-first (classic UNIX pid
        # allocation).  This keeps a fork/exit-heavy steady state
        # periodic instead of letting pid values grow without bound.
        self._free_pids: List[int] = []
        self.stats = StatSet("process")

    def _alloc_pid(self) -> int:
        if self._free_pids:
            return heapq.heappop(self._free_pids)
        pid = self._next_pid
        self._next_pid += 1
        return pid

    def state_dict(self) -> dict:
        """Tasks in table order; ``parent`` is encoded as a pid."""
        return {
            "tasks": [
                [pid, {
                    "pid": task.pid,
                    "task_pa": task.task_pa,
                    "cred_pa": task.cred_pa,
                    "mm": task.mm.state_dict(),
                    "parent": task.parent.pid if task.parent else None,
                    "name": task.name,
                    "state": task.state,
                    "sigactions": [[sig, handler]
                                   for sig, handler in task.sigactions.items()],
                }]
                for pid, task in self.tasks.items()
            ],
            "current": self.current.pid if self.current else None,
            "next_pid": self._next_pid,
            "free_pids": sorted(self._free_pids),
            "stats": self.stats.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self.tasks = {}
        parents: Dict[int, Optional[int]] = {}
        for pid, task_state in state["tasks"]:
            task = Task(
                pid=int(task_state["pid"]),
                task_pa=int(task_state["task_pa"]),
                cred_pa=int(task_state["cred_pa"]),
                mm=MM.from_state(task_state["mm"]),
                name=str(task_state["name"]),
                state=str(task_state["state"]),
                sigactions={int(sig): int(handler)
                            for sig, handler in task_state["sigactions"]},
            )
            self.tasks[int(pid)] = task
            parent_pid = task_state["parent"]
            parents[task.pid] = None if parent_pid is None else int(parent_pid)
        for pid, parent_pid in parents.items():
            if parent_pid is not None:
                # Reaped parents are simply dropped, as in a live table.
                self.tasks[pid].parent = self.tasks.get(parent_pid)
        current = state["current"]
        self.current = None if current is None else self.tasks[int(current)]
        self._next_pid = int(state["next_pid"])
        self._free_pids = [int(pid) for pid in state.get("free_pids", [])]
        heapq.heapify(self._free_pids)
        self.stats.load_state(state["stats"])

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _alloc_cred(self, uid: int, gid: int, caps: int) -> int:
        """Allocate and initialize a cred object (sensitive writes!)."""
        kernel = self.kernel
        cred_pa = kernel.slab.cache(CRED).alloc()
        write = kernel.write_field
        write(cred_pa, CRED, "usage", 1)
        for name in ("uid", "suid", "euid", "fsuid"):
            write(cred_pa, CRED, name, uid)
        for name in ("gid", "sgid", "egid", "fsgid"):
            write(cred_pa, CRED, name, gid)
        write(cred_pa, CRED, "securebits", 0)
        for name in ("cap_inheritable", "cap_permitted",
                     "cap_effective", "cap_bset"):
            write(cred_pa, CRED, name, caps)
        return cred_pa

    def _copy_cred(self, src_pa: int) -> int:
        """prepare_creds(): allocate a copy of an existing cred."""
        kernel = self.kernel
        cred_pa = kernel.slab.cache(CRED).alloc()
        for field_def in CRED.fields.values():
            for word in range(field_def.size):
                value = kernel.read_field(src_pa, CRED, field_def.name, index=word)
                kernel.write_field(cred_pa, CRED, field_def.name, value, index=word)
        kernel.write_field(cred_pa, CRED, "usage", 1)
        return cred_pa

    def _alloc_task_struct(self, pid: int, cred_pa: int, parent_pa: int) -> int:
        kernel = self.kernel
        task_pa = kernel.slab.cache(TASK_STRUCT).alloc()
        write = kernel.write_field
        write(task_pa, TASK_STRUCT, "state", 0)
        write(task_pa, TASK_STRUCT, "flags", 0)
        write(task_pa, TASK_STRUCT, "prio", 120)
        write(task_pa, TASK_STRUCT, "pid", pid)
        write(task_pa, TASK_STRUCT, "parent", parent_pa)
        write(task_pa, TASK_STRUCT, "cred", cred_pa)
        write(task_pa, TASK_STRUCT, "comm", 0x636F_6D6D)
        write(task_pa, TASK_STRUCT, "usage", 1)
        return task_pa

    def _build_image(self, mm: MM) -> None:
        """Lay out the standard text/data/stack VMAs."""
        vmm = self.kernel.vmm
        vmm.add_vma(mm, vmm.TEXT_BASE, self.TEXT_PAGES * PAGE_BYTES,
                    writable=False, kind="text")
        vmm.add_vma(mm, vmm.DATA_BASE, self.DATA_PAGES * PAGE_BYTES,
                    writable=True, kind="data")
        stack_base = vmm.STACK_TOP - self.STACK_PAGES * PAGE_BYTES
        vmm.add_vma(mm, stack_base, self.STACK_PAGES * PAGE_BYTES,
                    writable=True, kind="stack")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def spawn_init(self, touch_pages: bool = True) -> Task:
        """Create PID 1 with a fresh image and make it current."""
        kernel = self.kernel
        mm = kernel.vmm.create_mm()
        self._build_image(mm)
        cred_pa = self._alloc_cred(uid=0, gid=0, caps=(1 << 40) - 1)
        pid = self._alloc_pid()
        task_pa = self._alloc_task_struct(pid, cred_pa, 0)
        task = Task(pid=pid, task_pa=task_pa, cred_pa=cred_pa,
                    mm=mm, name="init")
        self.tasks[task.pid] = task
        self.current = task
        kernel.cpu.msr("TTBR0_EL1", mm.pgd)
        kernel.cpu.mmu.asid = mm.asid
        if touch_pages:
            self._touch_image(task)
        self.stats.add("spawned")
        return task

    def _touch_image(self, task: Task) -> None:
        """Fault in the standard image pages (program startup)."""
        vmm = self.kernel.vmm
        for page in range(self.TEXT_PAGES):
            vmm.user_touch(task.mm, vmm.TEXT_BASE + page * PAGE_BYTES)
        for page in range(self.DATA_PAGES):
            vmm.user_touch(task.mm, vmm.DATA_BASE + page * PAGE_BYTES,
                           is_write=True, value=1)
        stack_base = vmm.STACK_TOP - self.STACK_PAGES * PAGE_BYTES
        for page in range(self.STACK_PAGES):
            vmm.user_touch(task.mm, stack_base + page * PAGE_BYTES,
                           is_write=True, value=1)

    def fork(self, parent: Optional[Task] = None) -> Task:
        """fork(): duplicate the current (or given) task."""
        kernel = self.kernel
        parent = parent or self.current
        if parent is None:
            raise SimulationError("fork with no current task")
        kernel.cpu.compute(kernel.op_costs.fork_base)
        kernel.env.process_fork()
        cred_pa = self._copy_cred(parent.cred_pa)
        # Parent cred refcount blips during copy_creds (hot word).
        usage = kernel.read_field(parent.cred_pa, CRED, "usage")
        kernel.write_field(parent.cred_pa, CRED, "usage", usage + 1)
        kernel.write_field(parent.cred_pa, CRED, "usage", usage)
        pid = self._alloc_pid()
        task_pa = self._alloc_task_struct(pid, cred_pa, parent.task_pa)
        child_mm = kernel.vmm.fork_mm(parent.mm)
        child = Task(pid=pid, task_pa=task_pa, cred_pa=cred_pa,
                     mm=child_mm, parent=parent, name=f"{parent.name}-child",
                     sigactions=dict(parent.sigactions))
        self.tasks[child.pid] = child
        self.stats.add("forks")
        return child

    def execv(self, task: Task, touch_pages: int = 6) -> None:
        """execve(): replace the address space with a fresh image.

        Only the *current* task can exec (it is the one trapping into
        the kernel); drivers must context-switch to the child first.
        """
        kernel = self.kernel
        if task is not self.current:
            raise SimulationError("execv on a task that is not running")
        kernel.cpu.compute(kernel.op_costs.exec_base)
        old_mm = task.mm
        new_mm = kernel.vmm.create_mm()
        self._build_image(new_mm)
        task.mm = new_mm
        task.sigactions.clear()
        if task is self.current:
            kernel.cpu.msr("TTBR0_EL1", new_mm.pgd)
            kernel.cpu.mmu.asid = new_mm.asid
        kernel.vmm.destroy_mm(old_mm)
        # The new program faults in its first pages immediately.
        vmm = kernel.vmm
        stack_base = vmm.STACK_TOP - PAGE_BYTES
        vmm.user_touch(task.mm, vmm.TEXT_BASE)
        vmm.user_touch(task.mm, stack_base, is_write=True, value=1)
        for page in range(max(0, touch_pages - 2)):
            vmm.user_touch(task.mm, vmm.TEXT_BASE + (page + 1) * PAGE_BYTES)
        self.stats.add("execs")

    def exit(self, task: Task) -> None:
        """exit(): tear down the task and its resources."""
        kernel = self.kernel
        kernel.cpu.compute(kernel.op_costs.exit_base)
        if task is self.current:
            # Park user translation before the root table is freed, so
            # TTBR0 never dangles into a retired page (and Hypersec can
            # let the pgd go).
            kernel.cpu.msr("TTBR0_EL1", 0)
            kernel.cpu.mmu.asid = 0
        kernel.vmm.destroy_mm(task.mm)
        # put_cred: drop the refcount and free.
        kernel.write_field(task.cred_pa, CRED, "usage", 0)
        kernel.slab.cache(CRED).free(task.cred_pa)
        kernel.write_field(task.task_pa, TASK_STRUCT, "state", 0x10)
        kernel.slab.cache(TASK_STRUCT).free(task.task_pa)
        task.state = "dead"
        del self.tasks[task.pid]
        heapq.heappush(self._free_pids, task.pid)
        if self.current is task:
            self.current = None
        self.stats.add("exits")

    def wait(self, parent: Task) -> None:
        """waitpid(): reap (modelled as scheduler bookkeeping)."""
        self.kernel.cpu.compute(self.kernel.op_costs.wait_base)
        self.stats.add("waits")

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def context_switch(self, to: Task) -> None:
        """Switch the CPU to ``to``'s address space.

        The TTBR0 write is a privileged VM-control update: under
        Hypernel it traps to Hypersec for validation (paper 5.2.2).
        """
        kernel = self.kernel
        if not to.alive:
            raise SimulationError(f"switching to dead task {to.pid}")
        kernel.cpu.compute(kernel.op_costs.context_switch_base)
        kernel.env.context_switch_overhead()
        kernel.cpu.msr("TTBR0_EL1", to.mm.pgd)
        kernel.cpu.mmu.asid = to.mm.asid
        self.current = to
        self.stats.add("context_switches")
