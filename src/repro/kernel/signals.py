"""Signal installation and delivery (LMbench ``signal install/ovh``).

Installation writes the handler slot; delivery pushes a signal frame
onto the user stack (real user-memory writes through the MMU), "runs"
the handler and returns via sigreturn.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import PAGE_BYTES, WORD_BYTES
from repro.errors import SimulationError
from repro.kernel.process import Task
from repro.utils.stats import StatSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel

#: words in a (modelled) signal frame pushed on the user stack.
SIGFRAME_WORDS = 36


class SignalManager:
    """sigaction / kill / sigreturn."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.stats = StatSet("signals")

    def sigaction(self, task: Task, signum: int, handler: int) -> None:
        """Install a handler (the ``signal install`` micro-op)."""
        if not 1 <= signum <= 64:
            raise SimulationError(f"bad signal number {signum}")
        kernel = self.kernel
        kernel.cpu.compute(kernel.op_costs.sigaction_base)
        task.sigactions[signum] = handler
        # The sighand table lives in the task page; charge the slot write.
        kernel.kwrite(
            kernel.linear_map.kva(task.task_pa) + 9 * WORD_BYTES, handler
        )
        self.stats.add("installed")

    def deliver(self, task: Task, signum: int,
                handler_compute: int = 150) -> None:
        """Send+deliver a signal to the current task and sigreturn.

        Models LMbench's ``signal ovh``: kill(self), frame setup on the
        user stack, handler execution, sigreturn trap.
        """
        kernel = self.kernel
        if signum not in task.sigactions:
            raise SimulationError(f"no handler installed for signal {signum}")
        kernel.cpu.compute(kernel.op_costs.signal_deliver_base)
        # Push the signal frame onto the user stack.
        sp = kernel.vmm.STACK_TOP - PAGE_BYTES // 2
        kernel.vmm.user_touch(task.mm, sp, is_write=True, value=1)
        kernel.cpu.write_block(sp - SIGFRAME_WORDS * WORD_BYTES, SIGFRAME_WORDS, el=0)
        # Handler runs at EL0.
        kernel.cpu.compute(handler_compute)
        # sigreturn: another kernel entry to restore the context.
        kernel.cpu.compute(
            kernel.costs.svc_entry + kernel.op_costs.sigreturn_base
            + kernel.costs.svc_exit
        )
        kernel.cpu.read_block(sp - SIGFRAME_WORDS * WORD_BYTES, SIGFRAME_WORDS, el=0)
        self.stats.add("delivered")
