"""Slab allocator for fixed-size kernel objects.

Objects are carved out of whole pages obtained from the page allocator,
as in Linux's SLUB: a ``cred`` slab page holds many cred objects, which
is exactly why page-granularity write monitoring of such objects is so
noisy and why the MBM's word granularity pays off (paper sections 1 and
7.2).

Allocation/free events are published on the kernel's object hooks so
security applications can register/unregister monitored regions, which
models the paper's "hooks inserted into the kernel code" (section 5.3).
"""

from __future__ import annotations

from typing import Dict, List, Set, TYPE_CHECKING

from repro.config import PAGE_BYTES
from repro.errors import AllocationError
from repro.kernel.objects import ObjectLayout
from repro.utils.stats import StatSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel


class SlabCache:
    """A cache of equally sized objects of one :class:`ObjectLayout`."""

    def __init__(self, kernel: "Kernel", layout: ObjectLayout):
        if layout.size_bytes > PAGE_BYTES:
            raise AllocationError(f"{layout.name} objects exceed a page")
        self.kernel = kernel
        self.layout = layout
        self.objects_per_page = PAGE_BYTES // layout.size_bytes
        self._free: List[int] = []
        self._live: Set[int] = set()
        self.pages: Set[int] = set()
        self.stats = StatSet(f"slab.{layout.name}")

    def _grow(self) -> None:
        page = self.kernel.alloc_page(f"slab.{self.layout.name}")
        self.pages.add(page)
        self.stats.add("pages")
        for index in range(self.objects_per_page):
            self._free.append(page + index * self.layout.size_bytes)

    def alloc(self) -> int:
        """Allocate one object; fires the kernel's ``object_alloc`` hook
        *before* returning so monitors see the initialization writes."""
        if not self._free:
            self._grow()
        paddr = self._free.pop()
        self._live.add(paddr)
        self.stats.add("allocs")
        self.kernel.cpu.compute(self.kernel.op_costs.slab_alloc)
        self.kernel.object_alloc.fire(self.layout, paddr)
        return paddr

    def free(self, paddr: int) -> None:
        """Free one object; fires the ``object_free`` hook first."""
        if paddr not in self._live:
            raise AllocationError(
                f"freeing {self.layout.name} object not live at {paddr:#x}"
            )
        self.kernel.object_free.fire(self.layout, paddr)
        self._live.remove(paddr)
        self._free.append(paddr)
        self.stats.add("frees")
        self.kernel.cpu.compute(self.kernel.op_costs.slab_free)

    @property
    def live_objects(self) -> int:
        return len(self._live)

    def state_dict(self) -> dict:
        """Free-list order matters: alloc() pops from the end."""
        return {
            "free": list(self._free),
            "live": sorted(self._live),
            "pages": sorted(self.pages),
            "stats": self.stats.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self._free = [int(p) for p in state["free"]]
        self._live = {int(p) for p in state["live"]}
        self.pages = {int(p) for p in state["pages"]}
        self.stats.load_state(state["stats"])


class SlabRegistry:
    """All slab caches of a kernel, keyed by layout name."""

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel
        self._caches: Dict[str, SlabCache] = {}

    def cache(self, layout: ObjectLayout) -> SlabCache:
        if layout.name not in self._caches:
            self._caches[layout.name] = SlabCache(self._kernel, layout)
        return self._caches[layout.name]

    def __getitem__(self, name: str) -> SlabCache:
        return self._caches[name]

    def state_dict(self) -> dict:
        return {
            "caches": [[name, cache.state_dict()]
                       for name, cache in self._caches.items()]
        }

    def load_state(self, state: dict) -> None:
        from repro.kernel.objects import ALL_LAYOUTS

        self._caches = {}
        for name, cache_state in state["caches"]:
            cache = SlabCache(self._kernel, ALL_LAYOUTS[name])
            cache.load_state(cache_state)
            self._caches[name] = cache

    def __contains__(self, name: str) -> bool:
        return name in self._caches
