"""AF_UNIX-style socket pairs (LMbench ``socket lat``).

Structurally like a pair of pipes but with the heavier socket-layer
bookkeeping (skb management, socket locks), which is why LMbench's
socket latency exceeds its pipe latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.config import WORD_BYTES
from repro.kernel.objects import PIPE
from repro.utils.stats import StatSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel


@dataclass
class SocketPair:
    """A connected pair of stream sockets (two one-way channels)."""

    a_pa: int
    b_pa: int
    a_buf: int
    b_buf: int


class SocketManager:
    """socketpair() / send / recv."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.stats = StatSet("sockets")

    def socketpair(self) -> SocketPair:
        kernel = self.kernel
        kernel.cpu.compute(kernel.op_costs.socket_create_base)
        pair = SocketPair(
            a_pa=kernel.slab.cache(PIPE).alloc(),
            b_pa=kernel.slab.cache(PIPE).alloc(),
            a_buf=kernel.alloc_page("sock_buf"),
            b_buf=kernel.alloc_page("sock_buf"),
        )
        for pa, buf in ((pair.a_pa, pair.a_buf), (pair.b_pa, pair.b_buf)):
            kernel.write_field(pa, PIPE, "readers", 1)
            kernel.write_field(pa, PIPE, "writers", 1)
            kernel.write_field(pa, PIPE, "buf_page", buf)
        self.stats.add("created")
        return pair

    def destroy(self, pair: SocketPair) -> None:
        kernel = self.kernel
        kernel.allocator.free(pair.a_buf)
        kernel.allocator.free(pair.b_buf)
        kernel.slab.cache(PIPE).free(pair.a_pa)
        kernel.slab.cache(PIPE).free(pair.b_pa)
        self.stats.add("destroyed")

    def _transfer(self, sock_pa: int, buf_page: int, nbytes: int,
                  is_send: bool) -> None:
        kernel = self.kernel
        kernel.cpu.compute(kernel.op_costs.socket_rw_base)
        # Each message cycles an sk_buff (slab page churn).
        kernel.env.page_lifecycle(1)
        nwords = max(1, nbytes // WORD_BYTES)
        kva = kernel.linear_map.kva(buf_page)
        if is_send:
            kernel.kwrite_block(kva, nwords)
        else:
            kernel.cpu.read_block(kva, nwords)
        # Socket state churn (sk_buff accounting on the PIPE layout).
        head_field = "head" if is_send else "tail"
        value = kernel.read_field(sock_pa, PIPE, head_field)
        kernel.write_field(sock_pa, PIPE, head_field, value + nbytes)
        kernel.write_field(sock_pa, PIPE, "wait_front", 1)
        kernel.write_field(sock_pa, PIPE, "wait_front", 0)

    def send(self, pair: SocketPair, endpoint: str, nbytes: int) -> None:
        """Send on endpoint ``"a"`` or ``"b"``."""
        pa, buf = (pair.a_pa, pair.a_buf) if endpoint == "a" else (pair.b_pa, pair.b_buf)
        self._transfer(pa, buf, nbytes, is_send=True)
        self.stats.add("sends")

    def recv(self, pair: SocketPair, endpoint: str, nbytes: int) -> None:
        """Receive on endpoint ``"a"`` or ``"b"``."""
        pa, buf = (pair.a_pa, pair.a_buf) if endpoint == "a" else (pair.b_pa, pair.b_buf)
        self._transfer(pa, buf, nbytes, is_send=False)
        self.stats.add("recvs")
