"""The syscall layer: EL0 -> EL1 entry/exit costs around kernel services.

Workload drivers call these instead of kernel subsystems directly so
that every operation pays the architectural syscall entry/exit and
dispatch costs, as LMbench's measurements do.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from repro.kernel.objects import CRED as _CRED
from repro.kernel.objects import INODE as _INODE
from repro.kernel.pipes import Pipe
from repro.kernel.process import Task
from repro.kernel.sockets import SocketPair
from repro.kernel.vfs import FileHandle
from repro.utils.stats import StatSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel

#: words copied out by stat() into the user's statbuf.
STATBUF_WORDS = 16


class SyscallLayer:
    """User-facing system-call interface of one kernel."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.stats = StatSet("syscalls")

    # ------------------------------------------------------------------
    def _enter(self, name: str) -> None:
        kernel = self.kernel
        kernel.cpu.compute(kernel.costs.svc_entry + kernel.op_costs.syscall_dispatch)
        self.stats.add(name)
        self.stats.add("total")

    def _exit(self) -> None:
        self.kernel.cpu.compute(self.kernel.costs.svc_exit)

    # ------------------------------------------------------------------
    # Filesystem
    # ------------------------------------------------------------------
    def stat(self, task: Task, path: str) -> Optional[Dict[str, int]]:
        """stat(2): path lookup + attribute read + statbuf copy-out."""
        self._enter("stat")
        kernel = self.kernel
        kernel.cpu.compute(kernel.op_costs.stat_base)
        node = kernel.vfs.lookup(path)
        attrs = None
        if node is not None:
            attrs = kernel.vfs.getattr(node)
            # copy_to_user of the statbuf (user stack area).
            sp = kernel.vmm.STACK_TOP - 0x800
            kernel.vmm.user_touch(task.mm, sp, is_write=True, value=0)
            kernel.cpu.write_block(sp, STATBUF_WORDS, el=0)
        self._exit()
        return attrs

    def open(self, task: Task, path: str, create: bool = False) -> FileHandle:
        self._enter("open")
        self.kernel.cpu.compute(self.kernel.op_costs.open_base)
        handle = self.kernel.vfs.open(path, create=create)
        self._exit()
        return handle

    def close(self, task: Task, handle: FileHandle) -> None:
        self._enter("close")
        self.kernel.cpu.compute(self.kernel.op_costs.close_base)
        self.kernel.vfs.close(handle)
        self._exit()

    def read(self, task: Task, handle: FileHandle, nbytes: int) -> int:
        self._enter("read")
        self.kernel.cpu.compute(self.kernel.op_costs.rw_base)
        count = self.kernel.vfs.read_file(handle, nbytes)
        self._exit()
        return count

    def write(self, task: Task, handle: FileHandle, nbytes: int) -> None:
        self._enter("write")
        self.kernel.cpu.compute(self.kernel.op_costs.rw_base)
        self.kernel.vfs.write_file(handle, nbytes)
        self._exit()

    def creat(self, task: Task, path: str, mode: int = 0o644) -> None:
        self._enter("creat")
        self.kernel.cpu.compute(self.kernel.op_costs.create_base)
        uid = self.kernel.read_field(task.cred_pa, _CRED, "fsuid")
        self.kernel.vfs.create(path, mode=mode, uid=uid)
        self._exit()

    def mkdir(self, task: Task, path: str) -> None:
        self._enter("mkdir")
        self.kernel.cpu.compute(self.kernel.op_costs.create_base)
        self.kernel.vfs.create(path, is_dir=True)
        self._exit()

    def unlink(self, task: Task, path: str) -> None:
        self._enter("unlink")
        self.kernel.cpu.compute(self.kernel.op_costs.unlink_base)
        self.kernel.vfs.unlink(path)
        self._exit()

    def chmod(self, task: Task, path: str, mode: int) -> None:
        self._enter("chmod")
        self.kernel.cpu.compute(self.kernel.op_costs.attr_base)
        self.kernel.vfs.chmod(path, mode)
        self._exit()

    def chown(self, task: Task, path: str, uid: int, gid: int) -> None:
        self._enter("chown")
        self.kernel.cpu.compute(self.kernel.op_costs.attr_base)
        self.kernel.vfs.chown(path, uid, gid)
        self._exit()

    def utimes(self, task: Task, path: str) -> None:
        self._enter("utimes")
        self.kernel.cpu.compute(self.kernel.op_costs.attr_base)
        self.kernel.vfs.utimes(path, self.kernel.uptime())
        self._exit()

    # fd-based attribute calls (no path walk — what tar actually uses).
    def fchmod(self, task: Task, handle: FileHandle, mode: int) -> None:
        self._enter("fchmod")
        kernel = self.kernel
        kernel.cpu.compute(kernel.op_costs.attr_base)
        kernel.write_field(handle.node.inode_pa, _INODE, "i_mode", mode)
        self._exit()

    def fchown(self, task: Task, handle: FileHandle, uid: int, gid: int) -> None:
        self._enter("fchown")
        kernel = self.kernel
        kernel.cpu.compute(kernel.op_costs.attr_base)
        kernel.write_field(handle.node.inode_pa, _INODE, "i_uid", uid)
        kernel.write_field(handle.node.inode_pa, _INODE, "i_gid", gid)
        self._exit()

    def futimes(self, task: Task, handle: FileHandle) -> None:
        self._enter("futimes")
        kernel = self.kernel
        kernel.cpu.compute(kernel.op_costs.attr_base)
        kernel.write_field(handle.node.inode_pa, _INODE, "i_mtime",
                           kernel.uptime())
        self._exit()

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def fork(self, task: Task) -> Task:
        self._enter("fork")
        child = self.kernel.procs.fork(task)
        self._exit()
        return child

    def execv(self, task: Task) -> None:
        self._enter("execv")
        self.kernel.procs.execv(task)
        self._exit()

    def exit(self, task: Task) -> None:
        self._enter("exit")
        self.kernel.procs.exit(task)
        # no _exit(): the task never returns to user space.

    def wait(self, task: Task) -> None:
        self._enter("wait")
        self.kernel.procs.wait(task)
        self._exit()

    # ------------------------------------------------------------------
    # Credentials
    # ------------------------------------------------------------------
    def setuid(self, task: Task, uid: int) -> None:
        """setuid(2): the authorized way for sensitive cred words to
        change — the kernel announces the update on the object hooks'
        behalf via ``authorized_cred_update``."""
        self._enter("setuid")
        kernel = self.kernel
        kernel.cpu.compute(kernel.op_costs.attr_base)
        for name in ("uid", "euid", "suid", "fsuid"):
            # write_field announces the authorized update itself.
            kernel.write_field(task.cred_pa, _CRED, name, uid)
        self._exit()

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def sigaction(self, task: Task, signum: int, handler: int = 0x4000_1000) -> None:
        self._enter("sigaction")
        self.kernel.signals.sigaction(task, signum, handler)
        self._exit()

    def kill_self(self, task: Task, signum: int) -> None:
        self._enter("kill")
        self.kernel.signals.deliver(task, signum)
        self._exit()

    # ------------------------------------------------------------------
    # Pipes / sockets
    # ------------------------------------------------------------------
    def pipe(self, task: Task) -> Pipe:
        self._enter("pipe")
        result = self.kernel.pipes.create()
        self._exit()
        return result

    def pipe_write(self, task: Task, pipe: Pipe, nbytes: int) -> None:
        self._enter("write")
        self.kernel.pipes.write(pipe, nbytes)
        self._exit()

    def pipe_read(self, task: Task, pipe: Pipe, nbytes: int) -> int:
        self._enter("read")
        count = self.kernel.pipes.read(pipe, nbytes)
        self._exit()
        return count

    def socketpair(self, task: Task) -> SocketPair:
        self._enter("socketpair")
        result = self.kernel.sockets.socketpair()
        self._exit()
        return result

    def sock_send(self, task: Task, pair: SocketPair, endpoint: str, nbytes: int) -> None:
        self._enter("send")
        self.kernel.sockets.send(pair, endpoint, nbytes)
        self._exit()

    def sock_recv(self, task: Task, pair: SocketPair, endpoint: str, nbytes: int) -> None:
        self._enter("recv")
        self.kernel.sockets.recv(pair, endpoint, nbytes)
        self._exit()

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def mmap(self, task: Task, nbytes: int, writable: bool = True):
        """mmap(2): create an anonymous mapping; pages fault in on touch."""
        self._enter("mmap")
        kernel = self.kernel
        kernel.cpu.compute(kernel.op_costs.mmap_base)
        start = self._mmap_cursor(task)
        vma = kernel.vmm.add_vma(task.mm, start, nbytes, writable, "anon")
        self._exit()
        return vma

    def munmap(self, task: Task, vma) -> None:
        self._enter("munmap")
        kernel = self.kernel
        kernel.cpu.compute(kernel.op_costs.munmap_base)
        kernel.vmm.remove_vma(task.mm, vma)
        self._exit()

    def _mmap_cursor(self, task: Task) -> int:
        """Next free address in the mmap area (top-down like Linux)."""
        base = self.kernel.vmm.MMAP_BASE
        end = max(
            [vma.end for vma in task.mm.vmas if vma.kind == "anon"] + [base]
        )
        return end
