"""Virtual filesystem: dentry cache, inodes, a ramfs, file I/O.

This subsystem produces the ``dentry`` memory-write traffic that Table 2
of the paper measures.  The write mix is mechanistic:

* every path-walk step *gets* and later *puts* the component's dentry,
  read-modify-writing the hot ``d_lockref`` word (never sensitive);
* creating a dentry writes its identity fields once — ``d_parent``,
  ``d_name``, ``d_inode``, ``d_op``, ``d_sb`` are the sensitive words a
  word-granularity monitor watches;
* unlink clears ``d_inode`` (sensitive) and retires the object.

All field accesses go through the kernel's CPU so they hit the memory
system (and the MBM, once the containing pages are monitored and
non-cacheable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.config import PAGE_BYTES, WORD_BYTES
from repro.errors import AllocationError
from repro.kernel.objects import DENTRY, FILE_OBJ, INODE
from repro.utils.stats import StatSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel


def name_hash(name: str) -> int:
    """Deterministic 64-bit FNV-1a of a dentry name.

    The real kernel's d_hash is a pure function of the name; Python's
    builtin ``hash`` is salted per process, which would make the memory
    images of two identically-built machines differ across processes
    and break snapshot content-hash comparability (``repro.state``).
    """
    value = 0xCBF2_9CE4_8422_2325
    for byte in name.encode():
        value = ((value ^ byte) * 0x1_0000_0001_B3) & ((1 << 64) - 1)
    return value


@dataclass
class VfsNode:
    """Python-side bookkeeping mirroring one dentry+inode pair."""

    name: str
    dentry_pa: int
    inode_pa: int
    is_dir: bool
    parent: Optional["VfsNode"] = None
    children: Dict[str, "VfsNode"] = field(default_factory=dict)
    data_pages: List[int] = field(default_factory=list)
    size_bytes: int = 0


@dataclass
class FileHandle:
    """An open file: wraps a ``file`` slab object."""

    node: VfsNode
    file_pa: int
    pos: int = 0
    closed: bool = False


class VFS:
    """The kernel's filesystem layer (a single ramfs mount)."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.stats = StatSet("vfs")
        self._sb_token = 0x5B  # superblock cookie written into d_sb
        self.root = self._make_node("/", parent=None, is_dir=True)

    @staticmethod
    def _node_state(node: VfsNode) -> dict:
        return {
            "name": node.name,
            "dentry_pa": node.dentry_pa,
            "inode_pa": node.inode_pa,
            "is_dir": node.is_dir,
            "data_pages": list(node.data_pages),
            "size_bytes": node.size_bytes,
            "children": [VFS._node_state(child)
                         for child in node.children.values()],
        }

    @staticmethod
    def _node_from_state(state: dict, parent: Optional[VfsNode]) -> VfsNode:
        node = VfsNode(
            name=str(state["name"]),
            dentry_pa=int(state["dentry_pa"]),
            inode_pa=int(state["inode_pa"]),
            is_dir=bool(state["is_dir"]),
            parent=parent,
            data_pages=[int(p) for p in state["data_pages"]],
            size_bytes=int(state["size_bytes"]),
        )
        for child_state in state["children"]:
            child = VFS._node_from_state(child_state, node)
            node.children[child.name] = child
        return node

    def state_dict(self) -> dict:
        """The whole tree; open FileHandles are transient (snapshots are
        taken at quiescent points, between workload phases)."""
        return {
            "sb_token": self._sb_token,
            "root": self._node_state(self.root),
            "stats": self.stats.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self._sb_token = int(state["sb_token"])
        self.root = self._node_from_state(state["root"], None)
        self.stats.load_state(state["stats"])

    # ------------------------------------------------------------------
    # Object construction
    # ------------------------------------------------------------------
    def _make_node(self, name: str, parent: Optional[VfsNode], is_dir: bool,
                   mode: int = 0o755, uid: int = 0, gid: int = 0) -> VfsNode:
        kernel = self.kernel
        dentry_pa = kernel.slab.cache(DENTRY).alloc()
        inode_pa = kernel.slab.cache(INODE).alloc()
        node = VfsNode(name, dentry_pa, inode_pa, is_dir, parent)
        # dentry initialization (d_alloc + d_instantiate).
        write = kernel.write_field
        write(dentry_pa, DENTRY, "d_flags", 1 if is_dir else 2)
        write(dentry_pa, DENTRY, "d_seq", 0)
        write(dentry_pa, DENTRY, "d_hash", name_hash(name) & 0xFFFF_FFFF)
        write(dentry_pa, DENTRY, "d_parent",
              parent.dentry_pa if parent else dentry_pa)
        write(dentry_pa, DENTRY, "d_name", name_hash(name))
        # Short names live inline in d_iname; write the words used.
        name_words = min(4, max(1, (len(name) + WORD_BYTES - 1) // WORD_BYTES))
        for word in range(name_words):
            write(dentry_pa, DENTRY, "d_iname", 0x6E61_6D65, index=word)
        write(dentry_pa, DENTRY, "d_op", 0xD0_0D)
        write(dentry_pa, DENTRY, "d_sb", self._sb_token)
        write(dentry_pa, DENTRY, "d_lockref", 0)
        write(dentry_pa, DENTRY, "d_inode", inode_pa)
        # inode initialization.
        write(inode_pa, INODE, "i_mode", (0o40000 if is_dir else 0o100000) | mode)
        write(inode_pa, INODE, "i_uid", uid)
        write(inode_pa, INODE, "i_gid", gid)
        write(inode_pa, INODE, "i_op", 0x10_0D)
        write(inode_pa, INODE, "i_sb", self._sb_token)
        write(inode_pa, INODE, "i_nlink", 2 if is_dir else 1)
        write(inode_pa, INODE, "i_size", 0)
        write(inode_pa, INODE, "i_count", 1)
        self.stats.add("nodes_created")
        if parent is not None:
            # Link into the parent (list pointer churn, not sensitive).
            write(parent.dentry_pa, DENTRY, "d_subdirs", dentry_pa)
            write(dentry_pa, DENTRY, "d_child", parent.dentry_pa)
            parent.children[name] = node
        return node

    # ------------------------------------------------------------------
    # dget/dput: the hot reference-count churn
    # ------------------------------------------------------------------
    def _dget(self, node: VfsNode) -> None:
        kernel = self.kernel
        count = kernel.read_field(node.dentry_pa, DENTRY, "d_lockref")
        kernel.write_field(node.dentry_pa, DENTRY, "d_lockref", count + 1)
        if count == 0:
            # Back in use: unlink from the LRU (list pointers + flags).
            kernel.write_field(node.dentry_pa, DENTRY, "d_lru", 0, index=0)
            kernel.write_field(node.dentry_pa, DENTRY, "d_lru", 0, index=1)
            flags = kernel.read_field(node.dentry_pa, DENTRY, "d_flags")
            kernel.write_field(node.dentry_pa, DENTRY, "d_flags",
                               flags & ~0x80)
        self.stats.add("dget")

    def _dput(self, node: VfsNode) -> None:
        kernel = self.kernel
        count = kernel.read_field(node.dentry_pa, DENTRY, "d_lockref")
        kernel.write_field(node.dentry_pa, DENTRY, "d_lockref", count - 1)
        if count == 1:
            # Last reference dropped: park the dentry on the LRU list
            # (dentry_lru_add: two list pointers plus the flags word).
            kernel.write_field(node.dentry_pa, DENTRY, "d_lru",
                               node.dentry_pa ^ 0x1, index=0)
            kernel.write_field(node.dentry_pa, DENTRY, "d_lru",
                               node.dentry_pa ^ 0x2, index=1)
            flags = kernel.read_field(node.dentry_pa, DENTRY, "d_flags")
            kernel.write_field(node.dentry_pa, DENTRY, "d_flags",
                               flags | 0x80)
        self.stats.add("dput")

    # ------------------------------------------------------------------
    # Path walking
    # ------------------------------------------------------------------
    @staticmethod
    def _components(path: str) -> List[str]:
        return [part for part in path.split("/") if part]

    def lookup(self, path: str) -> Optional[VfsNode]:
        """Resolve ``path`` through the dentry cache.

        Every traversed component is dget/dput-ed, like a real path walk;
        returns ``None`` when a component is missing.
        """
        kernel = self.kernel
        node = self.root
        touched = [node]
        self._dget(node)
        found: Optional[VfsNode] = node
        for component in self._components(path):
            kernel.cpu.compute(kernel.op_costs.path_component)
            child = node.children.get(component)
            self.stats.add("dcache_lookups")
            if child is None:
                self.stats.add("dcache_misses")
                found = None
                break
            self._dget(child)
            touched.append(child)
            node = child
            found = child
        for touched_node in reversed(touched):
            self._dput(touched_node)
        return found

    def _lookup_dir(self, path: str) -> VfsNode:
        node = self.lookup(path)
        if node is None or not node.is_dir:
            raise AllocationError(f"no such directory: {path}")
        return node

    # ------------------------------------------------------------------
    # Namespace operations
    # ------------------------------------------------------------------
    def create(self, path: str, is_dir: bool = False,
               mode: int = 0o644, uid: int = 0, gid: int = 0) -> VfsNode:
        """Create a file or directory (parents must exist)."""
        components = self._components(path)
        if not components:
            raise AllocationError("cannot create the root")
        parent_path = "/" + "/".join(components[:-1])
        parent = self._lookup_dir(parent_path)
        name = components[-1]
        if name in parent.children:
            raise AllocationError(f"already exists: {path}")
        self._dget(parent)
        node = self._make_node(name, parent, is_dir, mode, uid, gid)
        self._dput(parent)
        return node

    def mkdir_p(self, path: str) -> VfsNode:
        """Create a directory chain (like ``mkdir -p``)."""
        node = self.root
        walked = "/"
        for component in self._components(path):
            walked = walked.rstrip("/") + "/" + component
            if component in node.children:
                node = node.children[component]
            else:
                node = self.create(walked, is_dir=True)
        return node

    def unlink(self, path: str) -> None:
        """Remove a file: clears ``d_inode`` (sensitive!) and frees."""
        node = self.lookup(path)
        if node is None or node.parent is None:
            raise AllocationError(f"cannot unlink {path}")
        kernel = self.kernel
        kernel.write_field(node.dentry_pa, DENTRY, "d_inode", 0)
        kernel.write_field(node.dentry_pa, DENTRY, "d_flags", 0)
        kernel.write_field(node.parent.dentry_pa, DENTRY, "d_subdirs", 0)
        for paddr in node.data_pages:
            kernel.allocator.free(paddr)
        node.data_pages.clear()
        del node.parent.children[node.name]
        kernel.slab.cache(INODE).free(node.inode_pa)
        kernel.slab.cache(DENTRY).free(node.dentry_pa)
        self.stats.add("unlinks")

    def rename(self, old_path: str, new_name: str) -> None:
        """Rename within the same directory (writes d_name/d_seq)."""
        node = self.lookup(old_path)
        if node is None or node.parent is None:
            raise AllocationError(f"cannot rename {old_path}")
        kernel = self.kernel
        seq = kernel.read_field(node.dentry_pa, DENTRY, "d_seq")
        kernel.write_field(node.dentry_pa, DENTRY, "d_seq", seq + 1)
        kernel.write_field(node.dentry_pa, DENTRY, "d_name",
                           name_hash(new_name))
        kernel.write_field(node.dentry_pa, DENTRY, "d_seq", seq + 2)
        del node.parent.children[node.name]
        node.parent.children[new_name] = node
        node.name = new_name
        self.stats.add("renames")

    # ------------------------------------------------------------------
    # stat / attributes
    # ------------------------------------------------------------------
    def getattr(self, node: VfsNode) -> Dict[str, int]:
        """Read the inode attributes (the work behind stat)."""
        kernel = self.kernel
        return {
            name: kernel.read_field(node.inode_pa, INODE, name)
            for name in ("i_mode", "i_uid", "i_gid", "i_size",
                         "i_mtime", "i_nlink")
        }

    def chmod(self, path: str, mode: int) -> None:
        node = self.lookup(path)
        if node is None:
            raise AllocationError(f"no such file: {path}")
        self.kernel.write_field(node.inode_pa, INODE, "i_mode", mode)

    def chown(self, path: str, uid: int, gid: int) -> None:
        node = self.lookup(path)
        if node is None:
            raise AllocationError(f"no such file: {path}")
        self.kernel.write_field(node.inode_pa, INODE, "i_uid", uid)
        self.kernel.write_field(node.inode_pa, INODE, "i_gid", gid)

    def utimes(self, path: str, mtime: int) -> None:
        node = self.lookup(path)
        if node is None:
            raise AllocationError(f"no such file: {path}")
        self.kernel.write_field(node.inode_pa, INODE, "i_mtime", mtime)

    # ------------------------------------------------------------------
    # File I/O
    # ------------------------------------------------------------------
    def open(self, path: str, create: bool = False) -> FileHandle:
        node = self.lookup(path)
        if node is None:
            if not create:
                raise AllocationError(f"no such file: {path}")
            node = self.create(path)
        kernel = self.kernel
        file_pa = kernel.slab.cache(FILE_OBJ).alloc()
        write = kernel.write_field
        write(file_pa, FILE_OBJ, "f_count", 1)
        write(file_pa, FILE_OBJ, "f_flags", 2)
        write(file_pa, FILE_OBJ, "f_mode", 3)
        write(file_pa, FILE_OBJ, "f_pos", 0)
        write(file_pa, FILE_OBJ, "f_dentry", node.dentry_pa)
        write(file_pa, FILE_OBJ, "f_op", 0xF0_0D)
        self._dget(node)
        self.stats.add("opens")
        return FileHandle(node=node, file_pa=file_pa)

    def close(self, handle: FileHandle) -> None:
        if handle.closed:
            raise AllocationError("double close")
        kernel = self.kernel
        kernel.write_field(handle.file_pa, FILE_OBJ, "f_count", 0)
        kernel.slab.cache(FILE_OBJ).free(handle.file_pa)
        self._dput(handle.node)
        handle.closed = True
        self.stats.add("closes")

    def write_file(self, handle: FileHandle, nbytes: int) -> None:
        """Append ``nbytes`` of data (bulk-modelled content)."""
        kernel = self.kernel
        node = handle.node
        end = handle.pos + nbytes
        while len(node.data_pages) * PAGE_BYTES < end:
            node.data_pages.append(kernel.alloc_page("page_cache"))
        remaining = nbytes
        while remaining > 0:
            page_index = handle.pos // PAGE_BYTES
            page_offset = handle.pos % PAGE_BYTES
            chunk = min(remaining, PAGE_BYTES - page_offset)
            paddr = node.data_pages[page_index] + page_offset
            kernel.kwrite_block(
                kernel.linear_map.kva(paddr), max(1, chunk // WORD_BYTES)
            )
            handle.pos += chunk
            remaining -= chunk
        node.size_bytes = max(node.size_bytes, end)
        kernel.write_field(node.inode_pa, INODE, "i_size", node.size_bytes)
        kernel.write_field(node.inode_pa, INODE, "i_mtime", kernel.uptime())
        kernel.write_field(handle.file_pa, FILE_OBJ, "f_pos", handle.pos)
        self.stats.add("bytes_written", nbytes)

    def read_file(self, handle: FileHandle, nbytes: int) -> int:
        """Read up to ``nbytes`` from the current position."""
        kernel = self.kernel
        node = handle.node
        available = max(0, node.size_bytes - handle.pos)
        nbytes = min(nbytes, available)
        remaining = nbytes
        while remaining > 0:
            page_index = handle.pos // PAGE_BYTES
            page_offset = handle.pos % PAGE_BYTES
            chunk = min(remaining, PAGE_BYTES - page_offset)
            paddr = node.data_pages[page_index] + page_offset
            kernel.cpu.read_block(
                kernel.linear_map.kva(paddr), max(1, chunk // WORD_BYTES)
            )
            handle.pos += chunk
            remaining -= chunk
        kernel.write_field(handle.file_pa, FILE_OBJ, "f_pos", handle.pos)
        self.stats.add("bytes_read", nbytes)
        return nbytes
