"""User virtual-memory management: VMAs, demand paging, COW, fork.

Each process owns an ``MM``: a real 3-level translation-table tree in
simulated physical memory plus a VMA list.  All runtime descriptor
writes go through the kernel's :class:`~repro.kernel.pgtable_mgmt.PgTableWriter`,
so under Hypernel every mapping created or torn down is one verified
hypercall — the mechanistic source of Hypernel's fork/exec/mmap
overheads in Table 1.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.config import PAGE_BYTES, PAGE_WORDS
from repro.errors import (
    AllocationError,
    PermissionFault,
    SecurityViolation,
    SimulationError,
    TranslationFault,
)
from repro.arch.pagetable import (
    index_for_level,
    invalid_desc,
    make_page_desc,
    make_table_desc,
)
from repro.utils.stats import StatSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel


@dataclass
class VMA:
    """One user virtual-memory area."""

    start: int
    end: int
    writable: bool
    kind: str  # "text", "data", "stack", "anon", "file"
    file_key: Optional[str] = None

    def contains(self, vaddr: int) -> bool:
        return self.start <= vaddr < self.end


@dataclass
class MM:
    """One address space: translation tables + VMAs + page bookkeeping."""

    pgd: int
    asid: int
    vmas: List[VMA] = field(default_factory=list)
    #: user page mappings for iteration (the tables stay authoritative
    #: for translation; this mirror makes fork/teardown loops cheap)
    pages: Dict[int, int] = field(default_factory=dict)
    #: software COW marks per mapped user page
    cow: Dict[int, bool] = field(default_factory=dict)
    #: translation-table pages by index path, e.g. (i,) -> L2, (i, j) -> L3
    tables: Dict[tuple, int] = field(default_factory=dict)

    def find_vma(self, vaddr: int) -> Optional[VMA]:
        for vma in self.vmas:
            if vma.contains(vaddr):
                return vma
        return None

    def state_dict(self) -> dict:
        """Dict insertion order is preserved: fork/teardown iterate
        ``pages`` and must replay in the same order after a restore."""
        return {
            "pgd": self.pgd,
            "asid": self.asid,
            "vmas": [[v.start, v.end, v.writable, v.kind, v.file_key]
                     for v in self.vmas],
            "pages": [[va, pa] for va, pa in self.pages.items()],
            "cow": [[va, bool(flag)] for va, flag in self.cow.items()],
            "tables": [[list(path), table]
                       for path, table in self.tables.items()],
        }

    @classmethod
    def from_state(cls, state: dict) -> "MM":
        mm = cls(pgd=int(state["pgd"]), asid=int(state["asid"]))
        mm.vmas = [
            VMA(int(start), int(end), bool(writable), str(kind), file_key)
            for start, end, writable, kind, file_key in state["vmas"]
        ]
        mm.pages = {int(va): int(pa) for va, pa in state["pages"]}
        mm.cow = {int(va): bool(flag) for va, flag in state["cow"]}
        mm.tables = {tuple(int(i) for i in path): int(table)
                     for path, table in state["tables"]}
        return mm


class UserVmm:
    """The kernel's user-memory subsystem."""

    #: default user layout bases
    TEXT_BASE = 0x0040_0000
    DATA_BASE = 0x1000_0000
    MMAP_BASE = 0x2000_0000
    STACK_TOP = 0x3F_F000_0000

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self._next_asid = 1
        # Hardware ASIDs are a small finite namespace; destroyed address
        # spaces return theirs to the pool (lowest-first reuse), exactly
        # as an ASID-rollover kernel would after a generation bump.
        self._free_asids: List[int] = []
        self._page_refs: Dict[int, int] = {}
        self.stats = StatSet("vmm")

    def state_dict(self) -> dict:
        """Per-MM state lives with its owning task (ProcessManager)."""
        return {
            "next_asid": self._next_asid,
            "free_asids": sorted(self._free_asids),
            "page_refs": [[paddr, refs]
                          for paddr, refs in self._page_refs.items()],
            "stats": self.stats.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self._next_asid = int(state["next_asid"])
        self._free_asids = [int(a) for a in state.get("free_asids", [])]
        heapq.heapify(self._free_asids)
        self._page_refs = {int(paddr): int(refs)
                           for paddr, refs in state["page_refs"]}
        self.stats.load_state(state["stats"])

    # ------------------------------------------------------------------
    # MM lifecycle
    # ------------------------------------------------------------------
    def create_mm(self) -> MM:
        pgd = self._alloc_table(is_root=True)
        if self._free_asids:
            asid = heapq.heappop(self._free_asids)
        else:
            asid = self._next_asid
            self._next_asid += 1
        mm = MM(pgd=pgd, asid=asid)
        self.stats.add("mm_created")
        return mm

    def destroy_mm(self, mm: MM) -> None:
        """Unmap everything and free pages/tables."""
        kernel = self.kernel
        for vaddr in list(mm.pages):
            self._unmap_page(mm, vaddr)
        for path in sorted(mm.tables, key=len, reverse=True):
            table = mm.tables.pop(path)
            # Unlink from the parent before retiring the page: Hypersec
            # refuses to release a table a live tree still references.
            parent = mm.tables[path[:-1]] if len(path) > 1 else mm.pgd
            kernel.pgwriter.write_desc(
                parent + path[-1] * 8, invalid_desc(), level=len(path)
            )
            kernel.pgwriter.on_table_free(table)
            kernel.allocator.free(table)
        kernel.pgwriter.on_table_free(mm.pgd)
        kernel.allocator.free(mm.pgd)
        kernel.cpu.tlbi_asid(mm.asid)
        heapq.heappush(self._free_asids, mm.asid)
        self.stats.add("mm_destroyed")

    def _alloc_table(self, is_root: bool = False) -> int:
        kernel = self.kernel
        table = kernel.allocator.alloc("pgtable")
        # New tables must start invalid; the kernel zeroes them before
        # handing them to the walker (and before Hypersec locks them).
        kernel.zero_page(table)
        kernel.pgwriter.on_table_alloc(table, is_root=is_root)
        return table

    # ------------------------------------------------------------------
    # VMA management
    # ------------------------------------------------------------------
    def add_vma(
        self,
        mm: MM,
        start: int,
        size: int,
        writable: bool,
        kind: str,
        file_key: Optional[str] = None,
    ) -> VMA:
        end = start + size
        for existing in mm.vmas:
            if start < existing.end and existing.start < end:
                raise AllocationError(
                    f"VMA [{start:#x},{end:#x}) overlaps existing "
                    f"[{existing.start:#x},{existing.end:#x})"
                )
        vma = VMA(start, end, writable, kind, file_key)
        mm.vmas.append(vma)
        self.stats.add("vma_created")
        return vma

    def remove_vma(self, mm: MM, vma: VMA) -> None:
        """munmap: drop the VMA and every page mapped inside it."""
        for vaddr in [v for v in mm.pages if vma.contains(v)]:
            self._unmap_page(mm, vaddr)
        mm.vmas.remove(vma)
        self.kernel.cpu.tlbi_asid(mm.asid)
        self.stats.add("vma_removed")

    # ------------------------------------------------------------------
    # Page mapping (all descriptor writes via the pgwriter)
    # ------------------------------------------------------------------
    def _ensure_tables(self, mm: MM, vaddr: int) -> int:
        """Ensure L2/L3 tables exist for ``vaddr``; return the L3 table."""
        kernel = self.kernel
        i1 = index_for_level(vaddr, 1)
        if (i1,) not in mm.tables:
            l2 = self._alloc_table()
            mm.tables[(i1,)] = l2
            kernel.pgwriter.write_desc(mm.pgd + i1 * 8, make_table_desc(l2), level=1)
        l2 = mm.tables[(i1,)]
        i2 = index_for_level(vaddr, 2)
        if (i1, i2) not in mm.tables:
            l3 = self._alloc_table()
            mm.tables[(i1, i2)] = l3
            kernel.pgwriter.write_desc(l2 + i2 * 8, make_table_desc(l3), level=2)
        return mm.tables[(i1, i2)]

    def map_page(
        self,
        mm: MM,
        vaddr: int,
        paddr: int,
        writable: bool,
        cow: bool = False,
        executable: bool = False,
    ) -> None:
        """Install a user 4 KB mapping."""
        vaddr &= ~(PAGE_BYTES - 1)
        l3 = self._ensure_tables(mm, vaddr)
        desc = make_page_desc(
            paddr,
            writable=writable and not cow,
            executable=executable,
            cacheable=True,
            user=True,
            cow=cow,
        )
        self.kernel.pgwriter.write_desc(
            l3 + index_for_level(vaddr, 3) * 8, desc, level=3
        )
        mm.pages[vaddr] = paddr
        mm.cow[vaddr] = cow
        self._page_refs[paddr] = self._page_refs.get(paddr, 0) + 1
        self.kernel.env.page_lifecycle(1)
        self.stats.add("pages_mapped")

    def _unmap_page(self, mm: MM, vaddr: int) -> None:
        kernel = self.kernel
        l3 = mm.tables.get(
            (index_for_level(vaddr, 1), index_for_level(vaddr, 2))
        )
        if l3 is not None:
            kernel.pgwriter.write_desc(
                l3 + index_for_level(vaddr, 3) * 8, invalid_desc(), level=3
            )
        paddr = mm.pages.pop(vaddr)
        mm.cow.pop(vaddr, None)
        self._put_page(paddr)
        self.kernel.env.page_lifecycle(1)
        self.stats.add("pages_unmapped")

    def _put_page(self, paddr: int) -> None:
        refs = self._page_refs.get(paddr, 0) - 1
        if refs <= 0:
            self._page_refs.pop(paddr, None)
            if self.kernel.allocator.purpose_of(paddr) is not None:
                self.kernel.allocator.free(paddr)
        else:
            self._page_refs[paddr] = refs

    # ------------------------------------------------------------------
    # Fault handling: demand paging and copy-on-write
    # ------------------------------------------------------------------
    def handle_fault(self, mm: MM, vaddr: int, is_write: bool) -> None:
        """Service a user page fault (the kernel's do_page_fault)."""
        kernel = self.kernel
        kernel.cpu.compute(kernel.op_costs.fault_entry)
        self.stats.add("faults")
        page_va = vaddr & ~(PAGE_BYTES - 1)
        vma = mm.find_vma(vaddr)
        if vma is None:
            raise SecurityViolation(
                f"segmentation fault at {vaddr:#x} (no VMA)", policy="segv"
            )
        if is_write and not vma.writable:
            raise SecurityViolation(
                f"write to read-only VMA at {vaddr:#x}", policy="segv"
            )
        if page_va in mm.pages:
            if is_write and mm.cow.get(page_va):
                self._cow_break(mm, page_va, vma)
                return
            raise SecurityViolation(
                f"unexpected fault on mapped page {vaddr:#x}", policy="segv"
            )
        # Demand paging: anonymous pages are zeroed, file pages "read in".
        paddr = kernel.allocator.alloc("user")
        kernel.zero_page(paddr)  # clear_page / read data
        self.stats.add("demand_pages")
        self.map_page(
            mm,
            page_va,
            paddr,
            writable=vma.writable,
            executable=vma.kind == "text",
        )

    def _cow_break(self, mm: MM, page_va: int, vma: VMA) -> None:
        """Resolve a COW write fault: copy or re-arm the page."""
        kernel = self.kernel
        old_paddr = mm.pages[page_va]
        self.stats.add("cow_breaks")
        if self._page_refs.get(old_paddr, 1) > 1:
            new_paddr = kernel.allocator.alloc("user")
            kernel.cpu.read_block(kernel.linear_map.kva(old_paddr), PAGE_WORDS)
            kernel.cpu.write_block(kernel.linear_map.kva(new_paddr), PAGE_WORDS)
            kernel.memory_copy(old_paddr, new_paddr, PAGE_WORDS)
            self._page_refs[old_paddr] -= 1
            self._page_refs[new_paddr] = 0  # map_page will bump it
        else:
            new_paddr = old_paddr
            self._page_refs[new_paddr] -= 1  # rebalanced by map_page
        mm.pages.pop(page_va)
        mm.cow.pop(page_va, None)
        self.map_page(
            mm,
            page_va,
            new_paddr,
            writable=True,
            executable=vma.kind == "text",
        )
        kernel.cpu.tlbi_va(page_va)

    # ------------------------------------------------------------------
    # fork()
    # ------------------------------------------------------------------
    def fork_mm(self, parent: MM) -> MM:
        """Duplicate an address space with COW sharing (copy_mm)."""
        kernel = self.kernel
        child = self.create_mm()
        for vma in parent.vmas:
            child.vmas.append(VMA(vma.start, vma.end, vma.writable, vma.kind, vma.file_key))
        for vaddr, paddr in list(parent.pages.items()):
            vma = parent.find_vma(vaddr)
            writable = vma.writable if vma else True
            executable = vma.kind == "text" if vma else False
            if writable:
                # Re-arm the parent PTE as COW/read-only ...
                if not parent.cow.get(vaddr):
                    self._rewrite_pte(parent, vaddr, paddr, cow=True, executable=executable)
                    parent.cow[vaddr] = True
                # ... and share the frame COW with the child.
                self.map_page(child, vaddr, paddr, writable=True, cow=True,
                              executable=executable)
            else:
                self.map_page(child, vaddr, paddr, writable=False,
                              executable=executable)
        kernel.cpu.tlbi_asid(parent.asid)
        self.stats.add("mm_forked")
        return child

    def _rewrite_pte(
        self, mm: MM, vaddr: int, paddr: int, cow: bool, executable: bool
    ) -> None:
        l3 = mm.tables[
            (index_for_level(vaddr, 1), index_for_level(vaddr, 2))
        ]
        desc = make_page_desc(
            paddr,
            writable=False,
            executable=executable,
            cacheable=True,
            user=True,
            cow=cow,
        )
        self.kernel.pgwriter.write_desc(l3 + index_for_level(vaddr, 3) * 8, desc, level=3)

    # ------------------------------------------------------------------
    # User access with fault retry (used by workload drivers)
    # ------------------------------------------------------------------
    def user_touch(self, mm: MM, vaddr: int, is_write: bool = False, value: int = 0) -> int:
        """Perform one EL0 access, servicing faults like hardware+kernel.

        ``mm`` must be the address space the CPU is currently running
        (TTBR0/ASID), otherwise translations would resolve against a
        different process's tables.
        """
        cpu = self.kernel.cpu
        if cpu.mmu.asid != mm.asid:
            raise SimulationError(
                f"user_touch against ASID {mm.asid} while CPU runs "
                f"ASID {cpu.mmu.asid} — context-switch first"
            )
        for _ in range(4):
            try:
                if is_write:
                    cpu.write(vaddr, value, el=0)
                    return 0
                return cpu.read(vaddr, el=0)
            except (TranslationFault, PermissionFault):
                self.handle_fault(mm, vaddr, is_write)
        raise SecurityViolation(
            f"fault livelock at {vaddr:#x}", policy="segv"
        )
