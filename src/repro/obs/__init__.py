"""Unified observability layer (DESIGN.md section 5e).

Three pieces, all strictly read-only with respect to the simulated
machine (collection never advances the clock or mutates component
state, so results are byte-identical with or without it):

* :mod:`repro.obs.metrics` — :class:`RunMetrics`: every component
  :class:`~repro.utils.stats.StatSet`, derived gauges (FIFO high-water
  vs depth, ring occupancy, bitmap-cache hit rate, IRQs per detection)
  and hard *integrity checks* that make silent event loss in the MBM
  pipeline fail a run loudly unless explicitly waived.
* :mod:`repro.obs.profiler` — cycle attribution: splits ``sim_cycles``
  into exactly-recoverable fixed-cost buckets (stage-1 vs stage-2 walk
  descriptors, hypercall/trap round trips, world switches, ...) plus
  the MBM's off-critical-path occupancy.
* :mod:`repro.obs.export` — machine-readable JSONL export for
  :class:`~repro.tools.trace.BusTracer` traces, MBM detection streams
  and metric reports.
* :mod:`repro.obs.service` — :class:`ServiceStats`: daemon-level
  counters and gauges for the ``repro serve`` experiment service
  (queue depth, warm/cold pool dispatches, per-client accounting).
"""

from repro.obs.export import (
    DetectionTrace,
    bus_trace_records,
    jsonl_dumps,
    metrics_records,
    write_jsonl,
)
from repro.obs.metrics import (
    INTEGRITY_CHECK_SPECS,
    IntegrityCheck,
    RunMetrics,
    collect_metrics,
    verify_payload_integrity,
)
from repro.obs.profiler import CycleAttribution, attribute_cycles
from repro.obs.service import SERVICE_COUNTERS, ServiceStats

__all__ = [
    "CycleAttribution",
    "SERVICE_COUNTERS",
    "ServiceStats",
    "DetectionTrace",
    "INTEGRITY_CHECK_SPECS",
    "IntegrityCheck",
    "RunMetrics",
    "attribute_cycles",
    "bus_trace_records",
    "collect_metrics",
    "jsonl_dumps",
    "metrics_records",
    "verify_payload_integrity",
    "write_jsonl",
]
