"""Machine-readable export: JSONL traces and metric records.

Everything here serializes to *JSON Lines* — one self-describing JSON
object per line, each carrying a ``"type"`` discriminator — so traces
from different sources (bus transactions, MBM detections, metric
reports) can be concatenated, streamed and grepped with standard
tooling.

Sources:

* :func:`bus_trace_records` — a :class:`~repro.tools.trace.BusTracer`'s
  captured transactions.
* :class:`DetectionTrace` — the MBM detection path, observed through
  the decision unit's ``on_hit`` hook: every monitored-write hit with
  its cycle stamp and whether the ring buffer actually queued it.
* :func:`metrics_records` — a flattened
  :class:`~repro.obs.metrics.RunMetrics` report.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, List, Optional, Union

#: Type discriminators for exported records.
RECORD_BUS = "bus_txn"
RECORD_DETECTION = "mbm_detection"
RECORD_COUNTER = "counter"
RECORD_GAUGE = "gauge"
RECORD_CHECK = "integrity_check"
RECORD_ATTRIBUTION = "cycle_attribution"


def jsonl_dumps(records: Iterable[dict]) -> str:
    """Records as JSONL text (sorted keys: byte-stable for diffing)."""
    return "".join(
        json.dumps(record, sort_keys=True) + "\n" for record in records
    )


def write_jsonl(
    destination: Union[str, IO[str]], records: Iterable[dict]
) -> int:
    """Write records to a path or open text file; returns the count."""
    text_records = [json.dumps(record, sort_keys=True) for record in records]
    payload = "".join(line + "\n" for line in text_records)
    if hasattr(destination, "write"):
        destination.write(payload)  # type: ignore[union-attr]
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(payload)
    return len(text_records)


def read_jsonl(source: Union[str, IO[str]]) -> List[dict]:
    """Parse a JSONL document back into records (inverse of write)."""
    if hasattr(source, "read"):
        text = source.read()  # type: ignore[union-attr]
    else:
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()
    return [json.loads(line) for line in text.splitlines() if line.strip()]


# ----------------------------------------------------------------------
# Bus traces
# ----------------------------------------------------------------------
def bus_trace_records(tracer) -> List[dict]:
    """A BusTracer's capture buffer as typed JSONL records."""
    records = [
        dict(record.as_dict(), type=RECORD_BUS) for record in tracer.records
    ]
    if tracer.dropped:
        records.append(
            {"type": RECORD_BUS, "dropped": tracer.dropped}
        )
    return records


# ----------------------------------------------------------------------
# MBM detection stream
# ----------------------------------------------------------------------
class DetectionTrace:
    """Record every MBM detection through ``DecisionUnit.on_hit``.

    The hook fires once per monitored-write hit with the event address,
    value (``None`` for block-modelled streams) and whether the ring
    buffer queued it — a dropped event shows up here with
    ``"queued": false`` even though it never reached Hypersec, which is
    what makes loss debuggable.  Attaching costs one attribute store;
    each recorded hit is one dict append (no simulated cycles).

    ::

        with DetectionTrace(system.mbm) as trace:
            ... run workload ...
        write_jsonl("detections.jsonl", trace.records)
    """

    def __init__(self, mbm, capacity: int = 100_000):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.mbm = mbm
        self.capacity = capacity
        self.records: List[dict] = []
        self.dropped = 0
        self._clock = mbm.platform.clock
        self._attached = False

    def attach(self) -> "DetectionTrace":
        if self.mbm.decision.on_hit is not None:
            raise ValueError("decision unit already has an on_hit observer")
        self.mbm.decision.on_hit = self._record
        self._attached = True
        return self

    def detach(self) -> "DetectionTrace":
        if self._attached:
            self.mbm.decision.on_hit = None
            self._attached = False
        return self

    def __enter__(self) -> "DetectionTrace":
        return self.attach()

    def __exit__(self, *exc_info) -> None:
        self.detach()

    def _record(self, paddr: int, value: Optional[int], queued: bool) -> None:
        if len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(
            {
                "type": RECORD_DETECTION,
                "cycle": self._clock.now,
                "paddr": paddr,
                "value": value,
                "queued": queued,
            }
        )

    def __len__(self) -> int:
        return len(self.records)


# ----------------------------------------------------------------------
# Metric reports
# ----------------------------------------------------------------------
def metrics_records(metrics) -> List[dict]:
    """Flatten a RunMetrics report into typed JSONL records."""
    records: List[dict] = []
    for component, counters in sorted(metrics.components.items()):
        for key, value in sorted(counters.items()):
            records.append(
                {
                    "type": RECORD_COUNTER,
                    "system": metrics.system,
                    "component": component,
                    "key": key,
                    "value": value,
                }
            )
    for key, value in sorted(metrics.gauges.items()):
        records.append(
            {
                "type": RECORD_GAUGE,
                "system": metrics.system,
                "key": key,
                "value": value,
            }
        )
    for check in metrics.checks:
        records.append(
            dict(
                check.to_dict(),
                type=RECORD_CHECK,
                system=metrics.system,
                passed=check.passed,
            )
        )
    for key, cycles in sorted(metrics.attribution.items()):
        records.append(
            {
                "type": RECORD_ATTRIBUTION,
                "system": metrics.system,
                "key": key,
                "cycles": cycles,
                "sim_cycles": metrics.sim_cycles,
            }
        )
    return records
