"""RunMetrics: per-run component counters, gauges and integrity checks.

The MBM pipeline counts its losses (``mbm_fifo.dropped``,
``mbm_ring.overflow_drops``, ``mbm_decision.lost_events``) but a counter
nobody reads is a silent failure — exactly what the CaptureFifo
docstring warns must never happen.  :func:`collect_metrics` gathers
every component :class:`~repro.utils.stats.StatSet` on a system into
one serializable :class:`RunMetrics` report and turns the loss counters
into hard *integrity checks*: any non-zero value fails the run loudly
(:class:`~repro.errors.IntegrityError`) unless the caller explicitly
waives that named check.

Collection is read-only on the simulated machine: StatSet reads flush
batched counters but never charge cycles, and the ring-occupancy gauge
uses the bus backdoor (``peek``).  A run with metrics collection is
cycle-for-cycle identical to one without.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import IntegrityError
from repro.obs.profiler import attribute_cycles
from repro.utils.stats import StatSet

#: The integrity checks, as ``(component, counter, meaning)``.  Every
#: counter is an event-loss indicator: non-zero means the monitoring
#: pipeline missed writes and any detection count from the run is
#: suspect.  ``mbm_fifo.overrun`` is the sticky hardware flag (latched
#: even if the dropped counter is later reset); the rest are exact drop
#: counts at each pipeline stage.
INTEGRITY_CHECK_SPECS: Tuple[Tuple[str, str, str], ...] = (
    ("mbm_fifo", "overrun", "capture FIFO latched its sticky overrun flag"),
    ("mbm_fifo", "dropped", "events dropped at the capture FIFO"),
    ("mbm_ring", "overflow_drops", "events dropped by the full ring buffer"),
    ("mbm_decision", "lost_events",
     "detections the decision unit could not queue"),
    ("mbm", "writeback_hazards",
     "dirty-line writebacks covered monitored words (values unseen)"),
)


@dataclass
class IntegrityCheck:
    """One named zero-tolerance check over a component counter."""

    component: str
    counter: str
    value: int
    waived: bool = False
    description: str = ""

    @property
    def name(self) -> str:
        """``component.counter`` — the handle used to waive the check."""
        return f"{self.component}.{self.counter}"

    @property
    def passed(self) -> bool:
        return self.value == 0

    @property
    def failed(self) -> bool:
        """True when the check fails the run (non-zero and not waived)."""
        return not self.passed and not self.waived

    def to_dict(self) -> dict:
        return {
            "component": self.component,
            "counter": self.counter,
            "value": self.value,
            "waived": self.waived,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IntegrityCheck":
        return cls(
            component=str(data["component"]),
            counter=str(data["counter"]),
            value=int(data["value"]),
            waived=bool(data.get("waived", False)),
            description=str(data.get("description", "")),
        )


@dataclass
class RunMetrics:
    """Everything observable about one run, in one serializable report."""

    system: str
    sim_cycles: int
    components: Dict[str, Dict[str, int]] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    checks: List[IntegrityCheck] = field(default_factory=list)
    attribution: Dict[str, int] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """True when every integrity check passed or was waived."""
        return not self.failures

    @property
    def failures(self) -> List[IntegrityCheck]:
        return [check for check in self.checks if check.failed]

    def check(self, name: str) -> IntegrityCheck:
        """The check called ``component.counter`` (KeyError if absent)."""
        for candidate in self.checks:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no integrity check named {name!r}")

    def counter(self, component: str, key: str) -> int:
        """One component counter (0 when absent)."""
        return self.components.get(component, {}).get(key, 0)

    def raise_on_failure(self, context: str = "") -> None:
        """Raise :class:`IntegrityError` naming every failed check."""
        failures = self.failures
        if not failures:
            return
        where = f"{context}: " if context else ""
        detail = ", ".join(
            f"{check.name} = {check.value}" for check in failures
        )
        raise IntegrityError(
            f"{where}run integrity check failed on {self.system!r}: {detail} "
            f"(waive with the check name(s) to accept lossy monitoring)"
        )

    # ------------------------------------------------------------------
    # Serialization (must stay JSON-clean and deterministic: these dicts
    # travel inside runner payloads into the content-addressed cache and
    # through fork-server result frames, where byte-identity across
    # backends is asserted by tests).
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "system": self.system,
            "sim_cycles": self.sim_cycles,
            "components": {
                name: dict(sorted(counters.items()))
                for name, counters in sorted(self.components.items())
            },
            "gauges": dict(sorted(self.gauges.items())),
            "checks": [check.to_dict() for check in self.checks],
            "attribution": dict(sorted(self.attribution.items())),
        }

    @classmethod
    def from_dict(
        cls, data: dict, waive: Iterable[str] = ()
    ) -> "RunMetrics":
        """Rehydrate a report; ``waive`` marks named checks as waived
        (the consumer's waiver, applied on top of the collector's)."""
        metrics = cls(
            system=str(data["system"]),
            sim_cycles=int(data["sim_cycles"]),
            components={
                str(name): {str(k): int(v) for k, v in counters.items()}
                for name, counters in data.get("components", {}).items()
            },
            gauges={
                str(k): float(v) for k, v in data.get("gauges", {}).items()
            },
            checks=[
                IntegrityCheck.from_dict(item)
                for item in data.get("checks", [])
            ],
            attribution={
                str(k): int(v)
                for k, v in data.get("attribution", {}).items()
            },
        )
        _apply_waivers(metrics.checks, waive)
        return metrics

    # ------------------------------------------------------------------
    def format(self) -> str:
        """Human-readable report (the ``python -m repro metrics`` body)."""
        lines = [
            f"run metrics — system {self.system!r}, "
            f"{self.sim_cycles} simulated cycles",
            "",
            "integrity checks:",
        ]
        if not self.checks:
            lines.append("  (none: system has no MBM attached)")
        for check in self.checks:
            status = (
                "ok" if check.passed
                else "WAIVED" if check.waived
                else "FAILED"
            )
            lines.append(
                f"  [{status:>6s}] {check.name} = {check.value}"
                + (f"  ({check.description})" if not check.passed else "")
            )
        if self.gauges:
            lines += ["", "gauges:"]
            for key, value in sorted(self.gauges.items()):
                rendered = (
                    f"{value:.4f}" if isinstance(value, float)
                    and not value.is_integer() else f"{int(value)}"
                )
                lines.append(f"  {key:28s} {rendered}")
        if self.attribution:
            lines += ["", "cycle attribution:"]
            total = max(self.sim_cycles, 1)
            for key, cycles in sorted(
                self.attribution.items(), key=lambda kv: -kv[1]
            ):
                if key.startswith("mbm_busy"):
                    lines.append(f"  {key:28s} {cycles:>14d}  (off-path)")
                elif key == "macroop_replay":
                    # Part of the total, charged by cycle replay rather
                    # than step-by-step simulation; overlaps the derived
                    # buckets, so no exclusive percentage is shown.
                    lines.append(f"  {key:28s} {cycles:>14d}  (replayed)")
                else:
                    lines.append(
                        f"  {key:28s} {cycles:>14d}  "
                        f"({cycles / total * 100:5.1f}%)"
                    )
        return "\n".join(lines)


def _apply_waivers(
    checks: List[IntegrityCheck], waive: Iterable[str]
) -> None:
    waived = set(waive)
    if not waived:
        return
    known = {check.name for check in checks}
    unknown = waived - known
    if unknown and checks:
        raise IntegrityError(
            f"cannot waive unknown integrity check(s) "
            f"{sorted(unknown)}; known checks: {sorted(known)}"
        )
    for check in checks:
        if check.name in waived:
            check.waived = True


# ----------------------------------------------------------------------
# Collection
# ----------------------------------------------------------------------
def component_stat_sets(system) -> List[StatSet]:
    """Every :class:`StatSet` on a system, in a fixed traversal order
    (hardware, then CPU/MMU, then kernel, then EL2 residents, then the
    MBM pipeline, then the security applications)."""
    platform = system.platform
    mmu = system.cpu.mmu
    sets: List[StatSet] = [
        platform.bus.stats,
        platform.dram.stats,
        platform.l1.stats,
        platform.l2.stats,
        platform.caches.stats,
        platform.gic.stats,
        system.cpu.stats,
        mmu.stats,
        mmu.tlb.stats,
        mmu.stage2_tlb.stats,
        system.kernel.stats,
    ]
    if system.kernel.sys is not None:  # skeleton systems have no boot
        sets.append(system.kernel.sys.stats)
    if system.kvm is not None:
        sets.append(system.kvm.stats)
    if system.hypersec is not None:
        sets.append(system.hypersec.stats)
    mbm = system.mbm
    if mbm is not None:
        sets += [
            mbm.stats,
            mbm.snooper.stats,
            mbm.fifo.stats,
            mbm.translator.stats,
            mbm.bitmap_cache.stats,
            mbm.decision.stats,
            mbm.ring.stats,
        ]
    for app in system.monitors:
        sets.append(app.stats)
    macroop_stats = getattr(system, "macroop_stats", None)
    if macroop_stats is not None:  # a MacroOpEngine observed this system
        sets.append(macroop_stats)
    return sets


def _mbm_gauges(system) -> Dict[str, float]:
    mbm = system.mbm
    gauges: Dict[str, float] = {}
    if mbm is None:
        return gauges
    fifo = mbm.fifo
    high_water = fifo.stats.get("max_depth")
    gauges["fifo_depth"] = float(fifo.depth)
    gauges["fifo_high_water"] = float(high_water)
    gauges["fifo_headroom"] = float(fifo.depth - high_water)
    ring = mbm.ring
    pending = ring.pending()  # bus backdoor peek: no timing, no snoop
    gauges["ring_entries"] = float(ring.entries)
    gauges["ring_pending"] = float(pending)
    gauges["ring_occupancy"] = pending / ring.entries
    cache_stats = mbm.bitmap_cache.stats
    lookups = cache_stats.get("hits") + cache_stats.get("misses")
    gauges["bitmap_cache_hit_rate"] = (
        cache_stats.get("hits") / lookups if lookups else 0.0
    )
    detections = mbm.events_detected
    gauges["irqs_per_detection"] = (
        mbm.stats.get("irqs_raised") / detections if detections else 0.0
    )
    gauges["events_detected"] = float(detections)
    gauges["events_lost"] = float(mbm.events_lost)
    gauges["mbm_busy_cycles"] = float(mbm.busy_cycles)
    return gauges


def collect_metrics(
    system, waive: Iterable[str] = ()
) -> RunMetrics:
    """Snapshot every observable counter on ``system`` into a report.

    Read-only on the machine: no cycles are charged, no component state
    changes, so a run that collects metrics produces byte-identical
    tables to one that does not.  ``waive`` marks named integrity
    checks (``"mbm_fifo.overrun"``-style) as accepted.
    """
    components = {
        stats.name: stats.snapshot() for stats in component_stat_sets(system)
    }
    checks: List[IntegrityCheck] = []
    if system.mbm is not None:
        for component, counter, description in INTEGRITY_CHECK_SPECS:
            if component == "mbm_fifo" and counter == "overrun":
                value = int(system.mbm.fifo.overrun)
            else:
                value = components.get(component, {}).get(counter, 0)
            checks.append(
                IntegrityCheck(component, counter, value,
                               description=description)
            )
        _apply_waivers(checks, waive)
    attribution = attribute_cycles(system)
    return RunMetrics(
        system=system.name,
        sim_cycles=system.platform.clock.now,
        components=components,
        gauges=_mbm_gauges(system),
        checks=checks,
        attribution=attribution.as_flat_dict(),
    )


# ----------------------------------------------------------------------
# Payload-level enforcement (runner integration)
# ----------------------------------------------------------------------
def verify_payload_integrity(
    labels: Sequence[str],
    payloads: Sequence[Optional[dict]],
    waive: Iterable[str] = (),
) -> None:
    """Enforce the integrity checks carried in runner payloads.

    ``labels`` and ``payloads`` run in parallel (one label per cell);
    payloads without a ``"metrics"`` key — pre-observability cache
    entries or non-cell results — are skipped.  Raises
    :class:`IntegrityError` naming every failing cell and check.
    """
    problems: List[str] = []
    for label, payload in zip(labels, payloads):
        if not payload:
            continue
        data = payload.get("metrics")
        if not data:
            continue
        metrics = RunMetrics.from_dict(data, waive=waive)
        problems += [
            f"{label}: {check.name} = {check.value}"
            for check in metrics.failures
        ]
    if problems:
        raise IntegrityError(
            "run integrity check failed — the monitoring pipeline lost "
            "events: " + "; ".join(problems)
            + " (re-run with the check name(s) waived to accept)"
        )
