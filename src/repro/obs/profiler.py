"""Cycle-attribution profiler: split ``sim_cycles`` by agent and cause.

The simulator charges two kinds of cycles: *fixed-cost* events (a
privilege transition always charges the same CostModel constant) and
*variable-cost* memory traffic (cache hits vs DRAM row state).  The
fixed-cost categories are exactly recoverable after the fact as
``counter x constant`` — the component that counted the event and the
constant it charged are both known — so the profiler reconstructs them
without touching the hot path at all.  Whatever it cannot pin down
(memory traffic, modelled straight-line compute, calibrated op costs)
stays in an explicit ``residual`` bucket rather than being smeared over
the named ones.

Two complements:

* The MBM's occupancy (``mbm_busy_cycles``) is reported separately —
  the monitor runs off the CPU's critical path, so its cycles are not
  part of the global clock and must not be subtracted from it.
* :meth:`repro.hw.clock.Clock.scope` charge scopes measure *elapsed*
  cycles under a label while the simulation runs (e.g. "inside
  fork()"); :func:`attribute_cycles` folds any accumulated scopes into
  the report under ``scope:<label>`` keys.  Scopes overlap the derived
  buckets, so they are excluded from the residual computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CycleAttribution:
    """``sim_cycles`` split into exactly-derived buckets + residual."""

    total: int
    #: Fixed-cost buckets recovered as ``counter x CostModel constant``;
    #: disjoint by construction (each models a distinct charge site).
    buckets: Dict[str, int] = field(default_factory=dict)
    #: ``total - sum(buckets)``: memory traffic, modelled compute and
    #: calibrated per-op costs the profiler does not itemize.
    residual: int = 0
    #: Clock charge-scope measurements (may overlap the buckets).
    scopes: Dict[str, int] = field(default_factory=dict)
    #: MBM occupancy — off the critical path, not part of ``total``.
    mbm_busy_cycles: int = 0
    #: Cycles charged by macro-op replay (``repro.tools.macroops``)
    #: instead of step-by-step simulation.  These cycles *are* part of
    #: ``total`` and overlap the derived buckets (a replayed period
    #: bumps the same counters a simulated one would), so — like the
    #: scopes — they are reported alongside, not subtracted into the
    #: residual.
    macroop_replay_cycles: int = 0

    def as_flat_dict(self) -> Dict[str, int]:
        """One flat, JSON-clean mapping (RunMetrics.attribution form)."""
        flat = dict(self.buckets)
        flat["residual"] = self.residual
        flat["mbm_busy_cycles"] = self.mbm_busy_cycles
        flat["macroop_replay"] = self.macroop_replay_cycles
        for label, cycles in self.scopes.items():
            flat[f"scope:{label}"] = cycles
        return flat

    def fraction(self, bucket: str) -> float:
        """A bucket's share of the total (0.0 on an empty clock)."""
        if self.total == 0:
            return 0.0
        return self.buckets.get(bucket, 0) / self.total


def attribute_cycles(system) -> CycleAttribution:
    """Derive the cycle split for one system from its counters.

    Read-only: only StatSet reads and arithmetic — safe to call
    mid-run, repeatedly, and from metrics collection without perturbing
    cycle accounting.
    """
    platform = system.platform
    costs = platform.config.costs
    cpu = system.cpu.stats
    mmu = system.cpu.mmu.stats
    total = platform.clock.now

    buckets: Dict[str, int] = {
        # Per-descriptor control overhead of the table walkers; the
        # descriptor *fetches* themselves are memory traffic (residual).
        "stage1_walk_descriptors":
            mmu.get("stage1_desc_fetches") * costs.walk_step_overhead,
        "stage2_walk_descriptors":
            mmu.get("stage2_desc_fetches") * costs.walk_step_overhead,
        # EL1 -> EL2 round trips: hypercalls and TVM-trapped MSRs.
        "hypercall_round_trips":
            cpu.get("hvc") * (costs.hvc_entry + costs.hvc_exit),
        "trapped_msr_round_trips":
            cpu.get("trapped_msr") * (costs.trap_entry + costs.trap_exit),
        # Guest exit/re-entry pairs (KVM world switches).
        "world_switches":
            cpu.get("vm_exits") * (costs.vm_exit + costs.vm_enter),
        # Asynchronous interrupt takes (the MBM notification path).
        "irq_transitions":
            platform.gic.stats.get("raised")
            * (costs.irq_entry + costs.irq_exit),
    }
    if system.kernel.sys is not None:
        buckets["syscall_transitions"] = (
            system.kernel.sys.stats.get("total")
            * (costs.svc_entry + costs.svc_exit)
        )
    if system.kvm is not None:
        buckets["stage2_fault_service"] = (
            system.kvm.stats.get("stage2_faults")
            * costs.stage2_fault_handling
        )
    if system.hypersec is not None:
        buckets["hypersec_event_dispatch"] = (
            system.hypersec.stats.get("mbm_events_dispatched")
            * costs.hypersec_irq_dispatch
        )
    residual = total - sum(buckets.values())
    macroop_stats = getattr(system, "macroop_stats", None)
    return CycleAttribution(
        total=total,
        buckets=buckets,
        residual=residual,
        scopes=dict(platform.clock.attribution),
        mbm_busy_cycles=(
            system.mbm.busy_cycles if system.mbm is not None else 0
        ),
        macroop_replay_cycles=(
            macroop_stats.get("replayed_sim_cycles")
            if macroop_stats is not None else 0
        ),
    )
