"""Service-daemon observability: queue, pool and per-client counters.

The simulation side of repro.obs (:mod:`repro.obs.metrics`) reports on
one machine for one run; :class:`ServiceStats` is its daemon-level
sibling — everything observable about a long-running ``repro serve``
process across all clients and jobs.  The daemon updates it under its
own lock and serves snapshots through the ``stats`` op and the
``tail-metrics`` stream, so `reproctl tail-metrics` is effectively a
live gauge board for the service:

* **counters** — monotonically increasing totals (jobs submitted /
  completed / failed / cancelled, cells dispatched vs served from the
  content-addressed cache, cold boots vs warm dispatches on the shared
  fork-server pool, quota rejections, integrity failures);
* **gauges** — instantaneous values (queue depth, running jobs,
  connected clients, warm servers);
* **clients** — the same counters resolved per client name, which is
  what makes quota and fairness questions answerable.

:class:`FabricStats` is the coordinator-level sibling for the shard
fabric (:mod:`repro.service.fabric`): the same fixed-schema counters
and gauges, resolved **per shard** — how many cells each shard was
routed, completed, stole from its neighbours, or had requeued off it
when it died.  ``repro fabric status --json`` serves these alongside
each shard's own :class:`ServiceStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

#: Counter names, fixed so exported records stay schema-stable.
SERVICE_COUNTERS = (
    "jobs_submitted",
    "jobs_completed",
    "jobs_failed",
    "jobs_cancelled",
    "cells_total",
    "cells_cached",
    "cells_dispatched",
    "cold_boots",
    "cold_dispatches",
    "warm_dispatches",
    "serial_dispatches",
    "serial_demotions",
    "integrity_failures",
    "quota_rejections",
    "rejected_draining",
    "clients_connected",
    "clients_disconnected",
    "orphaned_jobs_cancelled",
)


@dataclass
class ServiceStats:
    """Aggregated daemon counters, gauges and per-client accounting."""

    counters: Dict[str, int] = field(
        default_factory=lambda: {name: 0 for name in SERVICE_COUNTERS}
    )
    gauges: Dict[str, float] = field(default_factory=dict)
    clients: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def add(self, counter: str, value: int = 1,
            client: str | None = None) -> None:
        """Bump a named counter (and its per-client twin, if given)."""
        if counter not in self.counters:
            raise KeyError(f"unknown service counter {counter!r}")
        self.counters[counter] += value
        if client is not None:
            per_client = self.clients.setdefault(client, {})
            per_client[counter] = per_client.get(counter, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe, deterministically ordered snapshot."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "clients": {
                name: dict(sorted(counters.items()))
                for name, counters in sorted(self.clients.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServiceStats":
        stats = cls()
        for name, value in data.get("counters", {}).items():
            if name in stats.counters:
                stats.counters[name] = int(value)
        stats.gauges = {
            str(k): float(v) for k, v in data.get("gauges", {}).items()
        }
        stats.clients = {
            str(name): {str(k): int(v) for k, v in counters.items()}
            for name, counters in data.get("clients", {}).items()
        }
        return stats

    def format(self) -> str:
        """Human-readable board (the ``reproctl tail-metrics`` body)."""
        lines = ["service metrics:"]
        for name, value in sorted(self.gauges.items()):
            rendered = (f"{value:.3f}" if value != int(value)
                        else f"{int(value)}")
            lines.append(f"  gauge   {name:26s} {rendered}")
        for name, value in sorted(self.counters.items()):
            if value:
                lines.append(f"  counter {name:26s} {value}")
        for client, counters in sorted(self.clients.items()):
            summary = ", ".join(
                f"{key}={value}" for key, value in sorted(counters.items())
            )
            lines.append(f"  client  {client:26s} {summary}")
        return "\n".join(lines)


#: Coordinator counter names (fixed schema, like SERVICE_COUNTERS).
FABRIC_COUNTERS = (
    "batches",
    "cells_routed",
    "cells_completed",
    "cells_stolen",
    "cells_requeued",
    "cells_split",
    "cells_local_fallback",
    "jobs_dispatched",
    "shard_failures",
    "cancelled_batches",
)


@dataclass
class FabricStats:
    """Shard-fabric coordinator counters, in total and per shard."""

    counters: Dict[str, int] = field(
        default_factory=lambda: {name: 0 for name in FABRIC_COUNTERS}
    )
    gauges: Dict[str, float] = field(default_factory=dict)
    shards: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def add(self, counter: str, value: int = 1,
            shard: str | None = None) -> None:
        """Bump a named counter (and its per-shard twin, if given)."""
        if counter not in self.counters:
            raise KeyError(f"unknown fabric counter {counter!r}")
        self.counters[counter] += value
        if shard is not None:
            per_shard = self.shards.setdefault(shard, {})
            per_shard[counter] = per_shard.get(counter, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe, deterministically ordered snapshot."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "shards": {
                name: dict(sorted(counters.items()))
                for name, counters in sorted(self.shards.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FabricStats":
        stats = cls()
        for name, value in data.get("counters", {}).items():
            if name in stats.counters:
                stats.counters[name] = int(value)
        stats.gauges = {
            str(k): float(v) for k, v in data.get("gauges", {}).items()
        }
        stats.shards = {
            str(name): {str(k): int(v) for k, v in counters.items()}
            for name, counters in data.get("shards", {}).items()
        }
        return stats

    def format(self) -> str:
        """Human-readable board (``repro fabric status`` body)."""
        lines = ["fabric metrics:"]
        for name, value in sorted(self.gauges.items()):
            rendered = (f"{value:.3f}" if value != int(value)
                        else f"{int(value)}")
            lines.append(f"  gauge   {name:26s} {rendered}")
        for name, value in sorted(self.counters.items()):
            if value:
                lines.append(f"  counter {name:26s} {value}")
        for shard, counters in sorted(self.shards.items()):
            summary = ", ".join(
                f"{key}={value}" for key, value in sorted(counters.items())
            )
            lines.append(f"  shard   {shard:26s} {summary}")
        return "\n".join(lines)
