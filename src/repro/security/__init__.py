"""Security applications hosted in Hypernel's secure space.

The paper evaluates "a security solution which monitors sensitive
kernel data" on top of Hypernel (section 7.2); this package provides:

* :class:`~repro.security.app.SecurityApp` — the application interface
  (SID, region templates, event callback);
* :class:`~repro.security.hooks.MonitorHookStub` — the kernel-side hook
  patch that reports object allocation/free to Hypersec;
* :class:`~repro.security.cred_monitor.CredIntegrityMonitor` and
  :class:`~repro.security.dentry_monitor.DentryIntegrityMonitor` — the
  word-granularity monitors of Table 2;
* :class:`~repro.security.baseline_page.WholeObjectMonitor` — the
  whole-object monitor the paper uses to *estimate* page-granularity
  trap counts (section 7.2's methodology);
* :class:`~repro.security.external_only.ExternalOnlyMonitor` — a
  KI-Mon-like bus monitor used *without* Hypersec, reproducing the ATRA
  weakness of stand-alone external monitors (sections 2 and 5.3).
"""

from repro.security.app import SecurityApp
from repro.security.baseline_page import WholeObjectMonitor
from repro.security.cred_monitor import CredIntegrityMonitor
from repro.security.dentry_monitor import DentryIntegrityMonitor
from repro.security.external_only import ExternalOnlyMonitor
from repro.security.hooks import MonitorHookStub
from repro.security.inode_monitor import InodeIntegrityMonitor

__all__ = [
    "CredIntegrityMonitor",
    "DentryIntegrityMonitor",
    "ExternalOnlyMonitor",
    "InodeIntegrityMonitor",
    "MonitorHookStub",
    "SecurityApp",
    "WholeObjectMonitor",
]
