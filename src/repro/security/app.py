"""The security-application interface.

Applications run in Hypernel's secure space (isolated from the kernel)
and are identified by a SID (paper 5.3).  They declare *region
templates* — which byte ranges of which kernel object types they want
monitored — and receive the MBM's (address, value) events from Hypersec.

Integrity checking follows the shadow-state approach of event-triggered
monitors like KI-Mon: the application tracks the expected value of every
monitored word (seeded at registration, advanced by announced
kernel-code updates) and flags any observed write that does not match.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from collections import deque

from repro.kernel.objects import ObjectLayout
from repro.utils.stats import StatSet

#: sentinel event value for writes whose data the MBM could not decode
#: (block-modelled streams).
VALUE_UNKNOWN = (1 << 64) - 1


@dataclass(frozen=True)
class Alert:
    """One integrity violation detected by an application."""

    app: str
    addr: int
    observed: Optional[int]
    expected: Optional[int]
    reason: str


@dataclass
class RegionTemplate:
    """Byte ranges to monitor per object of one layout."""

    layout_name: str
    #: ``"sensitive"`` = the layout's sensitive fields,
    #: ``"whole"`` = the entire object (page-granularity estimator).
    coverage: str = "sensitive"


class SecurityApp:
    """Base class for monitors hosted on Hypernel."""

    def __init__(self, name: str, templates: List[RegionTemplate]):
        self.name = name
        self.templates: Dict[str, RegionTemplate] = {
            t.layout_name: t for t in templates
        }
        self.sid: Optional[int] = None  # assigned by Hypersec
        self.alerts: List[Alert] = []
        self.stats = StatSet(f"app.{name}")
        self._shadow: Dict[int, int] = {}
        #: per-word FIFO of announced-but-not-yet-observed write values.
        #: Every write to a monitored (non-cacheable) word produces
        #: exactly one bus event in program order, so announced writes
        #: and MBM events pair up lockstep — even when interrupt
        #: coalescing delays delivery.
        self._pending: Dict[int, deque] = {}

    # ------------------------------------------------------------------
    # Checkpoint/restore
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Shadow state, pending queues, alerts and counters.  The SID
        and template wiring are re-established by the system rebuild."""
        return {
            "alerts": [[a.addr, a.observed, a.expected, a.reason]
                       for a in self.alerts],
            "shadow": [[addr, value] for addr, value in self._shadow.items()],
            "pending": [[addr, list(queue)]
                        for addr, queue in self._pending.items()],
            "stats": self.stats.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self.alerts = [
            Alert(self.name, int(addr),
                  None if observed is None else int(observed),
                  None if expected is None else int(expected),
                  str(reason))
            for addr, observed, expected, reason in state["alerts"]
        ]
        self._shadow = {int(addr): int(value)
                        for addr, value in state["shadow"]}
        self._pending = {int(addr): deque(int(v) for v in values)
                         for addr, values in state["pending"]}
        self.stats.load_state(state["stats"])

    # ------------------------------------------------------------------
    # Region templates (queried by the kernel hook stub)
    # ------------------------------------------------------------------
    def wants(self, layout: ObjectLayout) -> bool:
        return layout.name in self.templates

    def regions_for(self, layout: ObjectLayout, obj_paddr: int) -> List[Tuple[int, int]]:
        """(base_paddr, size) ranges to register for one object."""
        template = self.templates[layout.name]
        if template.coverage == "whole":
            return [layout.whole_range(obj_paddr)]
        return layout.sensitive_ranges(obj_paddr)

    # ------------------------------------------------------------------
    # Shadow-state integrity tracking
    # ------------------------------------------------------------------
    def on_region_registered(self, base: int, size: int, snapshot: List[int]) -> None:
        """Seed the shadow with the region's current words."""
        for i, value in enumerate(snapshot):
            addr = base + i * 8
            self._shadow[addr] = value
            self._pending[addr] = deque()

    def on_region_unregistered(self, base: int, size: int) -> None:
        for addr in range(base, base + size, 8):
            self._shadow.pop(addr, None)
            self._pending.pop(addr, None)

    def on_authorized(self, addr: int, value: int) -> None:
        """A kernel code path announced a legitimate update."""
        if addr in self._shadow:
            self._shadow[addr] = value
            self._pending[addr].append(value)
            self.stats.add("authorized_updates")

    def _consume_event(self, addr: int, value: int) -> bool:
        """Match one MBM event against the announced-write queue.

        Returns True when the event corresponds to an announced write.
        Tolerates lost events (ring overflow) by consuming through the
        queue to a later matching announcement.
        """
        queue = self._pending.get(addr)
        if queue is None:
            return False
        if value == VALUE_UNKNOWN:
            # Undecodable value: pair with the oldest pending write.
            if queue:
                queue.popleft()
            return True
        if queue and queue[0] == value:
            queue.popleft()
            return True
        if value in queue:
            while queue and queue[0] != value:
                queue.popleft()
                self.stats.add("skipped_events")
            if queue:
                queue.popleft()
            return True
        return False

    def on_event(self, addr: int, value: int) -> None:
        """One MBM detection routed to this application by Hypersec.

        The event is legitimate iff it pairs with an announced kernel
        write of the same value (lockstep, see ``_pending``).
        """
        self.stats.add("events")
        if addr not in self._shadow:
            # Monitored but never snapshotted (e.g. whole-object
            # estimator): count only.
            return
        if not self._consume_event(addr, value):
            self.alert(addr, observed=value,
                       expected=self._shadow.get(addr),
                       reason="unauthorized modification")
            # Track the observed value so one attack raises one alert.
            self._shadow[addr] = value
            self._pending[addr].append(value)

    def alert(self, addr: int, observed: Optional[int],
              expected: Optional[int], reason: str) -> None:
        self.stats.add("alerts")
        self.alerts.append(Alert(self.name, addr, observed, expected, reason))

    @property
    def event_count(self) -> int:
        """Events delivered to this app (a Table 2 cell)."""
        return self.stats.get("events")
