"""The page-granularity estimator of paper section 7.2.

"The other solution also validates these fields, but it monitors the
*entire* fields of target kernel data objects. ... the number of
interrupts that occur when monitoring the entire object would be the
same as the number of faults that occur when the target kernel data
objects are aggregated in specific pages, and the security framework
monitors these pages by configuring as read-only."

So: registering whole cred+dentry objects with the MBM counts exactly
the traps a conventional page-granularity (stage-2 read-only) monitor
would take.  The Table 2 "page-granularity" column is this application's
event count.
"""

from __future__ import annotations

from typing import Iterable

from repro.security.app import RegionTemplate, SecurityApp


class WholeObjectMonitor(SecurityApp):
    """Counts writes to any word of the target objects."""

    def __init__(self, layouts: Iterable[str] = ("cred", "dentry")):
        super().__init__(
            "page_granularity_estimator",
            [RegionTemplate(name, coverage="whole") for name in layouts],
        )

    def on_event(self, addr: int, value: int) -> None:
        # Pure estimator: count the trap, skip integrity checking.
        self.stats.add("events")
