"""Credential integrity monitor (word granularity).

The first of the paper's two evaluated monitors (section 7.2, footnote
2: "Modifying the cred structure allows the attacker to elevate any
process to have root permission").  It registers only the *sensitive
fields* of every live ``cred`` object — uid/gid family, securebits and
capability masks — so the hot ``usage`` refcount word generates no
events at all.

Detection policy on top of the generic shadow check: any unannounced
transition of an identity word *to* 0 (root) is flagged as privilege
escalation explicitly.
"""

from __future__ import annotations

from repro.kernel.objects import CRED
from repro.security.app import RegionTemplate, SecurityApp

#: word offsets (within cred) of the identity fields whose change to 0
#: means privilege escalation.
_IDENTITY_OFFSETS = {
    CRED.field(name).offset
    for name in ("uid", "gid", "suid", "sgid", "euid", "egid", "fsuid", "fsgid")
}


class CredIntegrityMonitor(SecurityApp):
    """Watches the sensitive words of every cred object."""

    def __init__(self):
        super().__init__(
            "cred_monitor",
            [RegionTemplate("cred", coverage="sensitive")],
        )
        self._bases = {}

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["bases"] = [[base, size] for base, size in self._bases.items()]
        return state

    def load_state(self, state: dict) -> None:
        super().load_state(state)
        self._bases = {int(base): int(size)
                       for base, size in state["bases"]}

    def on_region_registered(self, base, size, snapshot):
        super().on_region_registered(base, size, snapshot)
        self._bases[base] = size

    def on_region_unregistered(self, base, size):
        super().on_region_unregistered(base, size)
        self._bases.pop(base, None)

    def on_event(self, addr: int, value: int) -> None:
        expected = self._shadow.get(addr)
        alerts_before = len(self.alerts)
        super().on_event(addr, value)
        if len(self.alerts) == alerts_before:
            return  # the event paired with an announced write
        # Escalation heuristic: identity word became root without an
        # announced kernel update.
        offset_in_obj = self._offset_within_object(addr)
        if offset_in_obj in _IDENTITY_OFFSETS and value == 0 and expected != 0:
            self.alert(addr, observed=value, expected=expected,
                       reason="privilege escalation to uid/gid 0")

    def _offset_within_object(self, addr: int):
        for base in self._bases:
            # Sensitive cred words span [base, base+size) of one range
            # beginning at the uid field.
            obj_base = base - CRED.field("uid").byte_offset
            delta = addr - obj_base
            if 0 <= delta < CRED.size_bytes:
                return delta // 8
        return None
