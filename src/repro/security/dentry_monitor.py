"""Dentry integrity monitor (word granularity).

The second evaluated monitor (paper 7.2, footnote 2: "seizing the
control of a dentry enables the attacker to access its inode and
manipulate it").  It registers the sensitive identity words of every
live dentry — ``d_parent``, ``d_name``, ``d_inode``, ``d_op``, ``d_sb``
— leaving the per-lookup ``d_lockref`` churn unmonitored.
"""

from __future__ import annotations

from repro.security.app import RegionTemplate, SecurityApp


class DentryIntegrityMonitor(SecurityApp):
    """Watches the sensitive words of every dentry object."""

    def __init__(self):
        super().__init__(
            "dentry_monitor",
            [RegionTemplate("dentry", coverage="sensitive")],
        )
