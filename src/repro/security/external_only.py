"""A stand-alone external bus monitor (KI-Mon-like), *without* Hypersec.

Reproduces the weakness the paper cites in sections 2 and 5.3: an
external monitor "cannot know the information inside a processor" — it
is configured once with the physical addresses of objects to watch and
has no view of the kernel's virtual-to-physical mappings.  The Address
Translation Redirection Attack (ATRA, Jang et al. CCS'14) relocates the
kernel's mapping of a monitored object to a fresh physical page; the
kernel then operates on the copy while the monitor stares at the stale
original and sees nothing.

Hypernel closes this hole because Hypersec *does* see the processor
state: kernel page-table updates pass through it, and a remap of a
monitored region is denied (see
:meth:`repro.core.hypersec.Hypersec._check_leaf`).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.config import WORD_BYTES
from repro.core.mbm.mbm import MemoryBusMonitor
from repro.security.app import Alert
from repro.utils.stats import StatSet


class ExternalOnlyMonitor:
    """Drives an MBM directly, with boot-time static physical addresses.

    No Hypersec, no hooks, no VA->PA knowledge: the integrator writes
    the bitmap via the device backdoor at configuration time and polls
    the ring buffer.  (Real external monitors also required the
    monitored region to be uncacheable; the boot configuration is
    assumed to provide that, which :func:`configure` models with a
    direct descriptor retune.)
    """

    def __init__(self, mbm: MemoryBusMonitor):
        self.mbm = mbm
        self.alerts: List[Alert] = []
        self.stats = StatSet("external_monitor")
        self._shadow: Dict[int, int] = {}
        self._regions: List[Tuple[int, int]] = []

    def watch_range(self, base_paddr: int, size: int) -> None:
        """Statically configure one physical range (boot-time setup)."""
        bus = self.mbm.platform.bus
        for word_addr, mask in self.mbm.bitmap.words_for_range(base_paddr, size):
            bus.poke(word_addr, bus.peek(word_addr) | mask)
        self.mbm.bitmap_cache.invalidate_all()
        for addr in range(base_paddr, base_paddr + size, WORD_BYTES):
            self._shadow[addr] = bus.peek(addr)
        self._regions.append((base_paddr, base_paddr + size))
        self.stats.add("ranges_watched")

    def poll(self) -> int:
        """Drain the ring and integrity-check events (KI-Mon style).

        Returns the number of events processed.
        """
        events = self.mbm.ring.consume_all()
        for addr, value in events:
            self.stats.add("events")
            expected = self._shadow.get(addr)
            if expected is not None and value not in (expected, (1 << 64) - 1):
                self.alerts.append(
                    Alert("external_monitor", addr, value, expected,
                          "unauthorized modification")
                )
                self._shadow[addr] = value
        return len(events)

    def shadow_value(self, addr: int):
        """The monitor's belief about a monitored word (for tests)."""
        return self._shadow.get(addr)
