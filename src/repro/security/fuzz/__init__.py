"""Adversarial verification of Hypersec (fuzzing + dissimilar audit).

The paper's Discussion section argues Hypersec is small enough to be
formally verified; this package is the testing-shaped counterpart of
that argument.  It provides three cooperating pieces:

* :mod:`repro.security.fuzz.invariants` — Hypernel's security
  invariants as *predicate objects* plus a hardened translation-table
  walker and :func:`~repro.security.fuzz.invariants.run_invariants`,
  the single checking engine every verifier shares.
* :mod:`repro.security.fuzz.snapshot_checker` — a dissimilar second
  verification channel: it re-derives the table topology, monitored
  pages and control-register state from a raw
  :class:`~repro.state.Snapshot` image, *without* trusting Hypersec's
  or the live auditor's bookkeeping.
* :mod:`repro.security.fuzz.differential` — the gate that diffs the
  live auditor against the snapshot checker; any disagreement means one
  channel has a blind spot.
* :mod:`repro.security.fuzz.machine` — a Hypothesis
  ``RuleBasedStateMachine`` that drives random hypercall sequences, raw
  attack primitives and trapped-MSR writes against a booted machine,
  asserting after every rule that Hypersec's verdicts and the
  invariants agree.  (Imported lazily: it needs ``hypothesis``.)

Import note: this module deliberately avoids importing ``hypothesis``
so the invariant/checker layer stays usable in environments without it.
"""

from repro.security.fuzz.invariants import (
    Evidence,
    Finding,
    Geometry,
    InvariantReport,
    LEAF_INVARIANTS,
    LeafInvariant,
    NO_SECURE_MAPPING,
    NO_WRITABLE_TABLE_ALIAS,
    TABLE_TOPOLOGY,
    W_XOR_X,
    run_invariants,
)

__all__ = [
    "Evidence",
    "Finding",
    "Geometry",
    "InvariantReport",
    "LEAF_INVARIANTS",
    "LeafInvariant",
    "NO_SECURE_MAPPING",
    "NO_WRITABLE_TABLE_ALIAS",
    "TABLE_TOPOLOGY",
    "W_XOR_X",
    "run_invariants",
]
