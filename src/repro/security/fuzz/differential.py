"""Differential gate: the live auditor vs the snapshot checker.

Both verification channels state the same invariants
(:mod:`repro.security.fuzz.invariants`) but gather their evidence in
deliberately different ways — the live auditor through the running
platform and Hypersec's bookkeeping, the snapshot checker by re-deriving
everything from a raw memory image.  This module diffs their findings
*and* their structural views of the machine; any disagreement means one
channel has a blind spot (exactly how the fuzzer surfaced the
bookkeeping-desync class of bugs).

Tolerances are intentional and narrow:

* a registered table that is unreachable *and empty* is fine — the
  kernel legitimately allocates/registers a table an instant before
  linking it, and the fuzzer itself allocates spare tables;
* a registered table that is unreachable and *nonempty* is flagged:
  live descriptors nobody walks are exactly where stale policy hides;
* ``SCTLR_EL1`` is not cross-checked against ``recorded_regs`` — the
  recorded value only pins the MMU-enable bit, which Hypersec enforces
  at trap time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.security.fuzz.invariants import InvariantReport, run_invariants
from repro.security.fuzz.snapshot_checker import SnapshotEvidence
from repro.state import Snapshot, capture_snapshot

#: Invariants stated identically by both channels; ``BITMAP_CONSISTENT``
#: is live-only (the raw bitmap is the snapshot channel's *source* of
#: monitored truth) and monitored-set drift is diffed structurally.
_COMPARED_INVARIANTS = frozenset({
    "NO_SECURE_MAPPING",
    "NO_WRITABLE_TABLE_ALIAS",
    "W_XOR_X",
    "TABLES_READ_ONLY",
    "MONITORED_UNCACHED",
    "TTBR_INTEGRITY",
    "TABLE_TOPOLOGY",
})

#: Trapped VM registers whose live value must still match what Hypersec
#: recorded at protect() time (SCTLR excluded, see module docstring).
_PINNED_REGS = ("TTBR1_EL1", "TCR_EL1", "MAIR_EL1")


@dataclass(frozen=True)
class Disagreement:
    """One divergence between the two verification channels."""

    kind: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.detail}"


@dataclass
class DifferentialResult:
    """Outcome of one differential audit."""

    live: InvariantReport
    offline: InvariantReport
    disagreements: List[Disagreement] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.disagreements

    def add(self, kind: str, detail: str) -> None:
        self.disagreements.append(Disagreement(kind, detail))

    def __str__(self) -> str:
        if self.clean:
            return (
                "differential gate clean: live and snapshot channels "
                f"agree ({len(self.live.findings)} finding(s) each)"
            )
        lines = [
            f"differential gate found {len(self.disagreements)} "
            "disagreement(s):"
        ]
        lines.extend(f"  {d}" for d in self.disagreements)
        return "\n".join(lines)


def differential_audit(system,
                       snapshot: Optional[Snapshot] = None
                       ) -> DifferentialResult:
    """Audit ``system`` through both channels and diff the results.

    ``snapshot`` may be supplied when the caller already captured one
    (it must describe the *current* state of ``system``).
    """
    if snapshot is None:
        snapshot = capture_snapshot(system)
    live = system.hypersec.audit()
    evidence = SnapshotEvidence(snapshot)
    offline = run_invariants(evidence)
    result = DifferentialResult(live=live, offline=offline)

    # 1. Finding diff on the invariants both channels state.
    live_keys = {(f.invariant, f.location) for f in live.findings
                 if f.invariant in _COMPARED_INVARIANTS}
    offline_keys = {(f.invariant, f.location) for f in offline.findings
                    if f.invariant in _COMPARED_INVARIANTS}
    for invariant, location in sorted(offline_keys - live_keys):
        result.add(
            "offline-only",
            f"[{invariant}] at {location:#x}: the snapshot checker sees "
            "it, the live auditor does not")
    for invariant, location in sorted(live_keys - offline_keys):
        result.add(
            "live-only",
            f"[{invariant}] at {location:#x}: the live auditor sees it, "
            "the snapshot checker does not")

    # 2. Structural diff: table topology vs Hypersec's bookkeeping.
    hypersec = system.hypersec
    reachable = evidence.reachable_tables()
    registered = set(hypersec.table_pages)
    for table in sorted(reachable - registered):
        result.add(
            "unregistered-table",
            f"table {table:#x} is reachable from the translation roots "
            "but absent from Hypersec's registered set")
    for table in sorted(registered - reachable):
        if not evidence.table_is_empty(table):
            result.add(
                "orphan-table",
                f"registered table {table:#x} is unreachable from every "
                "root yet holds live descriptors")

    # 3. Structural diff: monitored pages, bitmap vs bookkeeping.
    derived = evidence.monitored_pages()
    recorded = set(hypersec._monitored_page_refs)
    for page in sorted(derived - recorded):
        result.add(
            "monitored-pages",
            f"bitmap marks words in page {page:#x} but Hypersec does not "
            "track it as monitored")
    for page in sorted(recorded - derived):
        result.add(
            "monitored-pages",
            f"Hypersec tracks page {page:#x} as monitored but the bitmap "
            "holds no bit in it")

    # 4. Recorded VM-control registers vs the snapshotted hardware.
    for name in _PINNED_REGS:
        recorded_value = evidence.recorded_reg(name)
        if recorded_value is not None and evidence.reg(name) != recorded_value:
            result.add(
                "vm-regs",
                f"{name} is {evidence.reg(name):#x} but Hypersec recorded "
                f"{recorded_value:#x} at protect() time")
    return result
