"""Hypernel's security invariants as shared, executable specifications.

Every verifier in the repository — the live auditor
(:mod:`repro.core.audit`), the offline snapshot checker
(:mod:`repro.security.fuzz.snapshot_checker`) and the hypercall fuzzer
(:mod:`repro.security.fuzz.machine`) — evaluates the *same* predicate
objects defined here.  The checkers walk real translation tables and
report every violating leaf; the fuzzer evaluates candidate descriptors
up front to predict which hypercalls Hypersec must deny.  A divergence
between prediction and verdict, or between two checkers, is a bug in
one of them by construction.

The invariants (paper sections 5.2/5.3):

``NO_SECURE_MAPPING``
    No valid leaf maps any physical page of the secure region.
``NO_WRITABLE_TABLE_ALIAS``
    No leaf anywhere maps a registered table page writable.
``W_XOR_X``
    No kernel leaf is simultaneously writable and executable.
``TABLES_READ_ONLY``
    Every registered table page is read-only through the linear map.
``MONITORED_UNCACHED``
    Pages holding monitored regions are mapped non-cacheable.
``BITMAP_CONSISTENT``
    The MBM bitmap equals the union of registered regions.
``TTBR_INTEGRITY``
    Live TTBR0/TTBR1 point at registered roots.
``TABLE_TOPOLOGY``
    The table graph itself is well-formed: table pointers stay inside
    backed, non-secure RAM; every reachable table is registered (only
    checked by evidence that supplies an independent registered set).

The table walker here is *hardened*: a table pointer aiming off the end
of RAM or into the secure region produces a ``TABLE_TOPOLOGY`` finding
and truncates that branch instead of crashing the audit; loops likewise
truncate.  ``InvariantReport.truncated_walks`` counts every branch the
walker refused to follow, so a report that says "clean" but has nonzero
truncation is visibly not a full proof.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.config import PAGE_BYTES, WORD_BYTES
from repro.arch.pagetable import Descriptor, LEVEL_SPAN

#: Invariant name for table-graph well-formedness findings.
TABLE_TOPOLOGY = "TABLE_TOPOLOGY"

# Cap the per-leaf page scan: 2 MB blocks dominate; 1 GB leaves do not
# occur in these kernels.
_SCAN_CAP = 2 << 20

_PAGE_MASK = PAGE_BYTES - 1


@dataclass(frozen=True)
class Geometry:
    """The physical layout every invariant is stated against."""

    dram_base: int
    dram_limit: int
    secure_base: int
    secure_limit: int

    def in_secure(self, base: int, nbytes: int) -> bool:
        """Does ``[base, base+nbytes)`` overlap the secure region?"""
        return base < self.secure_limit and base + nbytes > self.secure_base


@dataclass(frozen=True)
class Finding:
    """One invariant violation."""

    invariant: str
    location: int
    detail: str


@dataclass
class InvariantReport:
    """Outcome of one verification pass."""

    findings: List[Finding] = field(default_factory=list)
    tables_walked: int = 0
    leaves_checked: int = 0
    bitmap_words_checked: int = 0
    #: Branches the hardened walker refused to follow (hostile table
    #: pointer, loop).  Nonzero truncation means coverage was partial.
    truncated_walks: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def add(self, invariant: str, location: int, detail: str) -> None:
        self.findings.append(Finding(invariant, location, detail))

    def __str__(self) -> str:
        if self.clean:
            text = (
                f"audit clean: {self.tables_walked} tables, "
                f"{self.leaves_checked} leaves, "
                f"{self.bitmap_words_checked} bitmap words"
            )
            if self.truncated_walks:
                text += f" ({self.truncated_walks} walk(s) truncated)"
            return text
        lines = [f"audit found {len(self.findings)} violation(s):"]
        lines.extend(
            f"  [{f.invariant}] at {f.location:#x}: {f.detail}"
            for f in self.findings
        )
        if self.truncated_walks:
            lines.append(f"  ({self.truncated_walks} walk(s) truncated)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Leaf invariants: predicates over a single valid leaf descriptor
# ----------------------------------------------------------------------
class LeafInvariant:
    """One invariant as a predicate over one valid leaf descriptor.

    ``violations`` yields every way ``desc`` (installed at ``desc_addr``
    as a level-``level`` leaf) breaks the invariant; an empty yield
    means the leaf is acceptable.  ``violated`` is the fuzzer-facing
    boolean form used to predict Hypersec denials.
    """

    def __init__(self, name: str, claim: str,
                 check: Callable[..., Iterator[Tuple[int, str]]]):
        self.name = name
        self.claim = claim
        self._check = check

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LeafInvariant {self.name}>"

    def violations(self, geometry: Geometry, desc_addr: int, level: int,
                   desc: Descriptor,
                   table_pages: Set[int]) -> Iterator[Tuple[int, str]]:
        return self._check(geometry, desc_addr, level, desc, table_pages)

    def violated(self, geometry: Geometry, level: int, desc: Descriptor,
                 table_pages: Set[int]) -> bool:
        return any(True for _ in self._check(
            geometry, 0, level, desc, table_pages))


def _pages(base: int, end: int) -> Iterator[int]:
    for page in range(base, min(end, base + _SCAN_CAP), PAGE_BYTES):
        yield page


def _no_secure_mapping(geometry, desc_addr, level, desc, table_pages):
    base = desc.address
    if geometry.in_secure(base, LEVEL_SPAN[level]):
        yield desc_addr, f"leaf maps secure region page {base:#x}"


def _no_writable_table_alias(geometry, desc_addr, level, desc, table_pages):
    if not desc.writable:
        return
    base = desc.address
    for page in _pages(base, base + LEVEL_SPAN[level]):
        if page in table_pages:
            yield desc_addr, f"writable mapping of table page {page:#x}"


def _w_xor_x(geometry, desc_addr, level, desc, table_pages):
    if desc.writable and desc.executable and not desc.user:
        yield desc_addr, f"kernel leaf W+X at {desc.address:#x}"


NO_SECURE_MAPPING = LeafInvariant(
    "NO_SECURE_MAPPING",
    "no valid leaf maps any physical page of the secure region",
    _no_secure_mapping,
)

NO_WRITABLE_TABLE_ALIAS = LeafInvariant(
    "NO_WRITABLE_TABLE_ALIAS",
    "no leaf anywhere maps a registered table page writable",
    _no_writable_table_alias,
)

W_XOR_X = LeafInvariant(
    "W_XOR_X",
    "no kernel leaf is simultaneously writable and executable",
    _w_xor_x,
)

#: Evaluation order matters only for finding order; keep the historical
#: auditor order (secure overlap, table alias, W+X).
LEAF_INVARIANTS: Tuple[LeafInvariant, ...] = (
    NO_SECURE_MAPPING,
    NO_WRITABLE_TABLE_ALIAS,
    W_XOR_X,
)


# ----------------------------------------------------------------------
# Evidence: a verifier's view of one machine
# ----------------------------------------------------------------------
class Evidence:
    """What one verification channel can see of a machine.

    Two implementations exist *on purpose*:
    ``repro.core.audit.LiveEvidence`` reads the running platform and
    Hypersec's own bookkeeping, while
    ``repro.security.fuzz.snapshot_checker.SnapshotEvidence`` re-derives
    everything from a serialized raw-memory image.  A bookkeeping bug in
    one channel cannot hide from the other; the differential gate
    (:mod:`repro.security.fuzz.differential`) makes the comparison.

    Optional hooks return ``None``/empty to disable the corresponding
    check, mirroring the historical auditor's guards for systems without
    a kernel or MBM.
    """

    geometry: Geometry

    # -- raw access ----------------------------------------------------
    def peek(self, paddr: int) -> int:
        raise NotImplementedError

    def backed(self, paddr: int) -> bool:
        """Is ``paddr`` inside backed physical memory?"""
        raise NotImplementedError

    def reg(self, name: str) -> int:
        raise NotImplementedError

    # -- translation topology -----------------------------------------
    def roots(self) -> List[int]:
        """Root table pages to walk."""
        raise NotImplementedError

    def table_pages(self) -> Set[int]:
        """Table pages the alias / read-only checks test against."""
        raise NotImplementedError

    def claimed_tables(self) -> Optional[Set[int]]:
        """The *claimed* registered-table set to diff against the
        reachable set, or ``None`` when this channel has no independent
        ground truth to compare it with (the live auditor trusts its
        own bookkeeping — exactly the blind spot the snapshot channel
        exists to cover)."""
        return None

    # -- linear-map view ----------------------------------------------
    def has_linear_view(self) -> bool:
        return False

    def linear_leaf(self, paddr: int) -> Optional[Descriptor]:
        """The linear-map leaf descriptor covering ``paddr``, or
        ``None`` when the page has no linear translation."""
        return None

    # -- monitoring ----------------------------------------------------
    def monitored_pages(self) -> Set[int]:
        return set()

    def expected_bitmap(self) -> Optional[Dict[int, int]]:
        """Expected MBM bitmap content (word address -> mask), or
        ``None`` to skip the bitmap check."""
        return None

    def bitmap_storage(self) -> Optional[Tuple[int, int]]:
        return None

    # -- recorded policy ----------------------------------------------
    def recorded_kernel_root(self) -> Optional[int]:
        return None

    def recorded_root_tables(self) -> Set[int]:
        return set()


# ----------------------------------------------------------------------
# Hardened table walk
# ----------------------------------------------------------------------
def walk_tree(evidence: Evidence, root: int,
              report: InvariantReport) -> Tuple[Set[int], List[Tuple[int, int, Descriptor]]]:
    """Depth-first walk of the translation tree rooted at ``root``.

    Returns ``(tables_visited, leaves)`` where leaves are
    ``(desc_addr, level, descriptor)`` triples.  Hostile topology —
    a table pointer off the end of backed RAM or into the secure
    region, or a loop — is reported/truncated instead of crashing.
    """
    geometry = evidence.geometry
    seen: Set[int] = set()
    leaves: List[Tuple[int, int, Descriptor]] = []
    if not (evidence.backed(root)
            and evidence.backed(root + PAGE_BYTES - WORD_BYTES)):
        report.add(TABLE_TOPOLOGY, root,
                   f"root table {root:#x} is not inside backed RAM")
        report.truncated_walks += 1
        return seen, leaves
    stack = [(root, 1)]
    while stack:
        table, level = stack.pop()
        if table in seen:
            # Malformed loop: count the refused branch, keep going.
            report.truncated_walks += 1
            continue
        seen.add(table)
        for index in range(PAGE_BYTES // WORD_BYTES):
            desc_addr = table + index * WORD_BYTES
            desc = Descriptor(evidence.peek(desc_addr))
            if not desc.valid:
                continue
            if level < 3 and desc.is_table:
                child = desc.address
                if not (evidence.backed(child)
                        and evidence.backed(child + PAGE_BYTES - WORD_BYTES)):
                    report.add(
                        TABLE_TOPOLOGY, desc_addr,
                        f"table pointer to unbacked memory {child:#x}")
                    report.truncated_walks += 1
                elif geometry.in_secure(child, PAGE_BYTES):
                    report.add(
                        TABLE_TOPOLOGY, desc_addr,
                        f"table pointer into the secure region {child:#x}")
                    report.truncated_walks += 1
                else:
                    stack.append((child, level + 1))
            else:
                leaves.append((desc_addr, level, desc))
    return seen, leaves


# ----------------------------------------------------------------------
# The checking engine
# ----------------------------------------------------------------------
def run_invariants(evidence: Evidence) -> InvariantReport:
    """Run every invariant check against ``evidence``."""
    report = InvariantReport()
    _check_ttbrs(evidence, report)
    table_pages = evidence.table_pages()
    reached: Set[int] = set()
    for root in evidence.roots():
        seen, leaves = walk_tree(evidence, root, report)
        for desc_addr, level, desc in leaves:
            report.leaves_checked += 1
            for invariant in LEAF_INVARIANTS:
                for location, detail in invariant.violations(
                        evidence.geometry, desc_addr, level, desc,
                        table_pages):
                    report.add(invariant.name, location, detail)
        report.tables_walked += len(seen)
        reached |= seen
    claimed = evidence.claimed_tables()
    if claimed is not None:
        for table in sorted(reached - claimed):
            report.add(
                TABLE_TOPOLOGY, table,
                "reachable translation table is not in the registered set")
    _check_tables_read_only(evidence, report, table_pages)
    _check_monitored_pages(evidence, report)
    _check_bitmap(evidence, report)
    return report


def _check_ttbrs(evidence: Evidence, report: InvariantReport) -> None:
    recorded_root = evidence.recorded_kernel_root()
    if recorded_root is None:
        return
    ttbr1 = evidence.reg("TTBR1_EL1")
    if ttbr1 != recorded_root:
        report.add("TTBR_INTEGRITY", ttbr1,
                   "TTBR1_EL1 does not point at the recorded kernel root")
    ttbr0 = evidence.reg("TTBR0_EL1") & ~_PAGE_MASK
    if ttbr0 and ttbr0 not in evidence.recorded_root_tables():
        report.add("TTBR_INTEGRITY", ttbr0,
                   "TTBR0_EL1 points at an unregistered root")


def _check_tables_read_only(evidence: Evidence, report: InvariantReport,
                            table_pages: Set[int]) -> None:
    if not evidence.has_linear_view():
        return
    for table in sorted(table_pages):
        leaf = evidence.linear_leaf(table)
        if leaf is None:
            report.add(TABLE_TOPOLOGY, table,
                       "table page has no linear-map translation")
        elif leaf.writable:
            report.add("TABLES_READ_ONLY", table,
                       "table page is writable through the linear map")


def _check_monitored_pages(evidence: Evidence,
                           report: InvariantReport) -> None:
    if not evidence.has_linear_view():
        return
    for page in sorted(evidence.monitored_pages()):
        leaf = evidence.linear_leaf(page)
        if leaf is None:
            report.add("MONITORED_UNCACHED", page,
                       "monitored page has no linear-map translation")
        elif leaf.cacheable:
            report.add("MONITORED_UNCACHED", page,
                       "monitored page is cacheable: MBM would miss writes")


def _check_bitmap(evidence: Evidence, report: InvariantReport) -> None:
    """The bitmap must equal the union of registered regions."""
    expected = evidence.expected_bitmap()
    storage = evidence.bitmap_storage()
    if expected is None or storage is None:
        return
    bitmap_base, bitmap_limit = storage
    for word_addr in range(bitmap_base, bitmap_limit, WORD_BYTES):
        actual = evidence.peek(word_addr)
        wanted = expected.get(word_addr, 0)
        if actual != wanted:
            report.add(
                "BITMAP_CONSISTENT", word_addr,
                f"bitmap word is {actual:#x}, regions imply {wanted:#x}")
        if actual or wanted:
            report.bitmap_words_checked += 1
