"""Adversarial hypercall fuzzing of Hypersec (stateful, snapshot-reset).

A Hypothesis :class:`RuleBasedStateMachine` drives random — but
structurally adversarial — sequences of hypercalls, trapped system
register writes, attack mounts and kernel lifecycle operations against
a booted Hypernel machine.  The machine's oracle is the *shared
invariant specification* of :mod:`repro.security.fuzz.invariants`:

* before every ``pgtable_write`` the fuzzer evaluates the same
  :data:`~repro.security.fuzz.invariants.LEAF_INVARIANTS` predicate
  objects the auditors use, and predicts whether Hypersec **must deny**
  the request (the write would create a violating descriptor) or
  **must allow** it (a clearly legitimate update, e.g. installing a
  clean descriptor over an empty slot);
* after every rule the live auditor must report a clean machine
  (an *accepted* operation followed by a dirty audit is a policy hole
  by definition);
* at teardown the differential gate
  (:mod:`repro.security.fuzz.differential`) re-derives the machine
  state from a raw snapshot and must agree with the live channel.

A disagreement anywhere raises :class:`FuzzViolation`; Hypothesis then
shrinks the rule sequence to a minimal reproducer, which
:data:`LAST_TRACE` captures as a portable JSON operation list (see
``save_trace``/``replay_ops`` and ``tests/corpus/``).

Every test case starts from a cached post-boot snapshot
(:func:`repro.state.restore_from_snapshot` — about a millisecond)
instead of re-booting, which is what makes hundreds of examples per CI
run affordable.

**Taming.**  Hypersec's policy deliberately allows some operations that
are *structurally* destructive — e.g. unlinking a table pointer whose
subtree holds live descriptors, or rewriting kernel-owned process
mappings — because they violate no security invariant.  Replaying them
blindly would wreck kernel bookkeeping and drown the fuzzer in false
positives, so the executor converts any *allowed* state-changing write
outside fuzz-owned tables (and any unlink of a non-empty subtree) into
a reissue of the current descriptor value: the hypercall path is still
exercised end to end, but the machine stays in the envelope where
"accepted + dirty audit" can only mean a genuine Hypersec bug.
Predicted-deny requests are never tamed — they must bounce off the
policy unchanged.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Set, Tuple

from repro.config import PAGE_BYTES, PAGE_WORDS, SECTION_BYTES, WORD_BYTES
from repro.errors import SecurityViolation
from repro.arch.pagetable import (
    DESC_AP_WRITE,
    DESC_NC,
    DESC_TABLE,
    DESC_USER,
    DESC_VALID,
    DESC_XN,
    Descriptor,
    LEVEL_SPAN,
    make_table_desc,
)
from repro.core import hypercalls as hc
from repro.security.fuzz.differential import differential_audit
from repro.security.fuzz.invariants import Geometry, LEAF_INVARIANTS
from repro.state import restore_from_snapshot
from repro.utils.bitops import align_down

__all__ = [
    "FUZZ_STATS",
    "FuzzViolation",
    "LAST_TRACE",
    "PROFILES",
    "apply_op",
    "fuzz_machine",
    "load_trace",
    "replay_ops",
    "reset_stats",
    "run_fuzz",
    "save_trace",
]

#: Hypercall-sequence trace of the most recent test case (minimal
#: reproducer after Hypothesis shrinking): ``{"op": ..., "result": ...}``
#: entries, JSON-serializable.
LAST_TRACE: List[dict] = []

#: Aggregate counters of the most recent :func:`run_fuzz`/replay —
#: examples executed, per-rule allowed/denied/tamed splits, violations.
FUZZ_STATS: Dict[str, int] = {}

#: Fuzzing profiles: linear-map mode of the machine under test.
PROFILES = ("section", "page")

_DENY, _ALLOW, _EITHER = "deny", "allow", "either"

_ADDR_MASK = ((1 << 48) - 1) & ~(PAGE_BYTES - 1)

#: SID no application ever owns.
_BOGUS_SID = 0x7777

_BOOT_SNAPSHOTS: Dict[str, object] = {}


class FuzzViolation(AssertionError):
    """The machine's verdict and the invariant spec disagree."""


def reset_stats() -> None:
    FUZZ_STATS.clear()


def _bump(key: str, amount: int = 1) -> None:
    FUZZ_STATS[key] = FUZZ_STATS.get(key, 0) + amount


def _hash64(index: int) -> int:
    """Deterministic pseudo-random 64-bit value for payload bytes."""
    return (index * 0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03) % (1 << 64)


# ----------------------------------------------------------------------
# Boot-image cache
# ----------------------------------------------------------------------
def _fuzz_platform_config():
    from repro.config import PlatformConfig

    # The smallest geometry that boots: keeps every audit walk and
    # bitmap scan cheap so hundreds of examples fit in a CI run.
    return PlatformConfig(
        dram_bytes=32 * 1024 * 1024,
        secure_bytes=4 * 1024 * 1024,
    )


def boot_snapshot(profile: str):
    """Build (once) and return the post-boot snapshot for a profile."""
    if profile not in PROFILES:
        raise ValueError(f"unknown fuzz profile {profile!r}; "
                         f"choose from {sorted(PROFILES)}")
    snapshot = _BOOT_SNAPSHOTS.get(profile)
    if snapshot is None:
        from repro.core.hypernel import build_hypernel
        from repro.kernel.kernel import KernelConfig
        from repro.security import (
            CredIntegrityMonitor,
            DentryIntegrityMonitor,
        )
        from repro.state import capture_snapshot

        system = build_hypernel(
            platform_config=_fuzz_platform_config(),
            kernel_config=KernelConfig(linear_map_mode=profile),
            monitors=[CredIntegrityMonitor(), DentryIntegrityMonitor()],
        )
        system.spawn_init()
        snapshot = capture_snapshot(system)
        _BOOT_SNAPSHOTS[profile] = snapshot
    return snapshot


# ----------------------------------------------------------------------
# The machine-under-test wrapper
# ----------------------------------------------------------------------
class FuzzContext:
    """One restored system plus the fuzzer's own shadow bookkeeping.

    The shadow state (owned tables, registered regions) is maintained
    *independently* of Hypersec's: a divergence between the two shows
    up as a wrong prediction and fails the run.
    """

    def __init__(self, system):
        self.system = system
        self.hypersec = system.hypersec
        self.kernel = system.kernel
        self.bus = system.platform.bus
        config = system.platform.config
        self.geometry = Geometry(
            dram_base=config.dram_base,
            dram_limit=config.dram_base + config.dram_bytes,
            secure_base=system.platform.secure_base,
            secure_limit=system.platform.secure_limit,
        )
        #: table pages this fuzzer allocated/registered, in order.
        self.fuzz_tables: List[int] = []
        self.fuzz_roots: List[int] = []
        #: data pages owned by the fuzzer: [0:2] monitored-region
        #: targets, [2:4] emulated-write targets.  Never mapped into a
        #: process tree, never freed — safe to monitor and scribble on.
        self.scratch: List[int] = [
            self._fresh_page(f"fuzz_scratch{i}") for i in range(4)
        ]
        #: shadow of every registered (base_pa, end_pa, sid) triple.
        self.regions: Set[Tuple[int, int, int]] = set()
        for ranges in self.hypersec._region_index.values():
            self.regions.update(ranges)
        self.monitor_sid = system.monitors[0].sid

    def _fresh_page(self, owner: str) -> int:
        frame = self.kernel.allocator.alloc(owner)
        self.system.platform.memory.fill(frame, PAGE_WORDS, 0)
        return frame

    @property
    def fuzz_table_set(self) -> Set[int]:
        return set(self.fuzz_tables)

    def hvc(self, func: int, *args: int) -> int:
        return self.kernel.cpu.hvc(func, *args)

    def table_is_empty(self, table: int) -> bool:
        return all(
            self.bus.peek(table + index * WORD_BYTES) == 0
            for index in range(PAGE_WORDS)
        )

    def pick(self, pool, index: int):
        """Deterministic modular pick from a pool (None when empty)."""
        pool = sorted(pool) if isinstance(pool, (set, frozenset)) else list(pool)
        if not pool:
            return None
        return pool[index % len(pool)]


# ----------------------------------------------------------------------
# Prediction: what must Hypersec do with this request?
# ----------------------------------------------------------------------
def predict_pgtable_write(ctx: FuzzContext, desc_addr: int, value: int,
                          level: int) -> str:
    """Classify a ``pgtable_write`` request against the invariant spec.

    ``_DENY``: accepting the write would break a shared invariant (or
    the structural typing rules that keep the walk sound) — Hypersec
    *must* refuse.  ``_ALLOW``: a clearly legitimate update Hypersec
    *must* accept.  ``_EITHER``: legality depends on structural policy
    (monitored spans, the immutable linear map); only consistency is
    checked — a denial must change nothing, an accept must leave the
    audit clean.
    """
    h = ctx.hypersec
    if (level not in LEVEL_SPAN or desc_addr % WORD_BYTES
            or not 0 <= value < (1 << 64)):
        return _DENY
    table_page = align_down(desc_addr, PAGE_BYTES)
    if table_page not in h.table_pages:
        return _DENY
    known_level = h._table_levels.get(table_page)
    if known_level is None:
        return _ALLOW if value == 0 else _DENY
    if level != known_level:
        return _DENY
    desc = Descriptor(value)
    old = Descriptor(ctx.bus.peek(desc_addr))
    if desc.valid and level < 3 and desc.is_table:
        if desc.address not in h.table_pages:
            return _DENY
        child_level = h._table_levels.get(desc.address)
        if child_level is not None and child_level != level + 1:
            return _DENY
        return _predict_old_mapping(old, desc, level)
    if desc.valid:
        if any(invariant.violated(ctx.geometry, level, desc, h.table_pages)
               for invariant in LEAF_INVARIANTS):
            return _DENY
        return _predict_old_mapping(old, desc, level)
    return _predict_old_mapping(old, None, level)


def _predict_old_mapping(old: Descriptor, new: Optional[Descriptor],
                         level: int) -> str:
    if not old.valid:
        return _ALLOW
    old_is_table = level < 3 and old.is_table
    new_is_table = (new is not None and new.valid
                    and level < 3 and new.is_table)
    if (new is not None and new.valid and old_is_table == new_is_table
            and old.address == new.address):
        return _ALLOW  # attribute-only rewrite: same translation
    return _EITHER  # monitored-span / linear-map structural rules


def _predict_free(ctx: FuzzContext, table: int) -> str:
    h = ctx.hypersec
    if table not in h.table_pages:
        return _DENY
    if (table == align_down(h.kernel_root, PAGE_BYTES)
            or table in h.linear_tables):
        return _DENY
    if h._table_refs.get(table):
        return _DENY
    regs = ctx.kernel.cpu.regs
    for reg in ("TTBR0_EL1", "TTBR1_EL1"):
        if align_down(regs.read(reg), PAGE_BYTES) == table:
            return _DENY
    if not ctx.table_is_empty(table):
        return _DENY
    return _ALLOW


# ----------------------------------------------------------------------
# Operand resolution (symbolic anchors keep corpus traces portable)
# ----------------------------------------------------------------------
def _resolve_table(ctx: FuzzContext, anchor: dict) -> Optional[int]:
    kind, index = anchor["kind"], anchor.get("index", 0)
    h = ctx.hypersec
    if kind == "fuzz":
        return ctx.pick(ctx.fuzz_tables, index)
    if kind == "pgd":
        return ctx.kernel.procs.current.mm.pgd
    if kind == "root":
        return align_down(h.kernel_root, PAGE_BYTES)
    if kind == "linear":
        return ctx.pick(h.linear_tables, index)
    if kind == "unreg":
        return ctx.scratch[0]
    raise ValueError(f"unknown table anchor {kind!r}")


def _resolve_target(ctx: FuzzContext, space: str, index: int) -> int:
    geometry = ctx.geometry
    h = ctx.hypersec
    if space == "ram":
        pages = (geometry.secure_base - geometry.dram_base) // PAGE_BYTES
        return geometry.dram_base + (index % pages) * PAGE_BYTES
    if space == "secure":
        pages = (geometry.secure_limit - geometry.secure_base) // PAGE_BYTES
        return geometry.secure_base + (index % pages) * PAGE_BYTES
    if space == "table":
        return ctx.pick(h.table_pages, index) or geometry.dram_base
    if space == "fuzz":
        return ctx.pick(ctx.fuzz_tables, index) or ctx.scratch[0]
    if space == "monitored":
        return (ctx.pick(h._monitored_page_refs, index)
                or geometry.dram_base)
    if space == "off":
        return geometry.dram_limit + (index % 16) * PAGE_BYTES
    raise ValueError(f"unknown target space {space!r}")


def _build_desc(ctx: FuzzContext, spec: dict, level: int) -> int:
    kind = spec["kind"]
    if kind == "zero":
        return 0
    if kind == "garbage":
        return _hash64(spec.get("index", 0))
    target = _resolve_target(ctx, spec["space"], spec.get("index", 0))
    if kind == "table":
        # Allowed table installs must stay inside the fuzz-owned forest
        # (a verified pointer to a kernel-owned table would leave a
        # reference the kernel cannot know about); nudge any other
        # registered page off the registered set so the policy must
        # refuse it.
        if spec["space"] != "fuzz":
            while target in ctx.hypersec.table_pages:
                target += PAGE_BYTES
        return make_table_desc(align_down(target, PAGE_BYTES)
                               & ((1 << 48) - 1))
    raw = (target & _ADDR_MASK) | DESC_VALID
    if level == 3:
        raw |= DESC_TABLE  # page descriptors carry the table bit
    if spec.get("writable"):
        raw |= DESC_AP_WRITE
    if not spec.get("executable"):
        raw |= DESC_XN
    if not spec.get("cacheable", True):
        raw |= DESC_NC
    if spec.get("user"):
        raw |= DESC_USER
    return raw


# ----------------------------------------------------------------------
# The shared operation executor (rules AND corpus replay run this)
# ----------------------------------------------------------------------
def apply_op(ctx: FuzzContext, op: dict) -> str:
    """Execute one fuzz operation; returns a result tag for stats.

    Raises :class:`FuzzViolation` whenever Hypersec's verdict
    contradicts the invariant-spec prediction, a denied request changed
    state, or an accepted request did not take effect.
    """
    handler = _OP_HANDLERS.get(op.get("op"))
    if handler is None:
        raise ValueError(f"unknown fuzz op {op.get('op')!r}")
    tag = handler(ctx, op)
    _bump("ops")
    _bump(f"{op['op']}.{tag}")
    LAST_TRACE.append({"op": op, "result": tag})
    return tag


def _op_alloc(ctx: FuzzContext, op: dict) -> str:
    flaw = op.get("flaw", "none")
    geometry = ctx.geometry
    if flaw in ("none", "dirty"):
        frame = ctx._fresh_page("fuzz_table")
        if flaw == "dirty":
            ctx.bus.poke(frame + 8 * WORD_BYTES, 0xDEAD)
    elif flaw == "secure":
        frame = geometry.secure_base + PAGE_BYTES
    elif flaw == "off":
        frame = geometry.dram_limit + PAGE_BYTES
    elif flaw == "misaligned":
        frame = geometry.dram_base + 8
    elif flaw == "dup":
        frame = ctx.pick(ctx.hypersec.table_pages, op.get("index", 0))
    else:
        raise ValueError(f"unknown alloc flaw {flaw!r}")
    expect_ok = flaw == "none"
    result = ctx.hvc(hc.HVC_PGTABLE_ALLOC, frame, int(op.get("root", False)))
    if expect_ok and result != hc.HVC_OK:
        raise FuzzViolation(
            f"legitimate pgtable_alloc of {frame:#x} denied")
    if not expect_ok and result != hc.HVC_DENIED:
        raise FuzzViolation(
            f"flawed pgtable_alloc ({flaw}) of {frame:#x} accepted")
    if result == hc.HVC_OK:
        ctx.fuzz_tables.append(frame)
        if op.get("root"):
            ctx.fuzz_roots.append(frame)
        return "ok"
    return "denied"


def _op_write(ctx: FuzzContext, op: dict) -> str:
    table = _resolve_table(ctx, op["table"])
    if table is None:
        return "skip"
    slot = table + (op["slot"] % PAGE_WORDS) * WORD_BYTES
    level = op["level"]
    if level == 0:  # "auto": use the table's recorded level
        level = ctx.hypersec._table_levels.get(
            align_down(table, PAGE_BYTES), 1)
    value = _build_desc(ctx, op["desc"], level)
    prediction = predict_pgtable_write(ctx, slot, value, level)
    old_raw = ctx.bus.peek(slot)
    tamed = False
    if prediction != _DENY and value != old_raw:
        old = Descriptor(old_raw)
        unsafe = False
        if table not in ctx.fuzz_table_set:
            # Outside fuzz-owned tables any accepted state change wrecks
            # kernel bookkeeping (module docstring): probe with the
            # current value instead.
            unsafe = old_raw != 0 or value != 0
        elif old.valid and level < 3 and old.is_table:
            # Never orphan a non-empty subtree, never unhook a
            # kernel-owned child: the policy allows both.
            child = old.address
            unsafe = not (child in ctx.fuzz_table_set
                          and ctx.table_is_empty(child))
        if unsafe:
            value = old_raw
            prediction = predict_pgtable_write(ctx, slot, value, level)
            tamed = True
    result = ctx.hvc(hc.HVC_PGTABLE_WRITE, slot, value, level)
    after = ctx.bus.peek(slot)
    if result == hc.HVC_OK:
        if prediction == _DENY:
            raise FuzzViolation(
                f"invariant-violating write accepted: slot {slot:#x} "
                f"level {level} value {value:#x}")
        if after != value:
            raise FuzzViolation(
                f"accepted write to {slot:#x} not applied")
        return "tamed" if tamed else "allowed"
    if prediction == _ALLOW:
        raise FuzzViolation(
            f"legitimate write denied: slot {slot:#x} level {level} "
            f"value {value:#x}")
    if after != old_raw:
        raise FuzzViolation(
            f"denied write to {slot:#x} changed state anyway")
    return "denied"


def _op_link(ctx: FuzzContext, op: dict) -> str:
    """A guaranteed-legitimate table install: fuzz child, empty slot."""
    h = ctx.hypersec
    parents = [t for t in (ctx.fuzz_roots + ctx.fuzz_tables)
               if h._table_levels.get(t, 3) < 3]
    parent = ctx.pick(parents, op.get("parent", 0))
    if parent is None:
        return "skip"
    level = h._table_levels[parent]
    children = [t for t in ctx.fuzz_tables
                if t != parent
                and h._table_levels.get(t, level + 1) == level + 1]
    child = ctx.pick(children, op.get("child", 0))
    if child is None:
        return "skip"
    start = op.get("slot", 0) % PAGE_WORDS
    slot = next(
        (parent + ((start + i) % PAGE_WORDS) * WORD_BYTES
         for i in range(PAGE_WORDS)
         if ctx.bus.peek(parent + ((start + i) % PAGE_WORDS) * WORD_BYTES)
         == 0),
        None,
    )
    if slot is None:
        return "skip"
    result = ctx.hvc(hc.HVC_PGTABLE_WRITE, slot, make_table_desc(child),
                     level)
    if result != hc.HVC_OK:
        raise FuzzViolation(
            f"legitimate table link denied: {child:#x} under {parent:#x} "
            f"at level {level}")
    return "ok"


def _op_free(ctx: FuzzContext, op: dict) -> str:
    kind = op.get("target", "fuzz")
    h = ctx.hypersec
    if kind == "fuzz":
        table = ctx.pick(ctx.fuzz_tables, op.get("index", 0))
    elif kind == "root":
        table = align_down(h.kernel_root, PAGE_BYTES)
    elif kind == "linear":
        table = ctx.pick(h.linear_tables, op.get("index", 0))
    elif kind == "unreg":
        table = ctx.scratch[0]
    else:
        raise ValueError(f"unknown free target {kind!r}")
    if table is None:
        return "skip"
    prediction = _predict_free(ctx, table)
    result = ctx.hvc(hc.HVC_PGTABLE_FREE, table)
    if result == hc.HVC_OK:
        if prediction == _DENY:
            raise FuzzViolation(f"unsafe pgtable_free of {table:#x} accepted")
        if table in ctx.fuzz_tables:
            ctx.fuzz_tables.remove(table)
        if table in ctx.fuzz_roots:
            ctx.fuzz_roots.remove(table)
        return "ok"
    if prediction == _ALLOW:
        raise FuzzViolation(f"legitimate pgtable_free of {table:#x} denied")
    return "denied"


def _op_region(ctx: FuzzContext, op: dict) -> str:
    h = ctx.hypersec
    act = op["act"]
    kind = op.get("target", "scratch")
    sid = ctx.monitor_sid
    index = op.get("index", 0)
    if kind == "dup":
        triple = ctx.pick(ctx.regions, index)
        if triple is None:
            return "skip"
        base_pa, end_pa, sid = triple
        size = end_pa - base_pa
    elif kind == "scratch":
        page = ctx.scratch[index % 2]
        offset = (op.get("offset", 0) // WORD_BYTES * WORD_BYTES
                  ) % (PAGE_BYTES - WORD_BYTES)
        base_pa = page + offset
        size = max(WORD_BYTES,
                   min(op.get("size", WORD_BYTES) // WORD_BYTES * WORD_BYTES,
                       PAGE_BYTES - offset))
    elif kind == "secure":
        base_pa = ctx.geometry.secure_base + PAGE_BYTES
        size = op.get("size", 64) or 64
    elif kind == "off":
        base_pa = ctx.geometry.dram_limit + PAGE_BYTES
        size = op.get("size", 64) or 64
    elif kind == "bogus":
        base_pa = ctx.scratch[0]
        size = 64
        sid = _BOGUS_SID
    else:
        raise ValueError(f"unknown region target {kind!r}")
    end_pa = base_pa + size
    triple = (base_pa, end_pa, sid)
    in_coverage = (h.mbm is not None and size > 0
                   and h.mbm.bitmap.covers(base_pa)
                   and h.mbm.bitmap.covers(end_pa - 1))
    if act == "reg":
        if sid not in h._apps or not in_coverage or triple in ctx.regions:
            prediction = _DENY
        else:
            prediction = _ALLOW
        func = hc.HVC_REGISTER_REGION
    else:
        prediction = _ALLOW if (triple in ctx.regions and in_coverage
                                and sid in h._apps) else _DENY
        func = hc.HVC_UNREGISTER_REGION
    kva = ctx.kernel.linear_map.kva(base_pa)
    result = ctx.hvc(func, sid, kva, size)
    if result == hc.HVC_OK:
        if prediction == _DENY:
            raise FuzzViolation(
                f"{act} of region {base_pa:#x}+{size} (sid {sid}) accepted "
                "against the shadow registry")
        if act == "reg":
            ctx.regions.add(triple)
        else:
            ctx.regions.discard(triple)
        return "ok"
    if prediction == _ALLOW:
        raise FuzzViolation(
            f"legitimate region {act} of {base_pa:#x}+{size} denied")
    return "denied"


def _op_msr(ctx: FuzzContext, op: dict) -> str:
    cpu = ctx.kernel.cpu
    reg, kind = op["reg"], op["kind"]
    saved = cpu.mrs(reg)
    restore = False
    if kind == "good":
        value, expect_violation = saved, False
    elif kind == "rogue":
        expect_violation = True
        if reg == "TTBR1_EL1":
            value = saved ^ PAGE_BYTES
        elif reg == "TTBR0_EL1":
            value = ctx.scratch[0]  # never a registered root
        elif reg == "SCTLR_EL1":
            from repro.arch.registers import SCTLR_M
            value = saved & ~SCTLR_M
        else:  # TCR_EL1 / MAIR_EL1
            value = saved ^ 0x10
    elif kind == "fuzz_root":
        if reg != "TTBR0_EL1":
            return "skip"
        value = ctx.pick(ctx.fuzz_roots, op.get("index", 0))
        if value is None:
            return "skip"
        expect_violation, restore = False, True
    elif kind == "park":
        if reg != "TTBR0_EL1":
            return "skip"
        value, expect_violation, restore = 0, False, True
    else:
        raise ValueError(f"unknown msr kind {kind!r}")
    try:
        cpu.msr(reg, value)
        violated = False
    except SecurityViolation:
        violated = True
    if violated != expect_violation:
        raise FuzzViolation(
            f"msr {reg} <- {value:#x}: expected "
            f"{'a trap' if expect_violation else 'acceptance'}, got "
            f"{'a trap' if violated else 'acceptance'}")
    if violated and cpu.mrs(reg) != saved:
        raise FuzzViolation(f"refused msr {reg} changed the register")
    if not violated and cpu.mrs(reg) != value:
        raise FuzzViolation(f"accepted msr {reg} did not take effect")
    if restore:
        cpu.msr(reg, saved)
    return "trapped" if violated else "ok"


def _op_emulate(ctx: FuzzContext, op: dict) -> str:
    kind = op.get("target", "scratch")
    index = op.get("index", 0)
    geometry = ctx.geometry
    offset = (op.get("offset", 0) // WORD_BYTES * WORD_BYTES
              ) % (PAGE_BYTES // 2)
    if kind == "scratch":
        dest = ctx.scratch[2 + index % 2] + offset
        expect_ok = True
    elif kind == "table":
        dest = (ctx.pick(ctx.hypersec.table_pages, index)
                or geometry.dram_base) + offset
        expect_ok = False
    elif kind == "secure":
        dest = geometry.secure_base + offset
        expect_ok = False
    elif kind == "off":
        dest = geometry.dram_limit + offset
        expect_ok = False
    elif kind == "misaligned":
        dest = ctx.scratch[2] + offset + 4
        expect_ok = False
    else:
        raise ValueError(f"unknown emulate target {kind!r}")
    if op.get("block"):
        nwords = max(1, op.get("nwords", 1) % 64)
        if kind == "scratch":
            nwords = min(nwords, (PAGE_BYTES - offset) // WORD_BYTES)
        if kind == "misaligned":
            expect_ok = False
        result = ctx.hvc(hc.HVC_EMULATE_WRITE_BLOCK, dest, nwords)
    else:
        value = _hash64(index)
        result = ctx.hvc(hc.HVC_EMULATE_WRITE, dest, value)
        if result == hc.HVC_OK and ctx.bus.peek(dest) != value:
            raise FuzzViolation(
                f"accepted emulated write to {dest:#x} not applied")
    if expect_ok and result != hc.HVC_OK:
        raise FuzzViolation(f"legitimate emulated write to {dest:#x} denied")
    if not expect_ok and result != hc.HVC_DENIED:
        raise FuzzViolation(f"hostile emulated write to {dest:#x} accepted")
    return "ok" if result == hc.HVC_OK else "denied"


def _op_attack(ctx: FuzzContext, op: dict) -> str:
    from repro.attacks import FUZZABLE_ATTACKS

    attack_cls = FUZZABLE_ATTACKS[op["name"]]
    outcome = attack_cls().mount(ctx.system)
    if outcome.succeeded or not outcome.blocked:
        raise FuzzViolation(
            f"attack {op['name']!r} was not blocked: {outcome.notes}")
    return "blocked"


def _op_hvc_raw(ctx: FuzzContext, op: dict) -> str:
    func, nargs = op["func"], op["nargs"] % 8
    bounds = ctx.hypersec._HVC_ARITY.get(func)
    if bounds is not None and bounds[0] <= nargs <= bounds[1]:
        return "skip"  # a well-formed call belongs to the typed rules
    result = ctx.hvc(func, *([0] * nargs))
    if result != hc.HVC_DENIED:
        raise FuzzViolation(
            f"malformed hypercall (func {func}, {nargs} args) accepted")
    return "denied"


def _op_process(ctx: FuzzContext, op: dict) -> str:
    kernel = ctx.kernel
    tables_before = set(ctx.hypersec.table_pages)
    parent = kernel.procs.current
    child = kernel.sys.fork(parent)
    kernel.procs.context_switch(child)
    kernel.sys.execv(child)
    kernel.sys.exit(child)
    kernel.procs.context_switch(parent)
    kernel.sys.wait(parent)
    if set(ctx.hypersec.table_pages) != tables_before:
        raise FuzzViolation(
            "process lifecycle leaked or lost registered table pages")
    return "ok"


def _op_mbm(ctx: FuzzContext, op: dict) -> str:
    result = ctx.hvc(hc.HVC_MBM_SERVICE)
    if result != hc.HVC_OK:
        raise FuzzViolation("MBM interrupt service hypercall denied")
    return "ok"


_OP_HANDLERS = {
    "alloc": _op_alloc,
    "write": _op_write,
    "link": _op_link,
    "free": _op_free,
    "region": _op_region,
    "msr": _op_msr,
    "emulate": _op_emulate,
    "attack": _op_attack,
    "hvc_raw": _op_hvc_raw,
    "process": _op_process,
    "mbm": _op_mbm,
}


# ----------------------------------------------------------------------
# The Hypothesis state machine
# ----------------------------------------------------------------------
def fuzz_machine(profile: str = "section"):
    """Build the RuleBasedStateMachine class for one profile."""
    from hypothesis import strategies as st
    from hypothesis.stateful import (
        RuleBasedStateMachine,
        invariant,
        rule,
    )

    boot = boot_snapshot(profile)
    index = st.integers(min_value=0, max_value=2 ** 16)
    desc_spec = st.fixed_dictionaries({
        "kind": st.sampled_from(
            ["zero", "zero", "leaf", "leaf", "leaf", "table", "garbage"]),
        "space": st.sampled_from(
            ["ram", "secure", "table", "fuzz", "monitored", "off"]),
        "index": index,
        "writable": st.booleans(),
        "executable": st.booleans(),
        "user": st.booleans(),
        "cacheable": st.booleans(),
    })
    table_anchor = st.fixed_dictionaries({
        "kind": st.sampled_from(["fuzz", "fuzz", "pgd", "root", "linear",
                                 "unreg"]),
        "index": index,
    })

    class HypersecFuzzMachine(RuleBasedStateMachine):
        def __init__(self):
            super().__init__()
            LAST_TRACE.clear()
            _bump("examples")
            self.ctx = FuzzContext(restore_from_snapshot(boot))

        @rule(root=st.booleans(),
              flaw=st.sampled_from(["none", "none", "none", "dirty",
                                    "secure", "off", "misaligned", "dup"]),
              idx=index)
        def op_alloc(self, root, flaw, idx):
            apply_op(self.ctx, {"op": "alloc", "root": bool(root),
                                "flaw": flaw, "index": idx})

        @rule(anchor=table_anchor, slot=index,
              level=st.integers(min_value=0, max_value=3), desc=desc_spec)
        def op_write(self, anchor, slot, level, desc):
            apply_op(self.ctx, {"op": "write", "table": anchor,
                                "slot": slot, "level": level, "desc": desc})

        @rule(parent=index, child=index, slot=index)
        def op_link(self, parent, child, slot):
            apply_op(self.ctx, {"op": "link", "parent": parent,
                                "child": child, "slot": slot})

        @rule(kind=st.sampled_from(["fuzz", "fuzz", "fuzz", "root",
                                    "linear", "unreg"]),
              idx=index)
        def op_free(self, kind, idx):
            apply_op(self.ctx, {"op": "free", "target": kind,
                                "index": idx})

        @rule(act=st.sampled_from(["reg", "reg", "unreg"]),
              kind=st.sampled_from(["scratch", "scratch", "scratch",
                                    "dup", "secure", "off", "bogus"]),
              idx=index, offset=index, size=index)
        def op_region(self, act, kind, idx, offset, size):
            apply_op(self.ctx, {"op": "region", "act": act,
                                "target": kind, "index": idx,
                                "offset": offset, "size": size})

        @rule(reg=st.sampled_from(["TTBR0_EL1", "TTBR1_EL1", "SCTLR_EL1",
                                   "TCR_EL1", "MAIR_EL1"]),
              kind=st.sampled_from(["good", "rogue", "rogue", "fuzz_root",
                                    "park"]),
              idx=index)
        def op_msr(self, reg, kind, idx):
            apply_op(self.ctx, {"op": "msr", "reg": reg, "kind": kind,
                                "index": idx})

        @rule(kind=st.sampled_from(["scratch", "scratch", "table",
                                    "secure", "off", "misaligned"]),
              block=st.booleans(), idx=index, offset=index, nwords=index)
        def op_emulate(self, kind, block, idx, offset, nwords):
            apply_op(self.ctx, {"op": "emulate", "target": kind,
                                "block": bool(block), "index": idx,
                                "offset": offset, "nwords": nwords})

        @rule(name=st.sampled_from(sorted(_attack_names())))
        def op_attack(self, name):
            apply_op(self.ctx, {"op": "attack", "name": name})

        @rule(func=st.integers(min_value=0, max_value=64), nargs=index)
        def op_hvc_raw(self, func, nargs):
            apply_op(self.ctx, {"op": "hvc_raw", "func": func,
                                "nargs": nargs})

        @rule()
        def op_process(self):
            apply_op(self.ctx, {"op": "process"})

        @rule()
        def op_mbm(self):
            apply_op(self.ctx, {"op": "mbm"})

        @invariant()
        def live_audit_clean(self):
            report = self.ctx.hypersec.audit()
            if not report.clean:
                _bump("violations")
                tail = LAST_TRACE[-1]["op"] if LAST_TRACE else None
                raise FuzzViolation(
                    f"live audit dirty after {tail!r}: {report}")

        def teardown(self):
            result = differential_audit(self.ctx.system)
            if not result.clean:
                _bump("differential_disagreements")
                raise FuzzViolation(str(result))
            _bump("differential_gates")

    HypersecFuzzMachine.__name__ = f"HypersecFuzzMachine_{profile}"
    return HypersecFuzzMachine


def _attack_names():
    from repro.attacks import FUZZABLE_ATTACKS

    return FUZZABLE_ATTACKS.keys()


# ----------------------------------------------------------------------
# Drivers: seeded runs and corpus replay
# ----------------------------------------------------------------------
def run_fuzz(profile: str = "section", seed: int = 0,
             max_examples: int = 100, steps: int = 8) -> Dict[str, int]:
    """Run the state machine; returns the stats counters.

    Deterministic for a fixed ``(profile, seed, max_examples, steps)``;
    raises :class:`FuzzViolation` (with :data:`LAST_TRACE` holding the
    shrunk reproducer) on any verdict/invariant disagreement.
    """
    from hypothesis import HealthCheck, seed as hypothesis_seed, settings
    from hypothesis.stateful import run_state_machine_as_test

    reset_stats()
    machine = fuzz_machine(profile)
    run_state_machine_as_test(
        hypothesis_seed(seed)(machine),
        settings=settings(
            max_examples=max_examples,
            stateful_step_count=steps,
            deadline=None,
            database=None,
            suppress_health_check=list(HealthCheck),
        ),
    )
    return dict(FUZZ_STATS)


def replay_ops(profile: str, ops: List[dict]) -> Dict[str, int]:
    """Replay a recorded operation list against a fresh machine.

    Runs the identical executor and checks (per-op live audit, final
    differential gate) as the state machine, so a trace that failed
    once keeps failing until the underlying bug is fixed.
    """
    reset_stats()
    LAST_TRACE.clear()
    _bump("examples")
    ctx = FuzzContext(restore_from_snapshot(boot_snapshot(profile)))
    for op in ops:
        apply_op(ctx, op)
        report = ctx.hypersec.audit()
        if not report.clean:
            _bump("violations")
            raise FuzzViolation(f"live audit dirty after {op!r}: {report}")
    result = differential_audit(ctx.system)
    if not result.clean:
        _bump("differential_disagreements")
        raise FuzzViolation(str(result))
    _bump("differential_gates")
    return dict(FUZZ_STATS)


def save_trace(path: str, profile: str, note: str = "") -> None:
    """Write :data:`LAST_TRACE` as a portable corpus file."""
    document = {
        "schema": "repro.fuzz.trace/1",
        "profile": profile,
        "note": note,
        "ops": [entry["op"] for entry in LAST_TRACE],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_trace(path: str) -> Tuple[str, List[dict]]:
    """Read a corpus file; returns ``(profile, ops)``."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("schema") != "repro.fuzz.trace/1":
        raise ValueError(f"{path}: not a fuzz trace file")
    return document["profile"], document["ops"]


def replay_corpus(directory: str) -> Dict[str, int]:
    """Replay every ``*.json`` trace under a corpus directory."""
    totals: Dict[str, int] = {}
    files = sorted(
        name for name in os.listdir(directory) if name.endswith(".json")
    )
    for name in files:
        profile, ops = load_trace(os.path.join(directory, name))
        stats = replay_ops(profile, ops)
        for key, value in stats.items():
            totals[key] = totals.get(key, 0) + value
    totals["corpus_files"] = len(files)
    FUZZ_STATS.clear()
    FUZZ_STATS.update(totals)
    return totals
