"""Offline, dissimilar verification of a Hypersec machine image.

This is the second verification channel the fuzzer diffs against the
live auditor (:mod:`repro.core.audit`).  It deliberately shares *no
state* with the running system: everything is re-derived from a raw
:class:`~repro.state.Snapshot` —

* the physical memory image is reloaded into a private
  :class:`~repro.hw.memory.PhysicalMemory` (no bus, no caches, no
  timing);
* translation roots come from the snapshotted ``TTBR0_EL1`` /
  ``TTBR1_EL1`` register values, and reachable tables from walking the
  raw descriptors;
* monitored pages are decoded from the raw MBM bitmap words, whose
  location is recomputed from the platform geometry alone (mirroring
  the layout contract in :mod:`repro.core.mbm`, not reading the MBM
  object's state);
* the kernel linear-map view is re-walked from ``TTBR1_EL1`` instead of
  using :meth:`~repro.kernel.physmem.LinearMap.leaf_desc_addr`.

The only Hypersec bookkeeping consulted is the *claimed* policy
(``table_pages``, ``root_tables``, ``kernel_root``, ``recorded_regs``)
— and it is consulted as a claim to be checked, never as ground truth:
``claimed_tables`` feeds the reachable-vs-registered ``TABLE_TOPOLOGY``
comparison, so a bookkeeping desync the live auditor cannot see (it
trusts the same bookkeeping) becomes a finding here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.config import PAGE_BYTES, PAGE_WORDS, WORD_BYTES
from repro.errors import SnapshotError
from repro.hw.memory import PhysicalMemory
from repro.arch.pagetable import Descriptor, index_for_level
from repro.security.fuzz.invariants import (
    Evidence,
    Geometry,
    InvariantReport,
    run_invariants,
    walk_tree,
)
from repro.state import Snapshot

_PAGE_MASK = PAGE_BYTES - 1

#: Layout contract with repro.core.mbm: the bitmap lives 1 MB into the
#: secure region, one bit per covered word, covering all of non-secure
#: DRAM.  Recomputed here from the geometry so this channel does not
#: read the MBM object's serialized state.
_BITMAP_OFFSET = 1 << 20
_WORDS_PER_BITMAP_WORD = 64


class SnapshotEvidence(Evidence):
    """A serialized machine image as an invariant-checking evidence
    source (see module docstring for the dissimilarity contract)."""

    def __init__(self, snapshot: Snapshot):
        config = snapshot.platform_config()
        dram_limit = config.dram_base + config.dram_bytes
        secure_base = dram_limit - config.secure_bytes
        self.geometry = Geometry(
            dram_base=config.dram_base,
            dram_limit=dram_limit,
            secure_base=secure_base,
            secure_limit=dram_limit,
        )
        memory_state = snapshot.section("memory")
        self._memory = PhysicalMemory()
        for base, limit in memory_state["ranges"]:
            self._memory.add_range(int(base), int(limit) - int(base))
        self._memory.load_state(memory_state)
        self._regs = {
            str(name): int(value)
            for name, value in snapshot.section("cpu")["regs"].items()
        }
        try:
            policy = snapshot.section("hypersec")
        except SnapshotError:
            raise SnapshotError(
                f"snapshot holds a {snapshot.system_name!r} system; only "
                "hypernel images carry the Hypersec policy to check"
            ) from None
        self._claimed_tables = {int(p) for p in policy["table_pages"]}
        self._claimed_roots = {int(p) for p in policy["root_tables"]}
        self._recorded_root = int(policy["kernel_root"])
        self._recorded_regs = {
            str(name): int(value)
            for name, value in policy["recorded_regs"].items()
        }
        self._has_mbm = "mbm" in snapshot.sections
        self._reachable: Optional[Set[int]] = None
        self._monitored: Optional[Set[int]] = None

    # -- raw access ----------------------------------------------------
    def peek(self, paddr: int) -> int:
        return self._memory.read_word(paddr)

    def backed(self, paddr: int) -> bool:
        return self._memory.contains(paddr)

    def reg(self, name: str) -> int:
        return self._regs[name]

    def recorded_reg(self, name: str) -> Optional[int]:
        """Hypersec's recorded value for a trapped VM register."""
        return self._recorded_regs.get(name)

    # -- translation topology -----------------------------------------
    def roots(self) -> List[int]:
        """Walk from the *hardware* translation roots first (TTBR1/0),
        then every claimed root, so parked process trees are covered
        without trusting that the claimed set is complete."""
        roots = {self._regs["TTBR1_EL1"] & ~_PAGE_MASK}
        ttbr0 = self._regs["TTBR0_EL1"] & ~_PAGE_MASK
        if ttbr0:
            roots.add(ttbr0)
        roots.update(self._claimed_roots)
        roots.add(self._recorded_root & ~_PAGE_MASK)
        return sorted(roots)

    def table_pages(self) -> Set[int]:
        return set(self._claimed_tables)

    def claimed_tables(self) -> Optional[Set[int]]:
        return set(self._claimed_tables)

    def reachable_tables(self) -> Set[int]:
        """Every table page reachable from the roots (cached)."""
        if self._reachable is None:
            scratch = InvariantReport()
            reached: Set[int] = set()
            for root in self.roots():
                seen, _leaves = walk_tree(self, root, scratch)
                reached |= seen
            self._reachable = reached
        return set(self._reachable)

    def table_is_empty(self, table: int) -> bool:
        """True when a (backed) table page holds only invalid entries."""
        if not (self.backed(table)
                and self.backed(table + PAGE_BYTES - WORD_BYTES)):
            return False
        return all(
            self.peek(table + index * WORD_BYTES) == 0
            for index in range(PAGE_WORDS)
        )

    # -- linear-map view ----------------------------------------------
    def has_linear_view(self) -> bool:
        return True

    def linear_leaf(self, paddr: int) -> Optional[Descriptor]:
        """Re-walk the kernel linear map from TTBR1 in raw memory."""
        offset = paddr - self.geometry.dram_base
        if offset < 0:
            return None
        table = self._regs["TTBR1_EL1"] & ~_PAGE_MASK
        for level in (1, 2, 3):
            desc_addr = table + index_for_level(offset, level) * WORD_BYTES
            if not self.backed(desc_addr):
                return None
            desc = Descriptor(self.peek(desc_addr))
            if not desc.valid:
                return None
            if level == 3 or not desc.is_table:
                return desc
            table = desc.address
        return None  # pragma: no cover - loop always returns

    # -- monitoring ----------------------------------------------------
    def bitmap_storage(self) -> Optional[Tuple[int, int]]:
        if not self._has_mbm:
            return None
        covered_words = (
            self.geometry.secure_base - self.geometry.dram_base
        ) // WORD_BYTES
        bitmap_words = -(-covered_words // _WORDS_PER_BITMAP_WORD)
        base = self.geometry.secure_base + _BITMAP_OFFSET
        return base, base + bitmap_words * WORD_BYTES

    def monitored_pages(self) -> Set[int]:
        """Decode monitored pages from the raw bitmap words."""
        if self._monitored is None:
            pages: Set[int] = set()
            storage = self.bitmap_storage()
            if storage is not None:
                base, limit = storage
                for word_addr in range(base, limit, WORD_BYTES):
                    raw = self.peek(word_addr)
                    while raw:
                        bit = (raw & -raw).bit_length() - 1
                        raw &= raw - 1
                        word_index = (
                            (word_addr - base) // WORD_BYTES
                        ) * _WORDS_PER_BITMAP_WORD + bit
                        paddr = (self.geometry.dram_base
                                 + word_index * WORD_BYTES)
                        pages.add(paddr & ~_PAGE_MASK)
            self._monitored = pages
        return set(self._monitored)

    def expected_bitmap(self) -> Optional[Dict[int, int]]:
        # The raw bitmap *is* this channel's source of monitored truth;
        # checking it against itself would be vacuous.  The live channel
        # checks it against the registered regions instead.
        return None

    # -- recorded policy ----------------------------------------------
    def recorded_kernel_root(self) -> Optional[int]:
        return self._recorded_root

    def recorded_root_tables(self) -> Set[int]:
        return set(self._claimed_roots)


def check_snapshot(snapshot: Snapshot) -> InvariantReport:
    """Run the full invariant suite against a machine image."""
    return run_invariants(SnapshotEvidence(snapshot))
