"""The kernel-side monitoring hooks (part of the ~200 SLoC kernel patch).

Paper 5.3 / Figure 4, green path: "The security application informs
Hypersec with new regions to be monitored via the hooks inserted into
the kernel code.  When the hook (hypercall) is executed, Hypersec
receives the ID of the security application (SID), the base address and
the size of the region as arguments."

The stub subscribes to the kernel's object allocation/free hooks and, for
each registered application that wants the object's type, issues the
HVC_REGISTER_REGION / HVC_UNREGISTER_REGION hypercalls with kernel
virtual addresses (Hypersec does the VA->PA translation, as the paper
describes).
"""

from __future__ import annotations

from typing import List, TYPE_CHECKING

from repro.core.hypercalls import (
    HVC_OK,
    HVC_REGISTER_REGION,
    HVC_UNREGISTER_REGION,
)
from repro.errors import SecurityViolation
from repro.kernel.objects import ObjectLayout
from repro.utils.stats import StatSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.security.app import SecurityApp


class MonitorHookStub:
    """Connects kernel object lifecycle to Hypersec region hypercalls."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.apps: List["SecurityApp"] = []
        self.stats = StatSet("monitor_hooks")
        self._installed = False

    def add_app(self, app: "SecurityApp") -> None:
        """Route events for ``app`` (must already have a SID)."""
        if app.sid is None:
            raise SecurityViolation(
                f"app {app.name} has no SID; register with Hypersec first",
                policy="hooks",
            )
        self.apps.append(app)

    def install(self) -> None:
        if self._installed:
            return
        self.kernel.object_alloc.subscribe(self._on_alloc)
        self.kernel.object_free.subscribe(self._on_free)
        self.kernel.authorized_update.subscribe(self._on_authorized)
        self._installed = True

    # ------------------------------------------------------------------
    def _on_alloc(self, layout: ObjectLayout, obj_paddr: int) -> None:
        for app in self.apps:
            if not app.wants(layout):
                continue
            for base, size in app.regions_for(layout, obj_paddr):
                self.stats.add("register_hvc")
                result = self.kernel.cpu.hvc(
                    HVC_REGISTER_REGION,
                    app.sid,
                    self.kernel.linear_map.kva(base),
                    size,
                )
                if result != HVC_OK:
                    raise SecurityViolation(
                        f"Hypersec rejected region registration at {base:#x}",
                        policy="hooks",
                    )
                # The app (in the secure space) snapshots the fresh
                # region to seed its shadow state.
                snapshot = [
                    self.kernel.platform.bus.peek(base + off)
                    for off in range(0, size, 8)
                ]
                app.on_region_registered(base, size, snapshot)

    def _on_free(self, layout: ObjectLayout, obj_paddr: int) -> None:
        for app in self.apps:
            if not app.wants(layout):
                continue
            for base, size in app.regions_for(layout, obj_paddr):
                self.stats.add("unregister_hvc")
                self.kernel.cpu.hvc(
                    HVC_UNREGISTER_REGION,
                    app.sid,
                    self.kernel.linear_map.kva(base),
                    size,
                )
                app.on_region_unregistered(base, size)

    def _on_authorized(self, word_paddr: int, value: int) -> None:
        for app in self.apps:
            app.on_authorized(word_paddr, value)
