"""Inode integrity monitor — an extension beyond the paper's two apps.

The paper's evaluated solutions watch ``cred`` and ``dentry``; the MBM's
SID mechanism explicitly supports multiple applications (section 5.3),
so adding a third monitor is pure configuration.  Inodes are a classic
rootkit target too: flipping ``i_mode``/``i_uid`` silently makes a file
setuid-root, and swapping ``i_op`` hijacks its operations table.

The hot ``i_count`` refcount and size/time stamps stay unmonitored —
the same word-granularity economy as the paper's monitors.
"""

from __future__ import annotations

from repro.security.app import RegionTemplate, SecurityApp


class InodeIntegrityMonitor(SecurityApp):
    """Watches the sensitive words of every inode object."""

    def __init__(self):
        super().__init__(
            "inode_monitor",
            [RegionTemplate("inode", coverage="sensitive")],
        )
