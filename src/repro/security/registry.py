"""Serializable descriptions of security-application instances.

Snapshots (:mod:`repro.state`) persist *which* monitors a system was
built with so a restore can reconstruct the same objects before loading
their shadow state.  Only the stock monitor classes are registered;
ad-hoc :class:`~repro.security.app.SecurityApp` subclasses make a
system unsnapshottable (the restore side could not rebuild them).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import ConfigurationError
from repro.security.app import SecurityApp
from repro.security.baseline_page import WholeObjectMonitor
from repro.security.cred_monitor import CredIntegrityMonitor
from repro.security.dentry_monitor import DentryIntegrityMonitor
from repro.security.inode_monitor import InodeIntegrityMonitor

#: class name -> no-argument-compatible constructor.
MONITOR_CLASSES = {
    "CredIntegrityMonitor": CredIntegrityMonitor,
    "DentryIntegrityMonitor": DentryIntegrityMonitor,
    "InodeIntegrityMonitor": InodeIntegrityMonitor,
    "WholeObjectMonitor": WholeObjectMonitor,
}


def monitor_spec(app: SecurityApp) -> Dict[str, Any]:
    """A JSON description from which ``monitor_from_spec`` rebuilds."""
    class_name = type(app).__name__
    if class_name not in MONITOR_CLASSES:
        raise ConfigurationError(
            f"monitor class {class_name!r} is not registered for "
            f"snapshotting (see repro.security.registry)"
        )
    spec: Dict[str, Any] = {"class": class_name}
    if isinstance(app, WholeObjectMonitor):
        spec["layouts"] = sorted(app.templates)
    return spec


def monitor_from_spec(spec: Dict[str, Any]) -> SecurityApp:
    """Reconstruct a monitor instance from its spec."""
    class_name = spec["class"]
    if class_name not in MONITOR_CLASSES:
        raise ConfigurationError(
            f"snapshot references unknown monitor class {class_name!r}"
        )
    cls = MONITOR_CLASSES[class_name]
    if cls is WholeObjectMonitor:
        return WholeObjectMonitor(tuple(spec["layouts"]))
    return cls()
