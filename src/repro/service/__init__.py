"""Experiment service: the ``repro serve`` daemon and its clients.

The one-shot CLI re-pays scheduling and boot cost on every invocation;
this package turns the execution substrate (runner cells, fork-server
pools, the content-addressed cache, repro.obs integrity enforcement)
into a long-lived multi-tenant service:

* :mod:`repro.service.protocol` — length-prefixed JSON frames over a
  unix socket (the same framing discipline as
  :mod:`repro.tools.forkserver`, but JSON instead of pickle: clients
  are untrusted peers, not forked children) plus the wire encoding of
  :class:`~repro.tools.runner.Cell`.
* :mod:`repro.service.queue` — the priority job queue with per-client
  quotas.
* :mod:`repro.service.daemon` — :class:`ReproDaemon`: socket event
  loop, dispatcher thread, warm :class:`~repro.tools.forkserver.\
ForkServerPool` shared across every client, graceful SIGTERM drain.
* :mod:`repro.service.client` — :class:`ReproServiceClient` and the
  ``reproctl`` command bodies (submit / status / result / cancel /
  tail-metrics / shutdown).
* :mod:`repro.service.fabric` — :class:`FabricCoordinator`: fans one
  ``run_cells`` batch across several daemons (local spawns and/or
  remote ``tcp://`` shards) with cache-affinity routing, adaptive cell
  splitting, work stealing, and dead-shard requeue (DESIGN.md §5h).

Contract: results fetched through the daemon are byte-identical to the
same cells run via ``run_cells`` serially (DESIGN.md §5g) — and the
fabric inherits it shard by shard.
"""

from repro.service.client import ReproServiceClient, ServiceError
from repro.service.daemon import DaemonConfig, ReproDaemon
from repro.service.fabric import (
    FabricConfig,
    FabricCoordinator,
    FabricError,
    FabricUnavailable,
)
from repro.service.protocol import PROTOCOL_VERSION, default_socket_path
from repro.service.queue import Job, JobQueue, QuotaExceeded

__all__ = [
    "DaemonConfig",
    "FabricConfig",
    "FabricCoordinator",
    "FabricError",
    "FabricUnavailable",
    "Job",
    "JobQueue",
    "PROTOCOL_VERSION",
    "QuotaExceeded",
    "ReproDaemon",
    "ReproServiceClient",
    "ServiceError",
    "default_socket_path",
]
