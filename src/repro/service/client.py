"""Client library for the ``repro serve`` daemon (the ``reproctl`` core).

:class:`ReproServiceClient` speaks the JSON frame protocol over the
daemon's unix socket.  One client holds one connection; replies and
streamed events share that connection, so :meth:`_request` sorts
arriving frames into *direct replies* (objects carrying ``"ok"``) and
*events* (objects carrying ``"event"``), buffering events until an
iterator asks for them.  Daemon-side errors come back as
:class:`ServiceError` carrying the daemon's error code.

The high-level entry point is :meth:`run_cells`: submit a batch as one
streamed job, consume per-cell events as they land, and return the
payload list in cell order — the exact shape local
:func:`repro.tools.runner.run_cells` returns, which is what makes
``reproctl table1`` byte-identical to ``python -m repro table1``.
"""

from __future__ import annotations

import socket
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.service.protocol import (
    PROTOCOL_VERSION,
    FrameDecoder,
    ServiceError,
    cell_to_wire,
    check_hello_reply,
    connect_endpoint,
    default_socket_path,
    hello_message,
    register_service_fd,
    send_message,
    unregister_service_fd,
)
from repro.tools.runner import Cell

#: How long :meth:`ReproServiceClient.connect` keeps retrying connect
#: refusals (exponential backoff) before giving up.  A just-spawned
#: daemon needs a moment to bind its socket; the first submit racing it
#: should wait that moment out rather than fail.
DEFAULT_CONNECT_RETRY = 2.0


class ReproServiceClient:
    """One connection to a running experiment-service daemon.

    ``socket_path`` accepts a unix-socket path or a ``tcp://host:port``
    endpoint (remote fabric shards).
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        timeout: Optional[float] = 600.0,
        client: Optional[str] = None,
        connect_retry: float = DEFAULT_CONNECT_RETRY,
    ):
        self.socket_path = socket_path or default_socket_path()
        self.timeout = timeout
        self.client = client
        self.connect_retry = connect_retry
        self._sock: Optional[socket.socket] = None
        self._decoder = FrameDecoder()
        #: frames received but not yet consumed, in arrival order
        self._frames: List[Dict[str, Any]] = []
        #: event frames set aside while waiting for a direct reply
        self._events: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    def connect(self) -> "ReproServiceClient":
        if self._sock is not None:
            return self
        sock = connect_endpoint(self.socket_path, timeout=self.timeout,
                                retry_window=self.connect_retry)
        # An in-process daemon (tests, embedders) forks pool workers
        # while this fd is open; an inherited copy would mask EOF on
        # disconnect, so every fork closes it (see repro.service.protocol).
        register_service_fd(sock.fileno())
        self._sock = sock
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                unregister_service_fd(self._sock.fileno())
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ReproServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _next_frame(self) -> Dict[str, Any]:
        """Block for the next frame from the daemon, in arrival order."""
        assert self._sock is not None, "client is not connected"
        while not self._frames:
            try:
                data = self._sock.recv(65536)
            except socket.timeout as exc:
                raise ServiceError(
                    f"timed out after {self.timeout}s waiting for the "
                    f"daemon at {self.socket_path}"
                ) from exc
            if not data:
                raise ServiceError(
                    f"daemon at {self.socket_path} closed the connection"
                )
            self._frames.extend(self._decoder.feed(data))
        return self._frames.pop(0)

    def _next_event(self) -> Dict[str, Any]:
        """Block for the next *event* frame, draining the buffer first."""
        if self._events:
            return self._events.pop(0)
        frame = self._next_frame()
        if "event" in frame:
            return frame
        # A stray direct reply here means the caller interleaved a
        # request with event consumption; surface it loudly rather
        # than silently dropping a reply.
        raise ServiceError(f"expected an event frame, got {frame!r}")

    def _request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one op; return its direct reply, setting aside events."""
        self.connect()
        send_message(self._sock, message)
        while True:
            frame = self._next_frame()
            if "event" in frame:
                self._events.append(frame)
                continue
            if not frame.get("ok", False):
                raise ServiceError(
                    f"[{frame.get('code', 'error')}] "
                    f"{frame.get('error', 'daemon refused the request')}"
                )
            return frame

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    def hello(self) -> Dict[str, Any]:
        """Version handshake; raises on a protocol mismatch.

        Returns the daemon's identity reply (``protocol``, ``backend``,
        ``jobs``, ``shard``) — the fabric uses it to confirm a shard is
        alive and compatible before routing cells at it.
        """
        try:
            reply = self._request(hello_message(self.client))
        except ServiceError as exc:
            if "protocol-version" in str(exc):
                raise ServiceError(
                    f"daemon at {self.socket_path} refused the handshake: "
                    f"{exc} (client protocol {PROTOCOL_VERSION})"
                ) from exc
            raise
        check_hello_reply(reply, self.socket_path)
        return reply

    def submit(
        self,
        cells: List[Cell],
        priority: int = 0,
        label: str = "",
        integrity: str = "enforce",
        waive: tuple = (),
        stream: bool = False,
    ) -> Dict[str, Any]:
        """Submit a batch of cells; returns the admission reply."""
        message: Dict[str, Any] = {
            "op": "submit",
            "cells": [cell_to_wire(cell) for cell in cells],
            "priority": priority,
            "label": label,
            "integrity": integrity,
            "waive": list(waive),
            "stream": stream,
        }
        if self.client:
            message["client"] = self.client
        return self._request(message)

    def status(self, job_id: Optional[str] = None) -> Dict[str, Any]:
        message: Dict[str, Any] = {"op": "status"}
        if job_id is not None:
            message["job"] = job_id
        return self._request(message)

    def result(self, job_id: str, wait: bool = True) -> Dict[str, Any]:
        return self._request({"op": "result", "job": job_id, "wait": wait})

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request({"op": "cancel", "job": job_id})

    def stats(self) -> Dict[str, Any]:
        return self._request({"op": "stats"})["stats"]

    def shutdown(self) -> Dict[str, Any]:
        return self._request({"op": "shutdown"})

    def tail_metrics(
        self, interval: float = 1.0, count: int = 0
    ) -> Iterator[Dict[str, Any]]:
        """Yield daemon stats snapshots every ``interval`` seconds.

        With ``count == 0`` the stream runs until the connection drops
        (ctrl-C or daemon shutdown); otherwise exactly ``count``
        snapshots are yielded.
        """
        self._request(
            {"op": "tail-metrics", "interval": interval, "count": count}
        )
        while True:
            try:
                event = self._next_event()
            except ServiceError:
                return  # daemon went away mid-stream: the tail just ends
            if event.get("event") == "metrics-end":
                return
            if event.get("event") == "metrics":
                yield event["stats"]

    # ------------------------------------------------------------------
    # High-level batch execution
    # ------------------------------------------------------------------
    def iter_job_events(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Yield a streamed job's events up to (and incl.) the terminal
        ``{"event": "job"}`` frame."""
        while True:
            event = self._next_event()
            if event.get("job") != job_id:
                continue  # another job's stream on a shared connection
            yield event
            if event.get("event") == "job":
                return

    def run_cells(
        self,
        cells: List[Cell],
        priority: int = 0,
        label: str = "",
        integrity: str = "enforce",
        waive: tuple = (),
        on_cell: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> List[Dict[str, Any]]:
        """Run ``cells`` through the daemon; return payloads in order.

        Drop-in for local :func:`repro.tools.runner.run_cells` — the
        daemon enforces the same ``integrity="enforce"`` semantics on
        every payload before streaming it.  ``on_cell`` (if given) is
        called with each ``{"event": "cell"}`` frame as it arrives, for
        progress display.
        """
        reply = self.submit(
            cells, priority=priority, label=label, integrity=integrity,
            waive=waive, stream=True,
        )
        job_id = reply["job"]
        payloads: List[Optional[Dict[str, Any]]] = [None] * len(cells)
        for event in self.iter_job_events(job_id):
            if event["event"] == "cell":
                payloads[event["index"]] = event["payload"]
                if on_cell is not None:
                    on_cell(event)
            elif event["event"] == "job" and event["state"] != "done":
                raise ServiceError(
                    f"job {job_id} ({label or 'unlabelled'}) ended "
                    f"{event['state']}: {event.get('error')}"
                )
        missing = [idx for idx, p in enumerate(payloads) if p is None]
        if missing:
            raise ServiceError(
                f"job {job_id} finished without payloads for cell "
                f"indices {missing}"
            )
        return payloads  # type: ignore[return-value]
