"""The ``repro serve`` daemon: unix-socket server over warm pools.

Architecture (DESIGN.md §5g)::

    clients --unix socket, JSON frames--> socket loop (main thread)
                                             |  JobQueue (priority, quotas)
                                             v
                                      dispatcher thread
                                             |  chunks of <= jobs cells
                                             v
                                  ForkServerPool (warm, shared)
                                      + CellCache (content-addressed)

Two threads, one lock.  The **socket loop** owns every client
connection: it accepts, decodes frames, answers ``status``/``result``/
``stats`` synchronously, admits ``submit`` jobs into the
:class:`~repro.service.queue.JobQueue` and flushes the event outbox the
dispatcher fills.  The **dispatcher** pulls jobs off the queue in
priority order and executes their cells — content-addressed cache
first, then the shared :class:`~repro.tools.forkserver.ForkServerPool`
(one warm server per distinct environment, kept alive across jobs and
clients, so only the first job for an environment ever pays a boot) —
and posts per-cell results back through the outbox, waking the socket
loop over a self-pipe.

Every payload — computed or cached — passes the repro.obs integrity
checks before it is streamed (``run_cells(integrity="enforce")``
semantics) unless the submitting client waived named checks; a lossy
cell fails its whole job loudly.

Shutdown: SIGTERM (or the ``shutdown`` op) starts a *graceful drain* —
new submissions are rejected with code ``draining``, already-admitted
jobs run to completion and stream their results, then the pool is
stopped (every server process reaped: no leaked children), the socket
is unlinked and ``serve`` returns.  A client that disconnects mid-job
has its streamed jobs cancelled at the next chunk boundary; the pool
survives and keeps serving other tenants.
"""

from __future__ import annotations

import itertools
import os
import selectors
import signal
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.errors import IntegrityError
from repro.obs.metrics import verify_payload_integrity
from repro.obs.service import ServiceStats
from repro.service import protocol
from repro.service.protocol import (
    FrameDecoder,
    FrameError,
    ServiceError,
    cell_from_wire,
    error_reply,
    register_service_fd,
    send_message,
    unregister_service_fd,
)
from repro.service.queue import Job, JobQueue, QuotaExceeded
from repro.tools import forkserver
from repro.tools import runner as _runner
from repro.tools.runner import CellCache, default_cache_dir, validate_backend

#: Backends the daemon itself can host.  ``auto`` and ``pool`` resolve
#: through :func:`resolve_daemon_backend` (the daemon has no use for a
#: per-job ProcessPoolExecutor — its whole point is the warm pool — so
#: ``pool`` degrades to serial in-process execution, exactly like the
#: fleet-wide CI override intends).
DAEMON_BACKENDS = ("forkserver", "serial")


def resolve_daemon_backend(backend: str = "auto") -> str:
    """Map a runner backend name onto what the daemon can host.

    ``REPRO_BENCH_BACKEND`` overrides the argument (same precedence as
    ``run_cells``); unknown values raise the same clear
    :class:`ValueError` naming the valid backends — a daemon must never
    come up silently running a different backend than asked.
    """
    forced = os.environ.get("REPRO_BENCH_BACKEND")
    if forced:
        choice = validate_backend(forced, source="REPRO_BENCH_BACKEND")
    else:
        choice = validate_backend(backend)
    # ``fabric`` maps to the pool path too: a daemon *is* a fabric
    # shard, and recursing into the fabric coordinator from inside a
    # shard would spawn daemons forever.
    if choice in ("auto", "forkserver", "fabric"):
        return "forkserver" if forkserver.fork_available() else "serial"
    return "serial"


@dataclass
class DaemonConfig:
    """Everything a ``repro serve`` invocation can configure."""

    socket_path: Optional[str] = None
    jobs: int = 2
    quota: int = 8
    backend: str = "auto"
    cache_dir: Optional[str] = None
    no_cache: bool = False
    timeout: Optional[float] = _runner.DEFAULT_TIMEOUT
    #: additionally listen on ``host:port`` (``":0"`` = loopback,
    #: ephemeral port; the bound endpoint lands in
    #: :attr:`ReproDaemon.tcp_endpoint`).  TCP carries no auth — bind
    #: loopback or a trusted network only.
    tcp: Optional[str] = None
    #: fabric shard identity, surfaced in ``hello`` and ``stats``.
    shard_id: Optional[str] = None

    def resolved_socket_path(self) -> str:
        return self.socket_path or protocol.default_socket_path()


class _Connection:
    """Socket-loop state for one connected client."""

    def __init__(self, conn_id: int, sock: socket.socket):
        self.id = conn_id
        self.sock = sock
        self.fd = sock.fileno()
        self.decoder = FrameDecoder()
        self.client = f"conn{conn_id}"
        #: active ``tail-metrics`` subscription, or None:
        #: {"interval": s, "remaining": n, "due": monotonic}
        self.tail: Optional[Dict[str, float]] = None


class ReproDaemon:
    """Long-lived experiment service over a unix socket."""

    def __init__(self, config: Optional[DaemonConfig] = None):
        self.config = config or DaemonConfig()
        self.backend = resolve_daemon_backend(self.config.backend)
        self.queue = JobQueue(quota=self.config.quota)
        self.stats = ServiceStats()
        self.cache: Optional[CellCache] = None
        if not self.config.no_cache:
            directory = self.config.cache_dir or default_cache_dir()
            self.cache = CellCache(directory)
        self.pool: Optional[forkserver.ForkServerPool] = None
        self._lock = threading.Lock()
        self._connections: Dict[int, _Connection] = {}
        self._conn_counter = itertools.count(1)
        self._job_counter = itertools.count(1)
        #: (conn_id, frame) pairs posted by the dispatcher, flushed by
        #: the socket loop.
        self._outbox: deque = deque()
        #: job_id -> [conn_id, ...] blocked in ``result --wait``.
        self._waiters: Dict[str, List[int]] = {}
        self._wake_r, self._wake_w = os.pipe()
        os.set_blocking(self._wake_r, False)
        register_service_fd(self._wake_r)
        register_service_fd(self._wake_w)
        self._draining = False
        self._drain_requested = False
        self._dispatcher: Optional[threading.Thread] = None
        self._started = time.monotonic()
        #: ``tcp://host:port`` actually bound (set by :meth:`serve` when
        #: the config asks for TCP; with port 0 this is where the
        #: ephemeral port becomes known).
        self.tcp_endpoint: Optional[str] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"\0")
        except (BlockingIOError, OSError):
            pass  # pipe full: the loop is already due to wake

    def request_shutdown(self) -> None:
        """Thread- and signal-safe graceful-drain trigger."""
        self._drain_requested = True
        self._wake()

    def _bind(self, path: str) -> socket.socket:
        if os.path.exists(path):
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.settimeout(1.0)
            try:
                probe.connect(path)
            except OSError:
                os.unlink(path)  # stale socket from a dead daemon
            else:
                probe.close()
                raise ServiceError(
                    f"another repro serve daemon is already listening on "
                    f"{path}"
                )
            finally:
                probe.close()
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(path)
        sock.listen(16)
        sock.setblocking(False)
        register_service_fd(sock.fileno())
        return sock

    def _bind_tcp(self, spec: str) -> socket.socket:
        """Bind the optional TCP listener (``host:port``; port 0 = any)."""
        host, sep, port_text = spec.rpartition(":")
        if not sep:
            host, port_text = "", spec
        host = host or "127.0.0.1"
        try:
            port = int(port_text)
        except ValueError:
            raise ServiceError(
                f"bad TCP listen spec {spec!r}: expected host:port"
            ) from None
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            sock.bind((host, port))
        except OSError as exc:
            sock.close()
            raise ServiceError(
                f"cannot listen on tcp {host}:{port}: {exc}"
            ) from exc
        sock.listen(16)
        sock.setblocking(False)
        register_service_fd(sock.fileno())
        bound_host, bound_port = sock.getsockname()[:2]
        self.tcp_endpoint = protocol.format_tcp_endpoint(
            bound_host, bound_port
        )
        return sock

    def serve(self, ready: Optional[threading.Event] = None) -> None:
        """Run until drained (SIGTERM, SIGINT or the ``shutdown`` op)."""
        path = self.config.resolved_socket_path()
        listener = self._bind(path)
        tcp_listener: Optional[socket.socket] = None
        if self.config.tcp is not None:
            try:
                tcp_listener = self._bind_tcp(self.config.tcp)
            except ServiceError:
                unregister_service_fd(listener.fileno())
                listener.close()
                try:
                    os.unlink(path)
                except OSError:
                    pass
                raise
        try:  # signal handlers only install from the main thread
            signal.signal(signal.SIGTERM, self._on_signal)
            signal.signal(signal.SIGINT, self._on_signal)
        except ValueError:
            pass
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatcher",
            daemon=True,
        )
        self._dispatcher.start()
        selector = selectors.DefaultSelector()
        selector.register(listener, selectors.EVENT_READ, "listen")
        if tcp_listener is not None:
            selector.register(tcp_listener, selectors.EVENT_READ, "listen")
        selector.register(self._wake_r, selectors.EVENT_READ, "wake")
        if ready is not None:
            ready.set()
        try:
            while True:
                timeout = self._loop_timeout()
                for key, _ in selector.select(timeout):
                    if key.data == "listen":
                        self._accept(key.fileobj, selector)
                    elif key.data == "wake":
                        try:
                            os.read(self._wake_r, 4096)
                        except (BlockingIOError, OSError):
                            pass
                    else:
                        self._service_connection(key.data, selector)
                if self._drain_requested and not self._draining:
                    self._draining = True
                    self.queue.stop()
                self._flush_outbox(selector)
                self._resolve_waiters(selector)
                self._push_metrics_tails(selector)
                if (self._draining
                        and not self._dispatcher.is_alive()
                        and not self._outbox):
                    break
        finally:
            for conn in list(self._connections.values()):
                self._drop_connection(conn, selector)
            selector.close()
            unregister_service_fd(listener.fileno())
            listener.close()
            if tcp_listener is not None:
                unregister_service_fd(tcp_listener.fileno())
                tcp_listener.close()
            try:
                os.unlink(path)
            except OSError:
                pass
            self.queue.stop()
            if self._dispatcher is not None:
                self._dispatcher.join(timeout=forkserver._STOP_GRACE * 2)

    def _on_signal(self, signum, frame) -> None:  # pragma: no cover - thin
        self.request_shutdown()

    def _loop_timeout(self) -> Optional[float]:
        if self._draining:
            return 0.2  # poll for dispatcher exit
        due = [conn.tail["due"] for conn in self._connections.values()
               if conn.tail is not None]
        if due:
            return max(0.0, min(due) - time.monotonic())
        return None

    # ------------------------------------------------------------------
    # Socket loop: connections and requests
    # ------------------------------------------------------------------
    def _accept(self, listener: socket.socket, selector) -> None:
        try:
            sock, _ = listener.accept()
        except OSError:
            return
        sock.settimeout(30.0)  # a stalled client must not stall the loop
        conn = _Connection(next(self._conn_counter), sock)
        register_service_fd(conn.fd)
        self._connections[conn.id] = conn
        selector.register(sock, selectors.EVENT_READ, conn)
        with self._lock:
            self.stats.add("clients_connected")

    def _drop_connection(self, conn: _Connection, selector) -> None:
        try:
            selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        unregister_service_fd(conn.fd)
        try:
            conn.sock.close()
        except OSError:
            pass
        self._connections.pop(conn.id, None)
        with self._lock:
            self.stats.add("clients_disconnected")
            self._waiters = {
                job_id: [c for c in conns if c != conn.id]
                for job_id, conns in self._waiters.items()
            }
        # Orphan handling: a streamed job's results are only deliverable
        # over the submitting connection — nobody is left to read them,
        # so cancel it rather than burn pool time (satellite: the pool
        # must survive a client disconnect mid-job).
        for info in self.queue.snapshot():
            job = self.queue.get(info["job"])
            if (job is not None and job.stream
                    and job.connection == conn.id and not job.finished):
                self.queue.cancel(job.job_id)
                with self._lock:
                    self.stats.add("orphaned_jobs_cancelled",
                                   client=job.client)

    def _service_connection(self, conn: _Connection, selector) -> None:
        try:
            data = conn.sock.recv(65536)
        except OSError:
            data = b""
        if not data:
            self._drop_connection(conn, selector)
            return
        try:
            frames = conn.decoder.feed(data)
        except FrameError as exc:
            self._send(conn, error_reply("protocol", str(exc)), selector)
            self._drop_connection(conn, selector)
            return
        for message in frames:
            try:
                self._handle_request(conn, message, selector)
            except FrameError as exc:
                self._send(conn, error_reply("protocol", str(exc)), selector)

    def _send(self, conn: _Connection, message: Dict[str, Any],
              selector) -> None:
        try:
            send_message(conn.sock, message)
        except (OSError, FrameError):
            self._drop_connection(conn, selector)

    def _handle_request(self, conn: _Connection, message: Dict[str, Any],
                        selector) -> None:
        op = message.get("op")
        if op == "hello":
            self._send(conn, self._op_hello(conn, message), selector)
        elif op == "submit":
            self._send(conn, self._op_submit(conn, message), selector)
        elif op == "status":
            self._send(conn, self._op_status(message), selector)
        elif op == "result":
            reply = self._op_result(conn, message)
            if reply is not None:
                self._send(conn, reply, selector)
        elif op == "cancel":
            self._send(conn, self._op_cancel(message), selector)
        elif op == "stats":
            self._send(conn, {"ok": True, "stats": self.stats_snapshot()},
                       selector)
        elif op == "tail-metrics":
            interval = max(0.05, float(message.get("interval", 1.0)))
            count = int(message.get("count", 0))
            conn.tail = {"interval": interval, "remaining": count,
                         "due": time.monotonic()}
            self._send(conn, {"ok": True, "interval": interval,
                              "count": count}, selector)
        elif op == "shutdown":
            self._send(conn, {"ok": True, "draining": True}, selector)
            self.request_shutdown()
        else:
            self._send(conn, error_reply("bad-op",
                                         f"unknown op {op!r}"), selector)

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    def _op_hello(self, conn: _Connection,
                  message: Dict[str, Any]) -> Dict[str, Any]:
        """Handshake: refuse a protocol-version mismatch up front.

        A version-2 client that skipped ``hello`` still works (the ops
        are compatible within a version) — the handshake exists so the
        fabric can detect a stale shard *before* routing cells at it.
        """
        peer = message.get("protocol")
        if peer != protocol.PROTOCOL_VERSION:
            return error_reply(
                "protocol-version",
                f"daemon speaks protocol {protocol.PROTOCOL_VERSION}, "
                f"client announced {peer!r}; upgrade the older side",
            )
        if message.get("client"):
            conn.client = str(message["client"])
        return {
            "ok": True,
            "protocol": protocol.PROTOCOL_VERSION,
            "backend": self.backend,
            "jobs": self.config.jobs,
            "shard": self.config.shard_id,
        }

    def _op_submit(self, conn: _Connection,
                   message: Dict[str, Any]) -> Dict[str, Any]:
        if self._draining or self._drain_requested:
            with self._lock:
                self.stats.add("rejected_draining")
            return error_reply(
                "draining", "daemon is draining and accepts no new jobs"
            )
        documents = message.get("cells") or []
        if not documents:
            return error_reply("bad-submit", "submit carried no cells")
        integrity = message.get("integrity", "enforce")
        if integrity not in ("enforce", "ignore"):
            return error_reply(
                "bad-submit",
                f"integrity must be 'enforce' or 'ignore', "
                f"got {integrity!r}",
            )
        try:
            cells = [cell_from_wire(doc) for doc in documents]
        except (KeyError, TypeError, ValueError) as exc:
            return error_reply("bad-cell", f"undecodable cell: {exc!r}")
        for cell in cells:
            if cell.kind not in _runner.KIND_EXECUTORS:
                return error_reply(
                    "bad-cell",
                    f"unknown cell kind {cell.kind!r}; choose from "
                    f"{sorted(_runner.KIND_EXECUTORS)}",
                )
        client = str(message.get("client") or conn.client)
        conn.client = client
        job = Job(
            job_id=f"j{next(self._job_counter):04d}",
            client=client,
            cells=cells,
            priority=int(message.get("priority", 0)),
            label=str(message.get("label", "")),
            integrity=integrity,
            waive=tuple(message.get("waive") or ()),
            stream=bool(message.get("stream", False)),
            connection=conn.id,
        )
        try:
            self.queue.submit(job)
        except QuotaExceeded as exc:
            with self._lock:
                self.stats.add("quota_rejections", client=client)
            return error_reply("quota", str(exc))
        with self._lock:
            self.stats.add("jobs_submitted", client=client)
            self.stats.add("cells_total", len(cells), client=client)
        return {"ok": True, "job": job.job_id, "cells": len(cells),
                "priority": job.priority}

    def _op_status(self, message: Dict[str, Any]) -> Dict[str, Any]:
        job_id = message.get("job")
        if job_id is None:
            return {"ok": True, "jobs": self.queue.snapshot(),
                    "stats": self.stats_snapshot()}
        job = self.queue.get(str(job_id))
        if job is None:
            return error_reply("unknown-job", f"no job {job_id!r}")
        return {"ok": True, **job.info()}

    def _result_reply(self, job: Job) -> Dict[str, Any]:
        return {"ok": True, "state": job.state, "error": job.error,
                "payloads": job.payloads, **job.info()}

    def _op_result(self, conn: _Connection,
                   message: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        job_id = str(message.get("job", ""))
        job = self.queue.get(job_id)
        if job is None:
            return error_reply("unknown-job", f"no job {job_id!r}")
        if job.finished or not message.get("wait", False):
            return self._result_reply(job)
        with self._lock:
            self._waiters.setdefault(job_id, []).append(conn.id)
        return None  # resolved by _resolve_waiters once the job lands

    def _op_cancel(self, message: Dict[str, Any]) -> Dict[str, Any]:
        job_id = str(message.get("job", ""))
        job = self.queue.cancel(job_id)
        if job is None:
            return error_reply("unknown-job", f"no job {job_id!r}")
        if job.state == "cancelled":
            with self._lock:
                self.stats.add("jobs_cancelled", client=job.client)
        return {"ok": True, **job.info()}

    # ------------------------------------------------------------------
    # Outbox, waiters, metric tails
    # ------------------------------------------------------------------
    def _post(self, conn_id: Optional[int],
              message: Dict[str, Any]) -> None:
        """Dispatcher-side: queue a frame for the socket loop to send."""
        if conn_id is None:
            return
        with self._lock:
            self._outbox.append((conn_id, message))
        self._wake()

    def _flush_outbox(self, selector) -> None:
        while True:
            with self._lock:
                if not self._outbox:
                    return
                conn_id, message = self._outbox.popleft()
            conn = self._connections.get(conn_id)
            if conn is not None:
                self._send(conn, message, selector)

    def _resolve_waiters(self, selector) -> None:
        with self._lock:
            ready = [
                (job_id, conns) for job_id, conns in self._waiters.items()
                if (job := self.queue.get(job_id)) is not None
                and job.finished and conns
            ]
            for job_id, _ in ready:
                self._waiters.pop(job_id, None)
        for job_id, conns in ready:
            job = self.queue.get(job_id)
            for conn_id in conns:
                conn = self._connections.get(conn_id)
                if conn is not None:
                    self._send(conn, self._result_reply(job), selector)

    def _push_metrics_tails(self, selector) -> None:
        now = time.monotonic()
        for conn in list(self._connections.values()):
            tail = conn.tail
            if tail is None or now < tail["due"]:
                continue
            self._send(conn, {"event": "metrics",
                              "stats": self.stats_snapshot()}, selector)
            tail["due"] = now + tail["interval"]
            if tail["remaining"]:
                tail["remaining"] -= 1
                if tail["remaining"] <= 0:
                    self._send(conn, {"event": "metrics-end"}, selector)
                    conn.tail = None

    def stats_snapshot(self) -> Dict[str, Any]:
        """Gauges + counters as one JSON-safe dict (``stats`` op body)."""
        with self._lock:
            pool = self.pool
            if pool is not None:
                for name in ("cold_boots", "cold_dispatches",
                             "warm_dispatches", "serial_demotions"):
                    self.stats.counters[name] = getattr(pool, name)
            self.stats.set_gauge("queue_depth", self.queue.depth())
            self.stats.set_gauge("jobs_running", self.queue.running())
            self.stats.set_gauge("clients", len(self._connections))
            self.stats.set_gauge(
                "warm_servers", pool.warm_servers if pool else 0
            )
            self.stats.set_gauge(
                "uptime_seconds",
                round(time.monotonic() - self._started, 3),
            )
            snapshot = self.stats.to_dict()
        # Shard identity rides outside the counters/gauges schema so
        # ServiceStats.from_dict round-trips cleanly without it.
        snapshot["shard"] = self.config.shard_id
        return snapshot

    # ------------------------------------------------------------------
    # Dispatcher thread
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        if self.backend == "forkserver":
            try:
                pool = forkserver.ForkServerPool(
                    jobs=self.config.jobs, timeout=self.config.timeout
                )
            except forkserver.ForkServerUnavailable:
                pool = None
                self.backend = "serial"
            with self._lock:
                self.pool = pool
        try:
            while True:
                job = self.queue.next_ready()
                if job is None:
                    return
                self._run_job(job)
        finally:
            with self._lock:
                pool, self.pool = self.pool, None
            if pool is not None:
                pool.close(kill=False)
            self._wake()

    def _chunk_indices(self, pending: List[int]) -> List[List[int]]:
        size = max(1, self.config.jobs) if self.pool is not None else 1
        return [pending[i:i + size] for i in range(0, len(pending), size)]

    def _verify_payload(self, job: Job, index: int,
                        payload: Dict[str, Any]) -> None:
        if job.integrity != "enforce":
            return
        verify_payload_integrity(
            [job.cells[index].label()], [payload], waive=job.waive
        )

    def _emit_cell(self, job: Job, index: int,
                   payload: Dict[str, Any]) -> None:
        job.payloads[index] = payload
        job.completed_cells += 1
        if job.stream:
            self._post(job.connection, {
                "event": "cell",
                "job": job.job_id,
                "index": index,
                "label": job.cells[index].label(),
                "completed": job.completed_cells,
                "cells": len(job.cells),
                "payload": payload,
            })

    def _execute_chunk(
        self, job: Job, chunk: List[int]
    ) -> Dict[int, Dict[str, Any]]:
        pool = self.pool
        if pool is not None:
            try:
                got = pool.run_indices(job.cells, chunk)
                with self._lock:
                    self.stats.add("cells_dispatched", len(chunk),
                                   client=job.client)
                return got
            except forkserver.ForkServerUnavailable:
                # The pool died wholesale (fork exhaustion, close):
                # finish this and future jobs serially in-process.
                with self._lock:
                    self.pool = None
                self.backend = "serial"
        results: Dict[int, Dict[str, Any]] = {}
        for index in chunk:
            results[index] = _runner._run_serial(job.cells[index])
            with self._lock:
                self.stats.add("cells_dispatched", client=job.client)
                self.stats.add("serial_dispatches", client=job.client)
        return results

    def _run_job(self, job: Job) -> None:
        pool = self.pool
        before = pool.stats() if pool is not None else {}
        error: Optional[str] = None
        integrity_failed = False
        pending: List[int] = []
        # Cache pass first: a warm cache never touches the pool.  Cached
        # payloads are integrity-verified exactly like computed ones, so
        # a lossy result can never hide in the cache (run_cells parity).
        for index, cell in enumerate(job.cells):
            if job.cancel_requested:
                break
            payload = (self.cache.lookup(cell)
                       if self.cache is not None else None)
            if payload is None:
                pending.append(index)
                continue
            try:
                self._verify_payload(job, index, payload)
            except IntegrityError as exc:
                error, integrity_failed = str(exc), True
                break
            job.cached_cells += 1
            with self._lock:
                self.stats.add("cells_cached", client=job.client)
            self._emit_cell(job, index, payload)
        if error is None and not job.cancel_requested:
            for chunk in self._chunk_indices(pending):
                if job.cancel_requested:
                    break
                try:
                    results = self._execute_chunk(job, chunk)
                except _runner.RunnerError as exc:
                    error = str(exc)
                    break
                for index in sorted(results):
                    payload = results[index]
                    if self.cache is not None:
                        self.cache.store(job.cells[index], payload)
                    try:
                        self._verify_payload(job, index, payload)
                    except IntegrityError as exc:
                        error, integrity_failed = str(exc), True
                        break
                    self._emit_cell(job, index, payload)
                if error is not None:
                    break
        after = (self.pool.stats() if self.pool is not None else {})
        job.pool_stats = {
            key: after.get(key, 0) - before.get(key, 0)
            for key in ("cold_boots", "cold_dispatches", "warm_dispatches",
                        "serial_demotions")
        }
        job.pool_stats["cached"] = job.cached_cells
        if job.cancel_requested:
            job.state = "cancelled"
            job.error = job.error or "cancelled by request"
            counter = "jobs_cancelled"
        elif error is not None:
            job.state = "failed"
            job.error = error
            counter = "jobs_failed"
        else:
            job.state = "done"
            counter = "jobs_completed"
        with self._lock:
            self.stats.add(counter, client=job.client)
            if integrity_failed:
                self.stats.add("integrity_failures", client=job.client)
        if job.stream:
            self._post(job.connection, {
                "event": "job",
                "job": job.job_id,
                "state": job.state,
                "error": job.error,
                "info": job.info(),
            })
        self._wake()  # result waiters resolve even without streaming
