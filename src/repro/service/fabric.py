"""Shard fabric: fan ``run_cells`` batches across N repro daemons.

One ``repro serve`` daemon owns one warm fork-server pool; the fabric
(DESIGN.md §5h) is the scale-out layer above it — a coordinator that
routes an experiment batch across several daemons ("shards"), local
unix-socket daemons spawned on demand or remote daemons reached over
``tcp://host:port`` endpoints, and merges the streamed results back in
cell order.

The moving parts:

**Cache-affinity routing.**  A cell's preferred shard is a stable hash
of its environment key (the same kind/environment/platform-config/
snapshot tuple the fork server groups warm servers by), so every cell
for one environment lands on the same shard and its warm pool and
content-addressed cache stay hot.  Routing is over the *live* shard
list, so a dead shard's traffic redistributes deterministically.

**Adaptive cell splitting.**  When a batch has fewer cells than the
fabric has execution slots, splittable cells (Table 1's op lists) are
divided into subcells before dispatch.  The ops run against one live
machine whose state evolves op by op, so each subcell re-executes the
ops before its slice *unrecorded* (``context_ops``) — the measured
slice sees the exact machine-state sequence of the unsplit run, and
the ``merge_*`` helpers reassemble a table byte-identical to it.
Per-subcell ``accesses``/``sim_cycles`` include that context — the
serial-equivalence contract is against the same (split) cell list,
never a re-derivation of the unsplit payloads.

**Latency-aware work stealing.**  A worker whose queue drains steals
from the shard with the largest *estimated remaining latency*
(backlog × observed seconds-per-cell), taking from the cold tail so the
victim keeps its cache-warm front.

**Failure handling.**  A connection error or EOF marks the shard dead:
its unfinished cells — in-flight cells are pure, so re-running them
from scratch is safe — are requeued onto the surviving shards, and the
batch degrades shard by shard down to a single daemon; if every shard
dies, the leftovers run through the in-process serial runner.  A
*job*-level failure (a cell that raises, an integrity violation) is not
a shard death and fails the batch loudly instead of being retried
elsewhere.

Integrity is enforced twice: each shard verifies every payload before
streaming it (daemon semantics), and the coordinator re-verifies the
assembled batch — so no payload dodges enforcement by arriving from a
particular shard.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.obs.metrics import verify_payload_integrity
from repro.obs.service import FabricStats
from repro.service.client import ReproServiceClient
from repro.service.protocol import ServiceError
from repro.tools import runner as _runner
from repro.tools.runner import Cell

#: Default shard count for spawned local fabrics.
DEFAULT_SHARDS = 2

#: ``repro fabric`` state-file schema version.
STATE_VERSION = 1


class FabricUnavailable(ServiceError):
    """No shard could be spawned or reached; callers should degrade."""


class FabricError(ServiceError):
    """A batch failed for a non-shard-death reason (bad cell, integrity)."""


class FabricCancelled(ServiceError):
    """The batch was cancelled through :meth:`FabricCoordinator.cancel`."""


# ----------------------------------------------------------------------
# Configuration and state file
# ----------------------------------------------------------------------
@dataclass
class FabricConfig:
    """Everything a fabric run can configure."""

    shards: int = DEFAULT_SHARDS
    #: dispatch-chunk size per shard (forwarded to spawned daemons as
    #: ``--jobs``; also the per-request batch size, so cancellation and
    #: stealing act at chunk boundaries).
    jobs: int = 2
    #: attach to these endpoints (unix paths or ``tcp://host:port``)
    #: instead of spawning local daemons.
    endpoints: Optional[List[str]] = None
    cache_dir: Optional[str] = None
    no_cache: bool = False
    timeout: Optional[float] = _runner.DEFAULT_TIMEOUT
    #: where spawned shards put sockets and logs (default: a private
    #: temp dir).
    socket_dir: Optional[str] = None
    #: connect-retry window for *attached* endpoints.
    connect_retry: float = 2.0
    #: how long a spawned daemon gets to bind and answer ``hello``.
    spawn_wait: float = 30.0


def default_state_path() -> str:
    """``REPRO_FABRIC_STATE`` or a per-user path under the tmp dir."""
    configured = os.environ.get("REPRO_FABRIC_STATE")
    if configured:
        return configured
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(tempfile.gettempdir(), f"repro-fabric-{uid}.json")


def read_state(path: Optional[str] = None) -> Optional[Dict[str, Any]]:
    """The ``repro fabric start`` ledger, or None if absent/corrupt."""
    target = path or default_state_path()
    try:
        with open(target, encoding="utf-8") as handle:
            document = json.load(handle)
    except (FileNotFoundError, json.JSONDecodeError, OSError):
        return None
    if (document.get("version") != STATE_VERSION
            or not isinstance(document.get("shards"), list)):
        return None
    return document


def write_state(document: Dict[str, Any],
                path: Optional[str] = None) -> str:
    target = path or default_state_path()
    tmp = target + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    os.replace(tmp, target)
    return target


def clear_state(path: Optional[str] = None) -> None:
    try:
        os.unlink(path or default_state_path())
    except OSError:
        pass


def resolve_endpoints() -> Optional[List[str]]:
    """Endpoints a transient fabric should attach to, if any.

    ``REPRO_FABRIC_ENDPOINTS`` (comma-separated) wins; otherwise a
    running ``repro fabric start`` ledger is reused — so
    ``run_cells(backend="fabric")`` rides an already-warm fabric instead
    of spawning a throwaway one.
    """
    raw = os.environ.get("REPRO_FABRIC_ENDPOINTS")
    if raw:
        endpoints = [item.strip() for item in raw.split(",") if item.strip()]
        return endpoints or None
    state = read_state()
    if state:
        endpoints = [str(shard["endpoint"]) for shard in state["shards"]
                     if shard.get("endpoint")]
        return endpoints or None
    return None


# ----------------------------------------------------------------------
# Affinity routing and adaptive splitting
# ----------------------------------------------------------------------
def affinity_key(cell: Cell) -> str:
    """Stable digest of the cell's environment (warm-pool grouping)."""
    from repro.tools import forkserver

    key = forkserver.environment_key(cell)
    blob = json.dumps(list(key), sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def route_shard(cell: Cell, shard_names: List[str]) -> str:
    """The cell's preferred shard among ``shard_names`` (stable hash)."""
    if not shard_names:
        raise FabricUnavailable("no live shards to route onto")
    digest = int(affinity_key(cell)[:16], 16)
    return shard_names[digest % len(shard_names)]


#: cell kind -> spec key holding a list of sequential work items that
#: subcells can partition.  Table 1's ops run against one live machine
#: whose state evolves op by op, so each subcell carries the items
#: before its slice as ``context_<key>`` — the worker re-executes them
#: unrecorded, reproducing the exact machine-state sequence, which is
#: what makes the merged table byte-identical to the unsplit run.
#: figure6/table2 derive their app lists from ``scale`` inside the
#: worker, so they have no wire-expressible subset and stay unsplit.
SPLITTABLE_KINDS: Dict[str, str] = {"table1": "ops"}


def split_cell(cell: Cell, pieces: int) -> List[Cell]:
    """Partition one cell into up to ``pieces`` contiguous subcells.

    Unsplittable cells (wrong kind, or fewer than two items) come back
    as ``[cell]``.  Subcell order preserves item order, and each
    subcell's ``context_<key>`` carries the items before its slice for
    unrecorded re-execution, so merging the subcell payloads reproduces
    the unsplit rows exactly.
    """
    key = SPLITTABLE_KINDS.get(cell.kind)
    items = cell.spec.get(key) if key else None
    if not isinstance(items, list) or len(items) < 2 or pieces < 2:
        return [cell]
    pieces = min(pieces, len(items))
    subcells: List[Cell] = []
    base, extra = divmod(len(items), pieces)
    position = 0
    for piece in range(pieces):
        count = base + (1 if piece < extra else 0)
        subset = items[position:position + count]
        spec = dict(cell.spec)
        spec[key] = list(subset)
        spec[f"context_{key}"] = list(items[:position])
        position += count
        subcells.append(Cell(
            kind=cell.kind,
            environment=cell.environment,
            workload=f"{cell.workload}[{piece + 1}/{pieces}]",
            spec=spec,
            platform_config=cell.platform_config,
            cacheable=cell.cacheable,
            snapshot_path=cell.snapshot_path,
        ))
    return subcells


def adaptive_split(cells: List[Cell], target: int,
                   stats: Optional[FabricStats] = None) -> List[Cell]:
    """Split splittable cells until the batch has ~``target`` units.

    With enough cells already, the batch is returned untouched — the
    split exists for load balance, not for its own sake.
    """
    if target <= len(cells):
        return list(cells)
    per_cell = -(-target // max(1, len(cells)))  # ceil
    out: List[Cell] = []
    for cell in cells:
        subcells = split_cell(cell, per_cell)
        if len(subcells) > 1 and stats is not None:
            stats.add("cells_split", len(subcells))
        out.extend(subcells)
    return out


def maybe_split_for_fabric(cells: List[Cell], backend: str,
                           shards: int, jobs: int) -> List[Cell]:
    """Entry-point hook: split a batch headed for the fabric.

    ``run_table1``-style callers pass their cell list through here;
    non-fabric backends get it back untouched.  The target unit count
    is the fabric's total slot count (shards × per-shard jobs), so a
    3-cell Table 1 grid becomes enough subcells to keep every slot
    busy.  The ``merge_*`` helpers reassemble subcell payloads into a
    table byte-identical to the unsplit run (each subcell re-executes
    its preceding ops unrecorded, preserving the state sequence).
    """
    effective = os.environ.get("REPRO_BENCH_BACKEND") or backend
    if str(effective).strip().lower() != "fabric":
        return list(cells)
    target = max(1, shards) * max(1, jobs)
    return adaptive_split(cells, target)


# ----------------------------------------------------------------------
# Shard handles and process spawning
# ----------------------------------------------------------------------
class _Shard:
    """Coordinator-side state for one daemon."""

    def __init__(self, name: str, endpoint: str,
                 process: Optional[subprocess.Popen] = None):
        self.name = name
        self.endpoint = endpoint
        self.process = process
        self.dead = False
        self.hello: Dict[str, Any] = {}
        #: routed cell indices awaiting dispatch (left = warm front).
        self.queue: Deque[int] = deque()
        #: streamed job currently in flight (for cancel propagation).
        self.current_job: Optional[str] = None
        #: observed dispatch history, for latency-aware stealing.
        self.busy_seconds = 0.0
        self.dispatched_cells = 0

    def seconds_per_cell(self) -> float:
        if self.dispatched_cells <= 0:
            return 1.0
        return self.busy_seconds / self.dispatched_cells

    def estimated_backlog_seconds(self) -> float:
        return len(self.queue) * self.seconds_per_cell()


def _package_root() -> str:
    """The ``src`` directory spawned shards need on ``PYTHONPATH``."""
    here = os.path.abspath(__file__)          # .../src/repro/service/fabric.py
    return os.path.dirname(os.path.dirname(os.path.dirname(here)))


def _spawn_env() -> Dict[str, str]:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (_package_root()
                         + (os.pathsep + existing if existing else ""))
    return env


def shard_command(socket_path: str, shard_id: str, jobs: int,
                  cache_dir: Optional[str] = None, no_cache: bool = False,
                  tcp: Optional[str] = None) -> List[str]:
    """The ``repro serve`` argv for one local shard daemon."""
    command = [sys.executable, "-m", "repro", "serve",
               "--socket", socket_path, "--jobs", str(jobs),
               "--shard-id", shard_id]
    if cache_dir:
        command += ["--cache-dir", cache_dir]
    if no_cache:
        command.append("--no-cache")
    if tcp:
        command += ["--tcp", tcp]
    return command


def spawn_shard(name: str, socket_path: str, jobs: int,
                log_path: str, cache_dir: Optional[str] = None,
                no_cache: bool = False) -> _Shard:
    """Start one local daemon subprocess (not yet handshaken)."""
    command = shard_command(socket_path, name, jobs,
                            cache_dir=cache_dir, no_cache=no_cache)
    with open(log_path, "ab") as log:
        process = subprocess.Popen(command, env=_spawn_env(),
                                   stdout=log, stderr=subprocess.STDOUT)
    return _Shard(name, socket_path, process=process)


# ----------------------------------------------------------------------
# The coordinator
# ----------------------------------------------------------------------
class FabricCoordinator:
    """Routes cell batches across shard daemons; owns spawned ones."""

    def __init__(self, config: Optional[FabricConfig] = None):
        self.config = config or FabricConfig()
        self.shards: List[_Shard] = []
        self.stats = FabricStats()
        self._lock = threading.Lock()
        self._cancel = threading.Event()
        self._started = False
        self._workdir: Optional[str] = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "FabricCoordinator":
        """Spawn or attach the shards; raises :class:`FabricUnavailable`
        when not even one comes up (degrading to fewer shards than asked
        is fine and counted as ``shard_failures``)."""
        if self._started:
            return self
        if self.config.endpoints:
            for index, endpoint in enumerate(self.config.endpoints):
                self.shards.append(_Shard(f"shard{index}", endpoint))
            window = self.config.connect_retry
        else:
            self._workdir = (self.config.socket_dir
                             or tempfile.mkdtemp(prefix="repro-fabric-"))
            os.makedirs(self._workdir, exist_ok=True)
            for index in range(max(1, self.config.shards)):
                name = f"shard{index}"
                socket_path = os.path.join(self._workdir, f"{name}.sock")
                log_path = os.path.join(self._workdir, f"{name}.log")
                try:
                    shard = spawn_shard(
                        name, socket_path, self.config.jobs, log_path,
                        cache_dir=self.config.cache_dir,
                        no_cache=self.config.no_cache,
                    )
                except OSError as exc:
                    shard = _Shard(name, socket_path)
                    shard.dead = True
                    shard.hello = {"error": str(exc)}
                self.shards.append(shard)
            window = self.config.spawn_wait
        for shard in self.shards:
            if shard.dead:
                self.stats.add("shard_failures", shard=shard.name)
                continue
            try:
                self._handshake(shard, window)
            except (ServiceError, OSError) as exc:
                shard.dead = True
                shard.hello = {"error": str(exc)}
                self.stats.add("shard_failures", shard=shard.name)
        live = self.live_shards()
        if not live:
            detail = "; ".join(
                f"{shard.name}: {shard.hello.get('error', 'unreachable')}"
                for shard in self.shards
            )
            self.stop()
            raise FabricUnavailable(
                f"no fabric shard came up ({detail or 'none configured'})"
            )
        self._started = True
        self.stats.set_gauge("live_shards", len(live))
        self.stats.set_gauge("configured_shards", len(self.shards))
        return self

    def _handshake(self, shard: _Shard, window: float) -> None:
        client = ReproServiceClient(
            socket_path=shard.endpoint, timeout=self.config.timeout,
            client="fabric", connect_retry=window,
        )
        try:
            client.connect()
            shard.hello = client.hello()
        finally:
            client.close()

    def live_shards(self) -> List[_Shard]:
        return [shard for shard in self.shards if not shard.dead]

    def stop(self) -> None:
        """Drain spawned shards gracefully; attached ones are left alone."""
        for shard in self.shards:
            process = shard.process
            if process is None:
                continue
            if process.poll() is None:
                try:
                    with ReproServiceClient(
                        socket_path=shard.endpoint, timeout=10,
                        connect_retry=0.0,
                    ) as client:
                        client.shutdown()
                except (ServiceError, OSError):
                    pass
                try:
                    process.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait()
        self._started = False
        self.stats.set_gauge("live_shards", len(self.live_shards()))

    def __enter__(self) -> "FabricCoordinator":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- cancellation --------------------------------------------------
    def cancel(self) -> None:
        """Cancel the running batch: propagate to every in-flight shard
        job over fresh control connections, then fail the batch with
        :class:`FabricCancelled` (workers stop at chunk boundaries)."""
        self._cancel.set()
        for shard in self.live_shards():
            job_id = shard.current_job
            if job_id is None:
                continue
            try:
                with ReproServiceClient(
                    socket_path=shard.endpoint, timeout=10,
                    client="fabric-cancel", connect_retry=0.5,
                ) as control:
                    control.cancel(job_id)
            except (ServiceError, OSError):
                pass  # shard already dying; its worker will notice

    # -- batch execution ----------------------------------------------
    def run_cells(
        self,
        cells: List[Cell],
        integrity: str = "enforce",
        waive: Tuple[str, ...] = (),
        label: str = "fabric",
    ) -> List[Dict[str, Any]]:
        """Run ``cells`` across the shards; payloads come back in cell
        order, byte-identical to a serial ``run_cells`` of the same
        list."""
        self.start()
        if self._cancel.is_set():
            raise FabricCancelled("fabric coordinator is cancelled")
        results: List[Optional[Dict[str, Any]]] = [None] * len(cells)
        remaining = list(range(len(cells)))
        self.stats.add("batches")
        while remaining:
            live = self.live_shards()
            if not live:
                break
            live_names = {shard.name for shard in live}
            self._route(cells, remaining, live)
            errors: List[str] = []
            workers = [
                threading.Thread(
                    target=self._shard_worker,
                    args=(shard, cells, results, errors, integrity, waive,
                          label),
                    name=f"fabric-{shard.name}",
                    daemon=True,
                )
                for shard in live
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
            if errors:
                raise FabricError(errors[0])
            if self._cancel.is_set():
                self.stats.add("cancelled_batches")
                raise FabricCancelled(
                    f"fabric batch {label!r} cancelled "
                    f"({len(remaining)} cells unresolved)"
                )
            remaining = [index for index in remaining
                         if results[index] is None]
            survivors = {shard.name for shard in self.live_shards()}
            if remaining and survivors == live_names:
                break  # nothing died yet cells went unserved: don't spin
        leftover = [index for index, payload in enumerate(results)
                    if payload is None]
        for index in leftover:
            # Terminal degradation: every shard is gone — finish the
            # batch with the in-process serial runner (pristine path).
            results[index] = _runner._run_serial(cells[index])
            self.stats.add("cells_local_fallback")
        self.stats.set_gauge("live_shards", len(self.live_shards()))
        if integrity == "enforce":
            verify_payload_integrity(
                [cell.label() for cell in cells], results, waive=waive
            )
        return results  # type: ignore[return-value]

    def _route(self, cells: List[Cell], indices: List[int],
               live: List[_Shard]) -> None:
        by_name = {shard.name: shard for shard in live}
        names = sorted(by_name)
        with self._lock:
            for shard in live:
                shard.queue.clear()
            for index in indices:
                shard = by_name[route_shard(cells[index], names)]
                shard.queue.append(index)
                self.stats.add("cells_routed", shard=shard.name)

    def _take_chunk(self, shard: _Shard, size: int) -> List[int]:
        """Next chunk for ``shard``: its own queue, else steal."""
        with self._lock:
            chunk: List[int] = []
            while shard.queue and len(chunk) < size:
                chunk.append(shard.queue.popleft())
            if chunk:
                return chunk
            victims = [other for other in self.shards
                       if other is not shard and not other.dead
                       and other.queue]
            if not victims:
                return []
            victim = max(victims,
                         key=lambda other: other.estimated_backlog_seconds())
            # Steal at most half the backlog, from the cold tail, so
            # the victim keeps the front it routed for cache affinity.
            take = min(size, max(1, len(victim.queue) // 2))
            stolen = [victim.queue.pop() for _ in range(take)]
            stolen.reverse()
            self.stats.add("cells_stolen", len(stolen), shard=shard.name)
            return stolen

    def _shard_worker(self, shard: _Shard, cells: List[Cell],
                      results: List[Optional[Dict[str, Any]]],
                      errors: List[str], integrity: str,
                      waive: Tuple[str, ...], label: str) -> None:
        chunk_size = max(1, self.config.jobs)
        client: Optional[ReproServiceClient] = None
        try:
            while not self._cancel.is_set() and not errors:
                chunk = self._take_chunk(shard, chunk_size)
                if not chunk:
                    return
                try:
                    if client is None:
                        client = ReproServiceClient(
                            socket_path=shard.endpoint,
                            timeout=self.config.timeout,
                            client="fabric",
                            connect_retry=self.config.connect_retry,
                        ).connect()
                    self._dispatch(client, shard, cells, chunk, results,
                                   integrity, waive, label)
                except FabricError as exc:
                    errors.append(str(exc))
                    return
                except (ServiceError, OSError) as exc:
                    self._shard_died(shard, chunk, cells, results, exc)
                    return
        finally:
            shard.current_job = None
            if client is not None:
                client.close()

    def _dispatch(self, client: ReproServiceClient, shard: _Shard,
                  cells: List[Cell], chunk: List[int],
                  results: List[Optional[Dict[str, Any]]],
                  integrity: str, waive: Tuple[str, ...],
                  label: str) -> None:
        batch = [cells[index] for index in chunk]
        started = time.monotonic()
        reply = client.submit(batch, label=f"{label}:{shard.name}",
                              integrity=integrity, waive=waive, stream=True)
        job_id = reply["job"]
        shard.current_job = job_id
        try:
            for event in client.iter_job_events(job_id):
                if event["event"] == "cell":
                    results[chunk[event["index"]]] = event["payload"]
                    with self._lock:
                        self.stats.add("cells_completed", shard=shard.name)
                elif (event["event"] == "job"
                        and event["state"] != "done"):
                    if (event["state"] == "cancelled"
                            and self._cancel.is_set()):
                        return
                    raise FabricError(
                        f"shard {shard.name} job {job_id} ended "
                        f"{event['state']}: {event.get('error')}"
                    )
        finally:
            shard.current_job = None
        with self._lock:
            shard.busy_seconds += time.monotonic() - started
            shard.dispatched_cells += len(chunk)
            self.stats.add("jobs_dispatched", shard=shard.name)

    def _shard_died(self, shard: _Shard, chunk: List[int],
                    cells: List[Cell],
                    results: List[Optional[Dict[str, Any]]],
                    exc: Exception) -> None:
        """Mark the shard dead and requeue its unfinished cells.

        In-flight cells without a streamed payload restart from scratch
        on a surviving shard — cells are pure, so the pristine re-run is
        byte-identical to what the dead shard would have produced.
        """
        with self._lock:
            shard.dead = True
            shard.hello = {"error": str(exc)}
            self.stats.add("shard_failures", shard=shard.name)
            leftovers = [index for index in chunk
                         if results[index] is None]
            leftovers.extend(shard.queue)
            shard.queue.clear()
            live = [other for other in self.shards if not other.dead]
            if not live:
                return  # run_cells falls back to the local serial path
            by_name = {other.name: other for other in live}
            names = sorted(by_name)
            for index in leftovers:
                by_name[route_shard(cells[index], names)].queue.append(index)
                self.stats.add("cells_requeued", shard=shard.name)

    # -- observability -------------------------------------------------
    def stats_snapshot(self) -> Dict[str, Any]:
        with self._lock:
            self.stats.set_gauge("live_shards", len(self.live_shards()))
            self.stats.set_gauge(
                "queued_cells",
                sum(len(shard.queue) for shard in self.shards),
            )
            return self.stats.to_dict()

    def describe(self) -> List[Dict[str, Any]]:
        """One JSON-safe row per shard (endpoint, liveness, identity)."""
        rows = []
        for shard in self.shards:
            rows.append({
                "name": shard.name,
                "endpoint": shard.endpoint,
                "alive": not shard.dead,
                "pid": shard.process.pid if shard.process else None,
                "hello": shard.hello,
            })
        return rows


# ----------------------------------------------------------------------
# runner integration: run_cells(backend="fabric")
# ----------------------------------------------------------------------
def run_pending(
    cells: List[Cell],
    pending: List[int],
    jobs: int = 2,
    timeout: Optional[float] = _runner.DEFAULT_TIMEOUT,
    shards: int = DEFAULT_SHARDS,
    integrity: str = "ignore",
    waive: Tuple[str, ...] = (),
) -> Dict[int, Dict[str, Any]]:
    """Backend hook for :func:`repro.tools.runner.run_cells`.

    Attaches to ``REPRO_FABRIC_ENDPOINTS`` or a running ``repro fabric
    start`` ledger when available (their warm pools are the point);
    otherwise spawns a transient local fabric and drains it afterwards.
    Raises :class:`FabricUnavailable` for the caller to degrade to the
    next backend.
    """
    config = FabricConfig(
        shards=max(1, shards),
        jobs=max(1, jobs),
        endpoints=resolve_endpoints(),
        timeout=timeout,
    )
    coordinator = FabricCoordinator(config)
    try:
        coordinator.start()
        payloads = coordinator.run_cells(
            [cells[index] for index in pending],
            integrity=integrity, waive=waive, label="run-cells",
        )
    finally:
        coordinator.stop()
    return dict(zip(pending, payloads))
