"""Wire protocol for the experiment service: JSON frames, cell encoding.

Framing discipline matches :mod:`repro.tools.forkserver` — an 8-byte
big-endian length prefix followed by the body — but the body is UTF-8
JSON, not pickle: daemon and clients are separate processes owned by
possibly different users, and unpickling peer-supplied bytes would hand
every client arbitrary code execution in the daemon.  JSON also keeps
the payloads on the wire in exactly the serialization the
content-addressed :class:`~repro.tools.runner.CellCache` uses, which is
what makes the byte-identity contract (daemon results == serial
``run_cells`` results) checkable end to end.

Every frame is one JSON object.  Client -> daemon objects carry an
``"op"`` key (``hello``/``submit``/``status``/``result``/``cancel``/
``tail-metrics``/``stats``/``shutdown``); daemon -> client objects are
either direct replies (``{"ok": true, ...}`` / ``{"ok": false,
"error": ..., "code": ...}``) or streamed events (``{"event": "cell" |
"job" | "metrics", ...}``).

Transports: a daemon listens on a unix socket and (optionally, for the
shard fabric) a TCP endpoint.  Endpoints are written ``tcp://host:port``
or as a plain unix-socket path; :func:`parse_endpoint` and
:func:`connect_endpoint` keep both sides agnostic.  TCP carries no
authentication — the frames are JSON (never pickle), so a hostile peer
cannot inject code, but it *can* submit work; bind loopback or a
trusted network only (see README).
"""

from __future__ import annotations

import dataclasses
import json
import os
import socket
import struct
import tempfile
import time
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.config import CostModel, PlatformConfig
from repro.tools.runner import Cell

_LEN = struct.Struct(">Q")

#: Wire-protocol generation, exchanged in the ``hello`` handshake.
#: Version 1 was the unversioned PR-8 unix-socket protocol (no
#: ``hello`` op); version 2 added ``hello``, the TCP transport and the
#: shard identity fields.  A daemon refuses a client announcing a
#: different version (code ``protocol-version``) rather than
#: misinterpreting its frames.
PROTOCOL_VERSION = 2

#: Upper bound on one frame body.  A table-scale result payload is tens
#: of kilobytes; anything near this limit is a corrupt length prefix or
#: a hostile peer, and must not make the daemon allocate unbounded
#: memory.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class FrameError(RuntimeError):
    """A peer violated the framing protocol (oversized or non-JSON)."""


class ServiceError(RuntimeError):
    """The service could not be reached, started, or returned an error."""


# ----------------------------------------------------------------------
# Service fds must not leak into forked experiment workers
# ----------------------------------------------------------------------
#: Live service fds (listener, wake pipe, connections — daemon and
#: client side).  The warm fork-server pool forks workers while these
#: are open; an inherited copy in a child would keep a half-closed
#: connection alive forever (the peer never sees EOF, so disconnects go
#: unnoticed) and would let an experiment worker scribble on the wire.
#: Every fork in this process closes them via an ``os.register_at_fork``
#: hook.
_CHILD_CLOSE_FDS: Set[int] = set()
_AT_FORK_INSTALLED = False


def _close_service_fds_in_child() -> None:  # pragma: no cover - in child
    for fd in list(_CHILD_CLOSE_FDS):
        try:
            os.close(fd)
        except OSError:
            pass
    _CHILD_CLOSE_FDS.clear()


def register_service_fd(fd: int) -> None:
    """Mark ``fd`` for closing in any child this process forks."""
    global _AT_FORK_INSTALLED
    if not _AT_FORK_INSTALLED and hasattr(os, "register_at_fork"):
        os.register_at_fork(after_in_child=_close_service_fds_in_child)
        _AT_FORK_INSTALLED = True
    if fd >= 0:
        _CHILD_CLOSE_FDS.add(fd)


def unregister_service_fd(fd: int) -> None:
    """Remove ``fd`` from the at-fork close set.

    Must be called *before* the fd is closed — a stale entry could
    close an unrelated file that later reused the number in a child.
    """
    _CHILD_CLOSE_FDS.discard(fd)


def default_socket_path() -> str:
    """``REPRO_SERVICE_SOCKET`` or a per-user path under the tmp dir.

    Unix socket paths are limited to ~107 bytes, so the default lives
    in the system temporary directory rather than under the repo.
    """
    configured = os.environ.get("REPRO_SERVICE_SOCKET")
    if configured:
        return configured
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(tempfile.gettempdir(), f"repro-serve-{uid}.sock")


# ----------------------------------------------------------------------
# Endpoints: unix paths and tcp://host:port
# ----------------------------------------------------------------------
def parse_endpoint(endpoint: str) -> Tuple[str, Any]:
    """``("tcp", (host, port))`` or ``("unix", path)``.

    ``tcp://:9000`` and ``tcp://9000`` both mean loopback on port 9000 —
    remote daemons must be asked for by explicit host, never implied.
    Anything without the ``tcp://`` scheme is a unix-socket path.
    """
    if endpoint.startswith("tcp://"):
        rest = endpoint[len("tcp://"):]
        host, sep, port_text = rest.rpartition(":")
        if not sep:
            host, port_text = "", rest
        if not port_text.isdigit():
            raise ServiceError(
                f"bad TCP endpoint {endpoint!r}: expected tcp://host:port"
            )
        return "tcp", (host or "127.0.0.1", int(port_text))
    return "unix", endpoint


def format_tcp_endpoint(host: str, port: int) -> str:
    return f"tcp://{host}:{port}"


def connect_endpoint(
    endpoint: str,
    timeout: Optional[float] = None,
    retry_window: float = 0.0,
) -> socket.socket:
    """Open a blocking client socket to a unix or TCP endpoint.

    A just-spawned daemon takes a beat to bind its socket, so the
    connect refusals that race it (``ECONNREFUSED``, and ``ENOENT`` for
    a not-yet-created unix path) are retried with a short exponential
    backoff for up to ``retry_window`` seconds before giving up.  Any
    other ``OSError`` — unroutable host, permission — fails immediately;
    retrying those would only hide the real problem.
    """
    family, address = parse_endpoint(endpoint)
    deadline = time.monotonic() + max(0.0, retry_window)
    backoff = 0.02
    while True:
        sock = (socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                if family == "unix"
                else socket.socket(socket.AF_INET, socket.SOCK_STREAM))
        sock.settimeout(timeout)
        try:
            sock.connect(address)
            return sock
        except (ConnectionRefusedError, FileNotFoundError) as exc:
            sock.close()
            if time.monotonic() + backoff > deadline:
                raise ServiceError(
                    f"cannot reach a repro serve daemon at {endpoint} "
                    f"({exc}); start one with 'python -m repro serve'"
                ) from exc
            time.sleep(backoff)
            backoff = min(backoff * 2, 0.5)
        except OSError as exc:
            sock.close()
            raise ServiceError(
                f"cannot reach a repro serve daemon at {endpoint} "
                f"({exc}); start one with 'python -m repro serve'"
            ) from exc


def hello_message(client: Optional[str] = None) -> Dict[str, Any]:
    """The handshake frame a client opens a versioned session with."""
    message: Dict[str, Any] = {"op": "hello",
                               "protocol": PROTOCOL_VERSION}
    if client:
        message["client"] = client
    return message


def check_hello_reply(reply: Dict[str, Any], endpoint: str) -> None:
    """Raise :class:`ServiceError` unless the daemon speaks our protocol."""
    peer = reply.get("protocol")
    if peer != PROTOCOL_VERSION:
        raise ServiceError(
            f"daemon at {endpoint} speaks protocol {peer!r}, this client "
            f"speaks {PROTOCOL_VERSION}; upgrade the older side"
        )


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_frame(message: Dict[str, Any]) -> bytes:
    """One length-prefixed JSON frame, ready for the socket.

    Key order is preserved, not sorted: payload dict order is semantic
    (table rows render in ``counts`` insertion order), and byte-identity
    with local ``run_cells`` requires the wire to carry it through.
    """
    blob = json.dumps(message).encode("utf-8")
    if len(blob) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(blob)} bytes exceeds the {MAX_FRAME_BYTES}-byte "
            f"limit"
        )
    return _LEN.pack(len(blob)) + blob


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Write one frame, completely (blocking)."""
    sock.sendall(encode_frame(message))


class FrameDecoder:
    """Reassembles JSON frames from an arbitrarily chunked byte stream."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Buffer ``data``; return every now-complete frame, in order."""
        self._buf += data
        frames: List[Dict[str, Any]] = []
        while True:
            if len(self._buf) < _LEN.size:
                return frames
            (length,) = _LEN.unpack_from(self._buf)
            if length > MAX_FRAME_BYTES:
                raise FrameError(
                    f"peer announced a {length}-byte frame (limit "
                    f"{MAX_FRAME_BYTES}); dropping the connection"
                )
            end = _LEN.size + length
            if len(self._buf) < end:
                return frames
            blob = bytes(self._buf[_LEN.size:end])
            del self._buf[:end]
            try:
                frames.append(json.loads(blob.decode("utf-8")))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise FrameError(f"peer sent a non-JSON frame: {exc}") from exc


def recv_messages(
    sock: socket.socket, decoder: FrameDecoder
) -> Iterator[Dict[str, Any]]:
    """Yield frames from a blocking socket until it closes (EOF)."""
    while True:
        data = sock.recv(65536)
        if not data:
            return
        yield from decoder.feed(data)


# ----------------------------------------------------------------------
# Cell wire encoding
# ----------------------------------------------------------------------
def cell_to_wire(cell: Cell) -> Dict[str, Any]:
    """JSON-safe encoding of one :class:`Cell`.

    Raises :class:`FrameError` for cells whose spec is not JSON
    serializable (e.g. caller-injected workload objects) — those can
    only run in-process, never through the service.
    """
    config = (dataclasses.asdict(cell.platform_config)
              if cell.platform_config is not None else None)
    document = {
        "kind": cell.kind,
        "environment": cell.environment,
        "workload": cell.workload,
        "spec": cell.spec,
        "platform_config": config,
        "cacheable": cell.cacheable,
        "snapshot_path": cell.snapshot_path,
    }
    try:
        json.dumps(document)
    except (TypeError, ValueError) as exc:
        raise FrameError(
            f"cell {cell.label()} is not JSON-serializable and cannot be "
            f"submitted to the service: {exc}"
        ) from exc
    return document


def cell_from_wire(document: Dict[str, Any]) -> Cell:
    """Rebuild a :class:`Cell` from its wire encoding."""
    config_doc = document.get("platform_config")
    config: Optional[PlatformConfig] = None
    if config_doc is not None:
        fields = dict(config_doc)
        # dataclasses.asdict flattened the nested CostModel to a plain
        # dict; rebuild it so the Cell round-trips exactly.
        costs = fields.get("costs")
        if isinstance(costs, dict):
            fields["costs"] = CostModel(**costs)
        config = PlatformConfig(**fields)
    return Cell(
        kind=str(document["kind"]),
        environment=str(document["environment"]),
        workload=str(document["workload"]),
        spec=dict(document.get("spec") or {}),
        platform_config=config,
        cacheable=bool(document.get("cacheable", True)),
        snapshot_path=document.get("snapshot_path"),
    )


def error_reply(code: str, message: str) -> Dict[str, Any]:
    return {"ok": False, "code": code, "error": message}
