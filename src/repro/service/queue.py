"""Priority job queue with per-client quotas for the service daemon.

A :class:`Job` is an ordered batch of experiment cells submitted by one
client; the :class:`JobQueue` hands jobs to the daemon's dispatcher in
priority order (higher ``priority`` first, FIFO within a priority) and
enforces a per-client cap on work admitted but not yet finished, so one
greedy client cannot starve the rest of the tenants.

The queue is the synchronization point between the daemon's two
threads: the socket loop submits/cancels under the queue's lock, the
dispatcher blocks in :meth:`JobQueue.next_ready` until a job (or a
shutdown request) is available.  Everything else in the daemon reads
job state through snapshots taken under the same lock.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.tools.runner import Cell

#: Job lifecycle: queued -> running -> (done | failed | cancelled).
#: A queued job can go straight to cancelled; a running job that sees
#: its cancel flag between dispatch chunks lands in cancelled too.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")


class QuotaExceeded(RuntimeError):
    """A client exceeded its admitted-but-unfinished job quota."""


@dataclass
class Job:
    """One submitted batch of cells and everything known about it."""

    job_id: str
    client: str
    cells: List[Cell]
    priority: int = 0
    label: str = ""
    integrity: str = "enforce"
    waive: tuple = ()
    stream: bool = False
    #: connection identifier the job was submitted on (used to cancel
    #: orphaned streamed jobs when their client disconnects mid-run).
    connection: Optional[int] = None
    state: str = "queued"
    error: Optional[str] = None
    #: per-cell payloads, in cell order (None until the cell finishes).
    payloads: List[Optional[Dict[str, Any]]] = field(default_factory=list)
    completed_cells: int = 0
    cached_cells: int = 0
    cancel_requested: bool = False
    #: pool-dispatch accounting deltas attributed to this job
    #: (cold_boots / warm_dispatches / ...; see ForkServerPool.stats).
    pool_stats: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.payloads:
            self.payloads = [None] * len(self.cells)

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed", "cancelled")

    def info(self) -> Dict[str, Any]:
        """JSON-safe status summary (the ``status`` op's reply body)."""
        return {
            "job": self.job_id,
            "client": self.client,
            "label": self.label,
            "state": self.state,
            "priority": self.priority,
            "cells": len(self.cells),
            "completed": self.completed_cells,
            "cached": self.cached_cells,
            "error": self.error,
            "pool": dict(self.pool_stats),
        }


class JobQueue:
    """Thread-safe priority queue of :class:`Job` objects."""

    def __init__(self, quota: int = 8):
        if quota < 1:
            raise ValueError(f"quota must be positive, got {quota}")
        self.quota = quota
        self.jobs: Dict[str, Job] = {}
        self._heap: List[tuple] = []  # (-priority, submit_seq, job_id)
        self._counter = itertools.count()
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._stopping = False

    # ------------------------------------------------------------------
    def submit(self, job: Job) -> Job:
        """Admit a job, or raise :class:`QuotaExceeded`."""
        with self._lock:
            admitted = sum(
                1 for other in self.jobs.values()
                if other.client == job.client and not other.finished
            )
            if admitted >= self.quota:
                raise QuotaExceeded(
                    f"client {job.client!r} already has {admitted} "
                    f"unfinished job(s); the per-client quota is "
                    f"{self.quota}"
                )
            self.jobs[job.job_id] = job
            heapq.heappush(
                self._heap, (-job.priority, next(self._counter), job.job_id)
            )
            self._work.notify_all()
            return job

    def next_ready(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Block until a queued job is available; mark it running.

        Returns ``None`` when the queue is stopping and drained (or the
        optional ``timeout`` expires) — the dispatcher's exit signal.
        """
        with self._lock:
            while True:
                while self._heap:
                    _, _, job_id = heapq.heappop(self._heap)
                    job = self.jobs.get(job_id)
                    if job is None or job.state != "queued":
                        continue  # cancelled while queued: skip the stub
                    job.state = "running"
                    return job
                if self._stopping:
                    return None
                if not self._work.wait(timeout=timeout):
                    return None

    def cancel(self, job_id: str) -> Optional[Job]:
        """Request cancellation; returns the job (or ``None`` if unknown).

        A queued job is cancelled immediately; a running job gets its
        ``cancel_requested`` flag set and the dispatcher cancels it at
        the next chunk boundary.  Finished jobs are left untouched.
        """
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                return None
            if job.state == "queued":
                job.state = "cancelled"
                job.error = "cancelled while queued"
            elif job.state == "running":
                job.cancel_requested = True
            return job

    def stop(self) -> None:
        """Wake the dispatcher for shutdown once the queue drains."""
        with self._lock:
            self._stopping = True
            self._work.notify_all()

    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self.jobs.get(job_id)

    def depth(self) -> int:
        """Jobs admitted but not yet started."""
        with self._lock:
            return sum(1 for job in self.jobs.values()
                       if job.state == "queued")

    def running(self) -> int:
        with self._lock:
            return sum(1 for job in self.jobs.values()
                       if job.state == "running")

    def unfinished(self) -> int:
        with self._lock:
            return sum(1 for job in self.jobs.values()
                       if not job.finished)

    def snapshot(self) -> List[Dict[str, Any]]:
        """Status summaries for every known job, in submission order."""
        with self._lock:
            return [job.info() for job in self.jobs.values()]
