"""Machine checkpoint/restore: versioned snapshots with bit-identical replay.

A :class:`Snapshot` captures *everything* that makes a simulated machine
deterministic — physical memory, caches and TLBs, CPU and system
registers, the interrupt controller, the clock, every kernel subsystem,
the KVM stage-2 tables, Hypersec's policy/monitoring state, the MBM
pipeline and all :class:`~repro.utils.stats.StatSet` counters (flushed
before capture).  The contract is **bit-identical replay**: restoring a
snapshot and running a workload must produce exactly the same cycles,
statistics and ring-buffer contents as booting cold and running the same
workload (guarded by ``tests/test_state.py`` and
``scripts/check_simspeed.py``).

On-disk format (version :data:`SNAPSHOT_SCHEMA`)::

    MAGIC | manifest_len (8 bytes BE) | manifest JSON | blob … blob

The manifest records the schema and package versions, the full cost
fingerprint (the :class:`~repro.config.PlatformConfig` +
:class:`~repro.config.CostModel` + :class:`~repro.kernel.kernel.OpCosts`
recipe shared with the runner's cell cache), the system build recipe,
and one entry per section: name, raw/compressed sizes and a SHA-256
checksum.  Sections are zlib-compressed JSON; the whole snapshot gets a
content hash over its checksums, fingerprint and recipe, which the
warm-start runner folds into its cell cache keys.

Restore rebuilds the system *skeleton* (all wiring, no boot), loads the
memory image, then loads every component's state dict — see
``DESIGN.md`` section 5c.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import __version__
from repro.config import CostModel, PlatformConfig
from repro.errors import SnapshotError
from repro.kernel.kernel import KernelConfig, OpCosts

MAGIC = b"REPROSNAP\x00"
SNAPSHOT_SCHEMA = 1

#: capture/restore order; restore applies "memory" first so component
#: loads see the snapshotted image, not skeleton-construction leftovers.
_SECTION_ORDER = [
    "memory",
    "clock",
    "caches",
    "dram",
    "bus",
    "gic",
    "cpu",
    "kernel",
    "kvm",
    "hypersec",
    "mbm",
    "monitors",
]


def _json_bytes(obj: Any) -> bytes:
    return json.dumps(obj, separators=(",", ":"), sort_keys=False).encode(
        "utf-8"
    )


def _sha256(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


@dataclass
class Snapshot:
    """A decoded snapshot: manifest plus per-section state dicts."""

    manifest: Dict[str, Any]
    sections: Dict[str, Any] = field(default_factory=dict)

    @property
    def content_hash(self) -> str:
        return self.manifest["content_hash"]

    @property
    def system_name(self) -> str:
        return self.manifest["recipe"]["system"]

    def platform_config(self) -> PlatformConfig:
        """Reconstruct the platform config from the cost fingerprint."""
        document = dict(self.manifest["fingerprint"]["platform"])
        costs = CostModel(**document.pop("costs"))
        return PlatformConfig(costs=costs, **document)

    def section(self, name: str) -> Any:
        """One decoded section's state dict.

        Raises :exc:`~repro.errors.SnapshotError` when the snapshot does
        not carry the section (e.g. asking a native image for
        ``hypersec``), so offline analysers get a typed error instead of
        a bare ``KeyError``.
        """
        try:
            return self.sections[name]
        except KeyError:
            raise SnapshotError(f"snapshot has no {name!r} section") from None

    def kernel_config(self) -> KernelConfig:
        document = self.manifest["recipe"]["kernel_config"]
        return KernelConfig(
            linear_map_mode=document["linear_map_mode"],
            image_reserve_bytes=document["image_reserve_bytes"],
            op_costs=OpCosts(**document["op_costs"]),
        )


# ----------------------------------------------------------------------
# Capture
# ----------------------------------------------------------------------
def _system_sections(system) -> Dict[str, Any]:
    """Collect every component's state dict, in section order."""
    platform = system.platform
    sections: Dict[str, Any] = {
        "memory": platform.memory.state_dict(),
        "clock": platform.clock.state_dict(),
        "caches": platform.caches.state_dict(),
        "dram": platform.dram.state_dict(),
        "bus": platform.bus.state_dict(),
        "gic": platform.gic.state_dict(),
        "cpu": system.cpu.state_dict(),
        "kernel": system.kernel.state_dict(),
    }
    if system.kvm is not None:
        sections["kvm"] = system.kvm.state_dict()
    if system.hypersec is not None:
        sections["hypersec"] = system.hypersec.state_dict()
    if system.mbm is not None:
        sections["mbm"] = system.mbm.state_dict()
    if system.monitors:
        sections["monitors"] = [app.state_dict() for app in system.monitors]
    return sections


def capture_snapshot(system) -> Snapshot:
    """Snapshot a live system (in memory; see :func:`save_snapshot`)."""
    if not system.recipe:
        raise SnapshotError(
            f"system {system.name!r} carries no build recipe; build it "
            "through repro.core.hypernel to make it snapshottable"
        )
    from repro.tools.runner import cost_fingerprint

    sections = _system_sections(system)
    entries = []
    for name in _SECTION_ORDER:
        if name not in sections:
            continue
        raw = _json_bytes(sections[name])
        entries.append({"name": name, "raw_len": len(raw),
                        "sha256": _sha256(raw)})
    fingerprint = cost_fingerprint(system.platform.config)
    manifest = {
        "schema": SNAPSHOT_SCHEMA,
        "version": __version__,
        "fingerprint": fingerprint,
        "recipe": system.recipe,
        "sections": entries,
        "content_hash": _sha256(_json_bytes({
            "schema": SNAPSHOT_SCHEMA,
            "version": __version__,
            "fingerprint": fingerprint,
            "recipe": system.recipe,
            "sections": entries,
        })),
    }
    return Snapshot(manifest=manifest, sections=sections)


def save_snapshot(system, path: os.PathLike | str) -> Snapshot:
    """Capture ``system`` and write the snapshot file atomically."""
    snapshot = capture_snapshot(system)
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    blobs: List[bytes] = []
    for entry in snapshot.manifest["sections"]:
        blob = zlib.compress(_json_bytes(snapshot.sections[entry["name"]]), 6)
        entry["blob_len"] = len(blob)
        blobs.append(blob)
    manifest_bytes = _json_bytes(snapshot.manifest)
    tmp = target.with_suffix(target.suffix + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(MAGIC)
        handle.write(len(manifest_bytes).to_bytes(8, "big"))
        handle.write(manifest_bytes)
        for blob in blobs:
            handle.write(blob)
    tmp.replace(target)
    return snapshot


# ----------------------------------------------------------------------
# Load
# ----------------------------------------------------------------------
def read_manifest(path: os.PathLike | str) -> Dict[str, Any]:
    """Parse and sanity-check only the manifest (cheap)."""
    with open(path, "rb") as handle:
        magic = handle.read(len(MAGIC))
        if magic != MAGIC:
            raise SnapshotError(f"{path}: not a repro snapshot (bad magic)")
        manifest_len = int.from_bytes(handle.read(8), "big")
        try:
            manifest = json.loads(handle.read(manifest_len))
        except json.JSONDecodeError as exc:
            raise SnapshotError(f"{path}: corrupt manifest: {exc}") from exc
    if manifest.get("schema") != SNAPSHOT_SCHEMA:
        raise SnapshotError(
            f"{path}: snapshot schema {manifest.get('schema')!r} is not "
            f"supported (expected {SNAPSHOT_SCHEMA})"
        )
    return manifest


def load_snapshot(path: os.PathLike | str) -> Snapshot:
    """Read, checksum-verify and decode a snapshot file."""
    with open(path, "rb") as handle:
        magic = handle.read(len(MAGIC))
        if magic != MAGIC:
            raise SnapshotError(f"{path}: not a repro snapshot (bad magic)")
        manifest_len = int.from_bytes(handle.read(8), "big")
        try:
            manifest = json.loads(handle.read(manifest_len))
        except json.JSONDecodeError as exc:
            raise SnapshotError(f"{path}: corrupt manifest: {exc}") from exc
        if manifest.get("schema") != SNAPSHOT_SCHEMA:
            raise SnapshotError(
                f"{path}: snapshot schema {manifest.get('schema')!r} is not "
                f"supported (expected {SNAPSHOT_SCHEMA})"
            )
        sections: Dict[str, Any] = {}
        for entry in manifest["sections"]:
            blob = handle.read(entry["blob_len"])
            if len(blob) != entry["blob_len"]:
                raise SnapshotError(
                    f"{path}: truncated section {entry['name']!r}"
                )
            try:
                raw = zlib.decompress(blob)
            except zlib.error as exc:
                raise SnapshotError(
                    f"{path}: section {entry['name']!r} is corrupt: {exc}"
                ) from exc
            if len(raw) != entry["raw_len"] or _sha256(raw) != entry["sha256"]:
                raise SnapshotError(
                    f"{path}: checksum mismatch in section {entry['name']!r}"
                )
            sections[entry["name"]] = json.loads(raw)
    return Snapshot(manifest=manifest, sections=sections)


# ----------------------------------------------------------------------
# Restore
# ----------------------------------------------------------------------
def restore_system(
    path: os.PathLike | str,
    expect_hash: Optional[str] = None,
):
    """Rebuild a live system from a snapshot file.

    Convenience wrapper: :func:`load_snapshot` followed by
    :func:`restore_from_snapshot`.
    """
    snapshot = load_snapshot(path)
    if expect_hash is not None and snapshot.content_hash != expect_hash:
        raise SnapshotError(
            f"{path}: content hash {snapshot.content_hash[:12]}… does not "
            f"match the expected {expect_hash[:12]}…"
        )
    return restore_from_snapshot(snapshot)


def restore_from_snapshot(snapshot: Snapshot):
    """Rebuild a live system from an already-decoded :class:`Snapshot`.

    The skeleton is rebuilt from the recorded recipe (all wiring, no
    boot), the memory image is loaded first — overwriting any pokes the
    skeleton construction made — and then every component's state dict
    is applied.  The returned system is indistinguishable, cycle for
    cycle and counter for counter, from the one that was captured.

    This is the in-memory entry point: long-lived processes (the
    fork-server execution backend, repeated restores in tests) decode a
    snapshot file once with :func:`load_snapshot` and then materialize
    any number of live systems from it without touching disk again.
    The snapshot object itself is not consumed or mutated.
    """
    from repro.core.hypernel import _BUILDERS
    from repro.security.registry import monitor_from_spec

    recipe = snapshot.manifest["recipe"]
    name = recipe["system"]
    if name not in _BUILDERS:
        raise SnapshotError(f"unknown system {name!r} in snapshot recipe")
    monitors = [monitor_from_spec(spec) for spec in recipe["monitors"]]
    kwargs: Dict[str, Any] = dict(recipe["kwargs"])
    if name == "kvm-guest":
        # Stage-2 population is state, not structure: the snapshot's
        # table image already reflects it.
        kwargs.pop("prepopulate_stage2", None)
    if monitors:
        kwargs["monitors"] = monitors
    system = _BUILDERS[name](
        platform_config=snapshot.platform_config(),
        kernel_config=snapshot.kernel_config(),
        _skeleton=True,
        **kwargs,
    )
    # Carry the captured recipe verbatim (the skeleton re-derives one,
    # but e.g. a dropped prepopulate_stage2 flag must survive so a
    # re-snapshot of the restored system is bit-identical).
    system.recipe = recipe
    sections = snapshot.sections
    platform = system.platform
    platform.memory.load_state(sections["memory"])
    platform.clock.load_state(sections["clock"])
    platform.caches.load_state(sections["caches"])
    platform.dram.load_state(sections["dram"])
    platform.bus.load_state(sections["bus"])
    platform.gic.load_state(sections["gic"])
    system.cpu.load_state(sections["cpu"])
    system.kernel.load_state(sections["kernel"])
    if system.kvm is not None:
        system.kvm.load_state(sections["kvm"])
    if system.hypersec is not None:
        # protect() normally wires this; the skeleton skipped it.
        system.hypersec.kernel = system.kernel
        system.hypersec.load_state(sections["hypersec"])
    if system.mbm is not None:
        system.mbm.load_state(sections["mbm"])
    monitor_states = sections.get("monitors", [])
    if len(monitor_states) != len(system.monitors):
        raise SnapshotError(
            f"snapshot carries {len(monitor_states)} monitor states for "
            f"{len(system.monitors)} rebuilt monitors"
        )
    for app, state in zip(system.monitors, monitor_states):
        app.load_state(state)
    return system


# ----------------------------------------------------------------------
# Warm-start boot images (used by repro.tools.runner)
# ----------------------------------------------------------------------
def boot_image_key(
    environment: str,
    build_kwargs: Dict[str, Any],
    platform_config: Optional[PlatformConfig],
) -> str:
    """Content key for a shared post-boot image of one environment."""
    from repro.tools.runner import cost_fingerprint

    document = {
        "schema": SNAPSHOT_SCHEMA,
        "version": __version__,
        "environment": environment,
        "build_kwargs": {
            key: value for key, value in sorted(build_kwargs.items())
            if key != "monitors"
        },
        "monitors": [
            monitor_spec_of(app) for app in build_kwargs.get("monitors", [])
        ],
        "costs": cost_fingerprint(platform_config),
    }
    return _sha256(_json_bytes(document))


def monitor_spec_of(app) -> Dict[str, Any]:
    from repro.security.registry import monitor_spec

    return monitor_spec(app)


def ensure_boot_snapshot(
    builder,
    environment: str,
    build_kwargs: Dict[str, Any],
    platform_config: Optional[PlatformConfig],
    cache_dir: os.PathLike | str,
) -> Tuple[pathlib.Path, str]:
    """Build-or-reuse a post-boot snapshot; returns (path, content hash).

    Images are content-addressed under ``<cache_dir>/snapshots/`` by
    environment, build arguments and the full cost fingerprint, so any
    change that could alter boot-time state makes a fresh image.
    """
    directory = pathlib.Path(cache_dir) / "snapshots"
    key = boot_image_key(environment, build_kwargs, platform_config)
    path = directory / f"{key}.snap"
    if path.exists():
        try:
            return path, read_manifest(path)["content_hash"]
        except (SnapshotError, KeyError, OSError):
            pass  # unreadable image: rebuild it below
    kwargs = dict(build_kwargs)
    if platform_config is not None:
        kwargs["platform_config"] = platform_config
    system = builder(**kwargs)
    snapshot = save_snapshot(system, path)
    return path, snapshot.content_hash


# ----------------------------------------------------------------------
# Introspection: info and diff
# ----------------------------------------------------------------------
def snapshot_info(path: os.PathLike | str) -> str:
    """Human-readable summary of a snapshot file's manifest."""
    manifest = read_manifest(path)
    platform = manifest["fingerprint"]["platform"]
    lines = [
        f"snapshot {pathlib.Path(path).name}",
        f"  schema {manifest['schema']}, package version "
        f"{manifest['version']}",
        f"  system: {manifest['recipe']['system']} "
        f"(linear map: {manifest['recipe']['kernel_config']['linear_map_mode']})",
        f"  platform: {platform['dram_bytes'] >> 20} MB DRAM, "
        f"{platform['secure_bytes'] >> 20} MB secure",
        f"  content hash: {manifest['content_hash']}",
        "  sections:",
    ]
    for entry in manifest["sections"]:
        blob_len = entry.get("blob_len", 0)
        lines.append(
            f"    {entry['name']:10s} {entry['raw_len']:>10d} B raw, "
            f"{blob_len:>9d} B compressed  {entry['sha256'][:12]}…"
        )
    monitors = manifest["recipe"]["monitors"]
    if monitors:
        lines.append("  monitors: "
                     + ", ".join(spec["class"] for spec in monitors))
    return "\n".join(lines)


def _diff_values(prefix: str, a: Any, b: Any, out: List[str],
                 limit: int) -> None:
    if len(out) >= limit:
        return
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b), key=str):
            if a.get(key) != b.get(key):
                _diff_values(f"{prefix}.{key}", a.get(key), b.get(key),
                             out, limit)
        return
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            out.append(f"{prefix}: length {len(a)} != {len(b)}")
            return
        for index, (left, right) in enumerate(zip(a, b)):
            if left != right:
                _diff_values(f"{prefix}[{index}]", left, right, out, limit)
                if len(out) >= limit:
                    return
        return
    out.append(f"{prefix}: {_clip(a)} != {_clip(b)}")


def _clip(value: Any, limit: int = 48) -> str:
    """repr() capped for display — memory chunk blobs are 64 KB each."""
    text = repr(value)
    if len(text) <= limit:
        return text
    return f"{text[:limit]}… ({len(text)} chars)"


def diff_snapshots(
    path_a: os.PathLike | str,
    path_b: os.PathLike | str,
    max_details: int = 20,
) -> str:
    """Report which sections (and which words/keys) differ."""
    a, b = load_snapshot(path_a), load_snapshot(path_b)
    if a.content_hash == b.content_hash:
        return "snapshots are identical (content hashes match)"
    lines: List[str] = []
    hashes_a = {e["name"]: e["sha256"] for e in a.manifest["sections"]}
    hashes_b = {e["name"]: e["sha256"] for e in b.manifest["sections"]}
    if a.manifest["recipe"] != b.manifest["recipe"]:
        lines.append("recipe differs (different build configuration)")
    if a.manifest["fingerprint"] != b.manifest["fingerprint"]:
        lines.append("cost fingerprint differs (platform/cost constants)")
    for name in _SECTION_ORDER:
        in_a, in_b = name in hashes_a, name in hashes_b
        if not in_a and not in_b:
            continue
        if in_a != in_b:
            lines.append(f"section {name}: only in "
                         f"{'first' if in_a else 'second'} snapshot")
            continue
        if hashes_a[name] == hashes_b[name]:
            continue
        details: List[str] = []
        _diff_values(name, a.sections[name], b.sections[name],
                     details, max_details)
        shown = details[:max_details]
        lines.append(f"section {name}: {len(details)} difference"
                     f"{'s' if len(details) != 1 else ''} (showing "
                     f"{len(shown)})")
        lines.extend(f"  {detail}" for detail in shown)
    return "\n".join(lines) if lines else (
        "sections match but content hashes differ (metadata change)"
    )
