"""Developer tooling: bus tracing and system reports."""

from repro.tools.trace import BusTracer, TraceRecord

__all__ = ["BusTracer", "TraceRecord"]
