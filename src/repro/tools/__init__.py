"""Developer tooling: bus tracing, perf measurement, parallel runner."""

from repro.tools.trace import BusTracer, TraceRecord
from repro.tools.perf import (
    WorkloadSpeed,
    compare_to_baseline,
    format_report,
    run_simspeed,
    run_workload,
    write_report,
)
from repro.tools.runner import (
    Cell,
    CellCache,
    RunnerError,
    default_cache_dir,
    run_cells,
)

__all__ = [
    "BusTracer",
    "Cell",
    "CellCache",
    "RunnerError",
    "TraceRecord",
    "WorkloadSpeed",
    "compare_to_baseline",
    "default_cache_dir",
    "format_report",
    "run_cells",
    "run_simspeed",
    "run_workload",
    "write_report",
]
