"""Developer tooling: bus tracing, system reports and perf measurement."""

from repro.tools.trace import BusTracer, TraceRecord
from repro.tools.perf import (
    WorkloadSpeed,
    compare_to_baseline,
    format_report,
    run_simspeed,
    run_workload,
    write_report,
)

__all__ = [
    "BusTracer",
    "TraceRecord",
    "WorkloadSpeed",
    "compare_to_baseline",
    "format_report",
    "run_simspeed",
    "run_workload",
    "write_report",
]
