"""Fork-server execution backend: persistent warm workers, COW images.

The pool backend (``ProcessPoolExecutor``) pays a fixed cost per job
that has nothing to do with simulated work: spawning an interpreter,
re-importing the package, and booting (or decoding a snapshot of) the
cell's machine.  ``BENCH_simspeed.json`` shows that for paper-scale
cells this setup dominates wall-clock time.  This module removes it
with the classic "load once, fork many" pattern:

* For every distinct *environment* among the pending cells (system
  name + build arguments + platform config + optional boot snapshot),
  the client forks one long-lived **server** process.  The server
  constructs its machine exactly once — booting it, or restoring it
  in memory via :func:`repro.state.restore_from_snapshot` from a
  snapshot decoded exactly once — and then waits for work.
* For every cell, the server **forks a child**.  The child inherits
  the fully-constructed machine copy-on-write and immediately runs the
  cell's workload body (``execute_cell_on``): zero interpreter spawn,
  zero snapshot decode, zero re-boot on the hot path.
* Cells kinds without a registered environment builder (e.g. the
  test-only ``selftest`` kind) run on a shared *generic* server whose
  children call :func:`repro.tools.runner.execute_cell` directly.

Wire protocol
-------------
All pipes carry length-prefixed pickle frames: an 8-byte big-endian
length followed by the pickled tuple.  Client -> server commands are
``("run", seq, cell)`` and ``("stop",)``; server -> client results are
``("ok", seq, payload)``, ``("err", seq, message)``, ``("died", seq,
message)`` and ``("fatal", message)`` (environment construction
failed).  Children report to their server over a private pipe; the
server is the sole writer of the result pipe, so client-side frames
never interleave.

Failure contract (mirrors the pool backend, DESIGN.md §5d)
----------------------------------------------------------
* A child that raises — or is killed mid-cell — is retried **once** by
  forking a fresh child from the pristine parent image; a second
  failure raises :class:`~repro.tools.runner.RunnerError` naming the
  cell.
* A cell exceeding the per-job ``timeout`` raises ``RunnerError``
  immediately (a hung child cannot be retried without leaking it);
  every server process group is killed on the way out.
* A server that dies wholesale (environment build failure, OOM kill)
  demotes its cells to in-process serial execution — the same graceful
  degradation the pool backend applies when a pool cannot be created.

Platforms without ``os.fork`` (Windows, some sandboxes) raise
:class:`ForkServerUnavailable`; ``run_cells`` then falls back to the
pool backend.  ``REPRO_BENCH_BACKEND=pool`` forces that fallback for
CI and A/B measurement.
"""

from __future__ import annotations

import os
import pickle
import select
import signal
import struct
import time
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro.tools import runner as _runner

_LEN = struct.Struct(">Q")

#: Seconds to wait for a server to exit after ("stop",) before SIGKILL.
_STOP_GRACE = 5.0


class ForkServerUnavailable(RuntimeError):
    """This platform cannot run the fork-server backend."""


def fork_available() -> bool:
    """True when ``os.fork`` exists and behaves (POSIX)."""
    return os.name == "posix" and hasattr(os, "fork")


# ----------------------------------------------------------------------
# Frame protocol
# ----------------------------------------------------------------------
def _send_frame(fd: int, obj: Any) -> None:
    """Write one length-prefixed pickle frame (blocking, complete)."""
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    data = _LEN.pack(len(blob)) + blob
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


class _FrameBuffer:
    """Reassembles frames from a nonblocking stream of pipe reads."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> List[Any]:
        self._buf += data
        frames: List[Any] = []
        while True:
            if len(self._buf) < _LEN.size:
                return frames
            (length,) = _LEN.unpack_from(self._buf)
            end = _LEN.size + length
            if len(self._buf) < end:
                return frames
            blob = bytes(self._buf[_LEN.size:end])
            del self._buf[:end]
            frames.append(pickle.loads(blob))


def _decode_single_frame(buf: bytes) -> Optional[Any]:
    """Decode exactly one complete frame, or ``None`` if truncated."""
    if len(buf) < _LEN.size:
        return None
    (length,) = _LEN.unpack_from(buf)
    if len(buf) < _LEN.size + length:
        return None
    try:
        return pickle.loads(bytes(buf[_LEN.size:_LEN.size + length]))
    except Exception:
        return None


# ----------------------------------------------------------------------
# Environment grouping
# ----------------------------------------------------------------------
def environment_key(cell) -> Tuple:
    """Grouping key: cells with equal keys share one warm server.

    Environment servers require both a prototype builder and an
    on-system executor for the cell's kind; everything else lands on
    the shared generic server (children build their own state).
    """
    if (cell.kind in _runner.KIND_PROTOTYPES
            and cell.kind in _runner.KIND_ON_SYSTEM):
        import dataclasses
        import json

        config = (dataclasses.asdict(cell.platform_config)
                  if cell.platform_config is not None else None)
        return (
            "env",
            cell.kind,
            cell.environment,
            json.dumps(config, sort_keys=True),
            cell.snapshot_path or "",
        )
    return ("generic",)


def _build_prototype(cell):
    """Construct the pristine machine a server forks children from.

    Warm-start cells restore through the in-memory entry point — the
    snapshot file is decoded once here and never touched again.
    """
    if cell.snapshot_path:
        from repro import state
        from repro.errors import SnapshotError

        snapshot = state.load_snapshot(cell.snapshot_path)
        expect = cell.spec.get("boot_snapshot")
        if expect and snapshot.content_hash != expect:
            raise SnapshotError(
                f"{cell.snapshot_path}: content hash "
                f"{snapshot.content_hash[:12]}… does not match the "
                f"expected {expect[:12]}…"
            )
        return state.restore_from_snapshot(snapshot)
    return _runner.resolve_hook(_runner.KIND_PROTOTYPES[cell.kind])(cell)


# ----------------------------------------------------------------------
# Server process
# ----------------------------------------------------------------------
def _describe_status(status: int) -> str:
    if os.WIFSIGNALED(status):
        return f"worker killed by signal {os.WTERMSIG(status)}"
    if os.WIFEXITED(status):
        return f"worker exited with status {os.WEXITSTATUS(status)}"
    return f"worker ended with wait status {status}"


def _child_main(result_fd: int, cell, system, run_on) -> None:
    """Execute one cell in a freshly forked child; never returns.

    The payload travels back verbatim — including the ``"metrics"``
    observability report the workload body attaches (see repro.obs),
    so run-integrity enforcement happens once, in ``run_cells``, with
    identical semantics across the serial, pool and fork backends.
    """
    try:
        try:
            if system is not None:
                payload = run_on(cell, system)
            else:
                payload = _runner.execute_cell(cell)
            frame = ("ok-local", payload)
        except BaseException as exc:  # noqa: BLE001 - reported to parent
            frame = ("err-local", f"{exc!r}")
        try:
            _send_frame(result_fd, frame)
        except BaseException:
            pass
        try:
            os.close(result_fd)
        except OSError:
            pass
    finally:
        # Skip interpreter teardown: atexit hooks, stdio flushing and
        # GC belong to the forked parent image, not to this worker.
        os._exit(0)


def _server_main(cmd_fd: int, res_fd: int, sample_cell) -> None:
    """Body of a server process; exits via ``os._exit`` only."""
    try:
        os.setpgid(0, 0)  # own process group: killable with children
    except OSError:
        pass
    try:
        system = None
        run_on = None
        if sample_cell is not None:
            system = _build_prototype(sample_cell)
            run_on = _runner.resolve_hook(
                _runner.KIND_ON_SYSTEM[sample_cell.kind]
            )
    except BaseException as exc:  # noqa: BLE001 - reported to client
        try:
            _send_frame(res_fd, ("fatal", f"{exc!r}"))
        except BaseException:
            pass
        os._exit(1)

    commands = _FrameBuffer()
    # child read fd -> [pid, seq, bytearray of the child's result frame]
    children: Dict[int, List[Any]] = {}
    stopping = False
    while not (stopping and not children):
        watched = list(children)
        if not stopping:
            watched.append(cmd_fd)
        readable, _, _ = select.select(watched, [], [])
        for fd in readable:
            if fd == cmd_fd:
                data = os.read(cmd_fd, 65536)
                if not data:
                    stopping = True  # client hung up
                    continue
                for frame in commands.feed(data):
                    if frame[0] == "stop":
                        stopping = True
                        continue
                    _, seq, cell = frame
                    child_r, child_w = os.pipe()
                    pid = os.fork()
                    if pid == 0:
                        os.close(child_r)
                        os.close(cmd_fd)
                        os.close(res_fd)
                        for sibling_fd in list(children):
                            os.close(sibling_fd)
                        _child_main(child_w, cell, system, run_on)
                    os.close(child_w)
                    children[child_r] = [pid, seq, bytearray()]
            else:
                data = os.read(fd, 65536)
                record = children[fd]
                if data:
                    record[2] += data
                    continue
                os.close(fd)
                pid, seq, buf = children.pop(fd)
                _, status = os.waitpid(pid, 0)
                frame = _decode_single_frame(bytes(buf))
                if frame is not None and frame[0] == "ok-local":
                    out = ("ok", seq, frame[1])
                elif frame is not None and frame[0] == "err-local":
                    out = ("err", seq, frame[1])
                else:
                    out = ("died", seq, _describe_status(status))
                try:
                    _send_frame(res_fd, out)
                except BrokenPipeError:
                    stopping = True
    os._exit(0)


# ----------------------------------------------------------------------
# Client side
# ----------------------------------------------------------------------
class _Server:
    """Client-side handle on one forked server process."""

    def __init__(self, key: Tuple, sample_cell):
        self.key = key
        self.ever_dispatched = False
        cmd_r, cmd_w = os.pipe()
        res_r, res_w = os.pipe()
        pid = os.fork()
        if pid == 0:
            try:
                os.close(cmd_w)
                os.close(res_r)
                _server_main(cmd_r, res_w, sample_cell)
            finally:
                os._exit(1)
        os.close(cmd_r)
        os.close(res_w)
        try:
            os.setpgid(pid, pid)  # double-set: beat the race with the child
        except OSError:
            pass
        self.pid = pid
        self.cmd_fd = cmd_w
        self.res_fd = res_r
        self.frames = _FrameBuffer()
        self.queue: deque = deque()  # cell indices awaiting dispatch
        self.alive = True
        self.reaped = False

    def dispatch(self, seq: int, cell) -> None:
        _send_frame(self.cmd_fd, ("run", seq, cell))

    def request_stop(self) -> None:
        if not self.alive:
            return
        try:
            _send_frame(self.cmd_fd, ("stop",))
        except OSError:
            pass
        try:
            os.close(self.cmd_fd)
        except OSError:
            pass
        self.alive = False

    def mark_dead(self) -> None:
        if self.alive:
            try:
                os.close(self.cmd_fd)
            except OSError:
                pass
            self.alive = False

    def kill(self) -> None:
        self.mark_dead()
        for target in (lambda: os.killpg(self.pid, signal.SIGKILL),
                       lambda: os.kill(self.pid, signal.SIGKILL)):
            try:
                target()
                break
            except (ProcessLookupError, PermissionError, OSError):
                continue

    def reap(self, deadline: Optional[float] = None) -> None:
        """Collect the server's exit status (poll until ``deadline``)."""
        if self.reaped:
            return
        while True:
            try:
                pid, _ = os.waitpid(self.pid, os.WNOHANG)
            except ChildProcessError:
                break
            if pid:
                break
            if deadline is None or time.monotonic() >= deadline:
                self.kill()
                try:
                    os.waitpid(self.pid, 0)
                except ChildProcessError:
                    pass
                break
            time.sleep(0.01)
        self.reaped = True
        try:
            os.close(self.res_fd)
        except OSError:
            pass


class _Inflight:
    __slots__ = ("index", "server", "deadline", "first_error")

    def __init__(self, index: int, server: _Server,
                 deadline: Optional[float], first_error: Optional[str]):
        self.index = index
        self.server = server
        self.deadline = deadline
        self.first_error = first_error


class ForkServerPool:
    """A long-lived, re-entrant pool of warm fork servers.

    The one-shot :func:`run_pending` path pays the environment boot for
    every invocation; this class keeps the servers — and therefore the
    fully-constructed machine images they fork children from — alive
    across calls.  The first :meth:`run_indices` call that needs an
    environment forks its server (a *cold boot*); every later cell for
    the same environment key lands on the warm server (a *warm
    dispatch*), so boot cost is amortized indefinitely.  This is the
    execution substrate of the ``repro serve`` daemon
    (:mod:`repro.service.daemon`), which shares one pool across every
    client and job.

    Failure containment differs from the one-shot path in one way: an
    error confined to a single call (a cell that failed its retry, a
    per-job timeout) must not tear down servers other jobs are using.
    A timeout kills and evicts only the servers with overdue children;
    a failed-after-retry raise leaves every server warm.  Anything
    unexpected still closes the whole pool, matching the one-shot
    contract.

    Not thread-safe: callers (the daemon's dispatcher thread, the
    one-shot wrapper) serialize calls.
    """

    def __init__(self, jobs: int = 1, timeout: Optional[float] = None):
        if not fork_available():
            raise ForkServerUnavailable(
                "os.fork is not available on this platform"
            )
        self.jobs = max(1, jobs)
        self.timeout = timeout
        self.servers: Dict[Tuple, _Server] = {}
        self.closed = False
        # Pool-lifetime monotonic sequence: a child abandoned by a
        # timed-out call may deliver its frame during a *later* call;
        # never reusing sequence numbers makes stale frames drop
        # harmlessly instead of corrupting another cell's slot.
        self._seq = 0
        self.cold_boots = 0
        self.warm_dispatches = 0
        self.cold_dispatches = 0
        self.serial_demotions = 0

    # ------------------------------------------------------------------
    @property
    def warm_servers(self) -> int:
        """Live servers currently holding a warm machine image."""
        return sum(1 for server in self.servers.values() if server.alive)

    def stats(self) -> Dict[str, int]:
        """Dispatch accounting (daemon gauges; see repro.obs.service)."""
        return {
            "cold_boots": self.cold_boots,
            "cold_dispatches": self.cold_dispatches,
            "warm_dispatches": self.warm_dispatches,
            "serial_demotions": self.serial_demotions,
            "warm_servers": self.warm_servers,
        }

    def _ensure_server(self, key: Tuple, sample_cell) -> _Server:
        server = self.servers.get(key)
        if server is not None and server.alive:
            return server
        if server is not None:  # dead handle from an earlier demotion
            self.servers.pop(key, None)
        try:
            server = _Server(key, sample_cell if key[0] == "env" else None)
        except OSError as exc:
            raise ForkServerUnavailable(
                f"could not fork a server process: {exc}"
            ) from exc
        self.servers[key] = server
        self.cold_boots += 1
        return server

    def _evict(self, server: _Server) -> None:
        """Kill one server and forget it (a later call re-creates it)."""
        server.kill()
        server.reap(deadline=time.monotonic())
        self.servers.pop(server.key, None)

    def _sanitize(self) -> None:
        """Drop queued-but-undispatched work after an aborted call."""
        for server in self.servers.values():
            server.queue.clear()

    def close(self, kill: bool = False) -> None:
        """Stop every server (gracefully unless ``kill``) and reap it."""
        for server in self.servers.values():
            if kill:
                server.kill()
            else:
                server.request_stop()
        grace = time.monotonic() + (0.0 if kill else _STOP_GRACE)
        for server in self.servers.values():
            server.reap(deadline=grace)
        self.servers.clear()
        self.closed = True

    # ------------------------------------------------------------------
    def run_indices(
        self, cells: List, pending: List[int]
    ) -> Dict[int, Dict[str, Any]]:
        """Execute ``cells[i]`` for every ``i`` in ``pending``.

        Returns ``{index: payload}``.  Raises
        :class:`~repro.tools.runner.RunnerError` on timeout or a cell
        that failed its retry (the pool survives both), and
        :class:`ForkServerUnavailable` when a server cannot be forked
        (the pool is closed).
        """
        if self.closed:
            raise ForkServerUnavailable("fork-server pool is closed")
        if not pending:
            return {}
        timeout = self.timeout
        results: Dict[int, Dict[str, Any]] = {}
        inflight: Dict[int, _Inflight] = {}
        # index -> (first error, retry error); raised — lowest index
        # first, matching the pool backend's cell-order iteration —
        # once all in-flight work has drained.
        failed: Dict[int, Tuple[str, str]] = {}

        def demote_to_serial(server: _Server, message: str) -> None:
            """A server died: run its remaining cells in-process."""
            orphans = [rec.index for rec in inflight.values()
                       if rec.server is server]
            for seq in [s for s, rec in inflight.items()
                        if rec.server is server]:
                del inflight[seq]
            orphans.extend(server.queue)
            server.queue.clear()
            server.mark_dead()
            server.reap(deadline=time.monotonic())
            self.servers.pop(server.key, None)
            self.serial_demotions += 1
            for index in orphans:
                results[index] = _runner._run_serial(cells[index])

        def dispatch(server: _Server, index: int,
                     first_error: Optional[str]) -> None:
            seq = self._seq
            self._seq += 1
            deadline = (time.monotonic() + timeout) if timeout else None
            try:
                server.dispatch(seq, cells[index])
            except (BrokenPipeError, OSError):
                # The index is in neither ``inflight`` nor the queue
                # right now; requeue it so the demotion path picks it up.
                server.queue.appendleft(index)
                demote_to_serial(server, "fork server hung up")
                return
            if server.ever_dispatched:
                self.warm_dispatches += 1
            else:
                self.cold_dispatches += 1
                server.ever_dispatched = True
            inflight[seq] = _Inflight(index, server, deadline, first_error)

        def pump() -> None:
            """Round-robin dispatch until ``jobs`` cells are in flight."""
            while len(inflight) < self.jobs:
                progressed = False
                for server in list(self.servers.values()):
                    if len(inflight) >= self.jobs:
                        break
                    if server.alive and server.queue:
                        dispatch(server, server.queue.popleft(), None)
                        progressed = True
                if not progressed:
                    break

        try:
            for index in pending:
                key = environment_key(cells[index])
                server = self._ensure_server(key, cells[index])
                server.queue.append(index)

            pump()
            while inflight:
                now = time.monotonic()
                deadlines = [rec.deadline for rec in inflight.values()
                             if rec.deadline is not None]
                wait: Optional[float] = None
                if deadlines:
                    wait = max(0.0, min(deadlines) - now)
                fds = {server.res_fd: server
                       for server in self.servers.values()
                       if not server.reaped}
                readable, _, _ = select.select(list(fds), [], [], wait)
                if not readable:
                    # Deadline expired with nothing to read: kill and
                    # evict only the servers with overdue children, so
                    # the rest of the pool stays warm for other jobs.
                    now = time.monotonic()
                    victim = None
                    for rec in list(inflight.values()):
                        if rec.deadline is not None and now >= rec.deadline:
                            victim = victim or cells[rec.index]
                            self._evict(rec.server)
                    if victim is not None:
                        raise _runner.RunnerError(
                            f"cell {victim.label()} timed out after "
                            f"{timeout:.0f}s",
                            victim,
                        )
                    continue
                for fd in readable:
                    server = fds[fd]
                    data = os.read(fd, 65536)
                    if not data:
                        demote_to_serial(server, "fork server died")
                        continue
                    for frame in server.frames.feed(data):
                        tag = frame[0]
                        if tag == "fatal":
                            demote_to_serial(
                                server,
                                f"environment setup failed: {frame[1]}",
                            )
                            continue
                        _, seq, body = frame
                        rec = inflight.pop(seq, None)
                        if rec is None:
                            continue  # late frame: abandoned retry or
                            # a child left behind by a timed-out call
                        if tag == "ok":
                            results[rec.index] = body
                            continue
                        # "err"/"died": one retry from the pristine image.
                        if rec.first_error is not None:
                            failed[rec.index] = (rec.first_error, body)
                            continue
                        dispatch(rec.server, rec.index, first_error=body)
                pump()
            if failed:
                index = min(failed)
                first, second = failed[index]
                cell = cells[index]
                raise _runner.RunnerError(
                    f"cell {cell.label()} failed after retry: {second} "
                    f"(first attempt: {first})",
                    cell,
                )
        except _runner.RunnerError:
            # Per-call failure: the pool survives.  Queued-but-never-
            # dispatched indices are dropped (the caller sees the
            # exception, not partial results); abandoned in-flight
            # children finish in their servers and their frames are
            # discarded as stale sequence numbers.
            self._sanitize()
            raise
        except BaseException:
            self.close(kill=True)
            raise
        return results


def run_pending(
    cells: List,
    pending: List[int],
    jobs: int,
    timeout: Optional[float],
) -> Dict[int, Dict[str, Any]]:
    """Execute ``cells[i]`` for every ``i`` in ``pending``; see module doc.

    One-shot wrapper over :class:`ForkServerPool`: servers live for the
    duration of this call only.  Returns ``{index: payload}``.  Raises
    :class:`ForkServerUnavailable` when the platform cannot fork, and
    :class:`~repro.tools.runner.RunnerError` on timeout or a cell that
    failed its retry.
    """
    if not pending:
        if not fork_available():
            raise ForkServerUnavailable(
                "os.fork is not available on this platform"
            )
        return {}
    pool = ForkServerPool(jobs=jobs, timeout=timeout)
    try:
        results = pool.run_indices(cells, pending)
    except BaseException:
        pool.close(kill=True)
        raise
    pool.close(kill=False)
    return results
