"""Macro-op memoization: collapse periodic interpreter hot loops.

The simulator's throughput workloads (``repro.tools.perf``) and the
lmbench-style latency drivers (``repro.workloads.lmbench``) all run one
*kernel operation* — a monitored write, a fork/execv round trip, an
mmap/touch/munmap cycle — thousands of times against the same machine.
After a short warmup the machine state is **periodic**: every component
either returns to an identical configuration each period (memory words,
cache and TLB content, allocator pools, monitor shadows) or advances by
an identical *delta* (the clock, every StatSet counter, the MBM's
busy-cycle meters, the monitors' alert logs).

This engine detects that period at runtime and replays whole periods as
a single aggregate effect application:

1. **Record.**  Ops run raw, one at a time, with physical memory traced
   (a ``__class__`` swap onto a logging subclass — zero cost when not
   tracing).  After each op the write log is folded into a *shadow*
   (addr → final value of every word written this call) and a cheap
   sample is taken: shadow checksum, the small mutable component states
   (DRAM open rows, interrupt controller, capture FIFO, bitmap cache,
   monitor shadows…), a snapshot of every StatSet, the clock and its
   attribution buckets, and the alert-log lengths.
2. **Detect.**  When a sample's shadow and small state exactly match an
   earlier sample's, the ops between them are a candidate cycle.
3. **Verify.**  The candidate is *constructively verified*: a full
   fingerprint (normalized state digests of the kernel, Hypersec, KVM,
   both caches and the MMU) is taken, the candidate period is run once
   more raw, and the fingerprint plus every per-period delta — clock
   charge, each counter increment, busy cycles, appended alerts — must
   reproduce exactly.  A mismatch counts as ``replay_divergence`` and
   the candidate is discarded; this is the integrity check that
   replayed cycle charges equal recorded ones.
4. **Replay.**  All remaining whole periods are applied as one batched
   effect: ``clock.advance(Δcycles · n)``, ``stats.add(key, Δ · n)``,
   attribution and busy-cycle adds, and alert-log extension.  Component
   *content* needs no touch-up — a verified cycle is an identity on
   machine state by construction.  The leftover ``count mod period``
   ops run raw, so the final machine state is bit-identical to the
   unmemoized run.

Keying is content-addressed like the runner's CellCache: a confirmed
cycle is stored under a digest of (op key, CostModel/OpCosts, package
version) plus the full state fingerprint, memory digest and small-state
image of its starting point.  There is no explicit invalidation
protocol to get wrong — a monitored-page write, a Hypersec registration
change or TLB/ASID churn between calls lands in those digests and
simply misses the table, falling back to fresh detection.

Anything that cannot be proven periodic falls back to raw execution:
ops that return values, ops that read the clock (``kernel.uptime()`` —
their behaviour depends on absolute time), ops that exceed the
write-tracing budget, and loops that never revisit a state within the
sampling window.

Disable with ``REPRO_MACROOPS=0`` (or ``--no-macroops`` on the bench
CLIs); counters surface through ``repro.obs.metrics`` as the
``macroops`` component and the profiler's ``macroop_replay`` charge
site.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.hw.clock import Clock
from repro.hw.memory import _CHUNK_BYTES, _ZERO_CHUNK, PhysicalMemory
from repro.utils.stats import StatSet

_WORD = 8
_MIX_A = 0x9E3779B97F4A7C15
_MIX_B = 0xBF58476D1CE4E5B9
_MASK64 = (1 << 64) - 1
_MASK128 = (1 << 128) - 1

#: Keys dropped when normalizing component state for fingerprints.  All
#: are monotonic observer-side logs whose *deltas* are replayed instead
#: of being required to match: StatSet counters ("stats", "syscalls"),
#: busy-cycle meters, TLB version counters ("epoch") and alert logs.
_STRIP_KEYS = frozenset({"stats", "busy_cycles", "epoch", "alerts", "syscalls"})


def memoization_enabled() -> bool:
    """Process-wide default: on unless ``REPRO_MACROOPS=0``."""
    return os.environ.get("REPRO_MACROOPS", "1") != "0"


def _strip(obj: Any) -> Any:
    if isinstance(obj, dict):
        return {k: _strip(v) for k, v in obj.items() if k not in _STRIP_KEYS}
    if isinstance(obj, list):
        return [_strip(v) for v in obj]
    return obj


def _digest(state: Any) -> str:
    payload = json.dumps(_strip(state), sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()


# ----------------------------------------------------------------------
# Tracing shims (installed via __class__ swap while the engine samples)
# ----------------------------------------------------------------------
class _TracedMemory(PhysicalMemory):
    """PhysicalMemory that logs every mutation (class-swapped in)."""

    __slots__ = ()  # must stay layout-compatible for __class__ assignment

    _LOG: List[tuple] = []

    def write_word(self, paddr: int, value: int) -> None:
        _TracedMemory._LOG.append(("w", paddr, value & _MASK64))
        PhysicalMemory.write_word(self, paddr, value)

    def fill(self, paddr: int, nwords: int, value: int = 0) -> None:
        if nwords > 0:
            _TracedMemory._LOG.append(("f", paddr, nwords, value & _MASK64))
        PhysicalMemory.fill(self, paddr, nwords, value)

    def copy_words(self, src: int, dst: int, nwords: int) -> None:
        PhysicalMemory.copy_words(self, src, dst, nwords)
        if nwords > 0:
            # Destination values are resolved at flatten time from the
            # (by then final) memory image; any word a later log entry
            # overlaps is corrected by that later entry, so log-order
            # folding still yields the exact final-value shadow.
            _TracedMemory._LOG.append(("c", dst, nwords))


class _TracedClock(Clock):
    """Clock whose ``now`` reads are counted (class-swapped in).

    An op that reads the clock depends on absolute time (file mtimes,
    ``uptime``) and is never safe to replay from a recorded period.
    Internal fast paths (``scope``, ``elapsed_since``, the engine
    itself) read ``_cycles`` directly and do not trip the counter.
    """

    _NOW_READS = 0

    @property
    def now(self) -> int:
        _TracedClock._NOW_READS += 1
        return self._cycles


# ----------------------------------------------------------------------
# Samples, deltas, confirmed cycles
# ----------------------------------------------------------------------
@dataclass
class _Sample:
    index: int                      #: ops completed when taken
    shadow: Dict[int, int]          #: copy of the write shadow
    checksum: int
    small: tuple                    #: small mutable component states
    stats: List[Dict[str, int]]     #: one snapshot per StatSet
    clock: int
    attribution: Dict[str, int]
    busy: Tuple[int, ...]
    alert_lens: Tuple[int, ...]


@dataclass(eq=True)
class _Delta:
    """Per-period observer-side increments of one candidate cycle."""

    clock: int
    stats: List[Dict[str, int]]
    attribution: Dict[str, int]
    busy: Tuple[int, ...]
    alerts: List[List[Any]]


@dataclass
class _Cycle:
    """A verified cycle: its length and per-period deltas."""

    length: int
    delta: _Delta


@dataclass
class EngineReport:
    """What one ``run_repeated`` call did (for gates and tests)."""

    key: str
    count: int
    replayed_ops: int = 0       #: ops satisfied by aggregate replay
    recorded_ops: int = 0       #: ops run raw under tracing
    raw_ops: int = 0            #: ops run raw without tracing
    cycle_length: int = 0
    replayed_periods: int = 0
    replayed_sim_cycles: int = 0
    bail_reason: str = ""       #: why (part of) the loop ran unmemoized


class MacroOpEngine:
    """Per-system macro-op memoizer (see module docstring)."""

    def __init__(
        self,
        system,
        *,
        enabled: Optional[bool] = None,
        max_samples: int = 128,
        write_budget: int = 60_000,
        min_iterations: int = 8,
        confirm_attempts: int = 4,
    ):
        self.system = system
        self.enabled = memoization_enabled() if enabled is None else enabled
        self.max_samples = max_samples
        self.write_budget = write_budget
        self.min_iterations = min_iterations
        self.confirm_attempts = confirm_attempts
        self.stats = self._attach_stats(system)
        self.memory: PhysicalMemory = system.platform.memory
        self.clock: Clock = system.platform.clock
        #: content-addressed table: op key → {entry-state key: _Cycle}
        self._confirmed: Dict[str, Dict[tuple, _Cycle]] = {}
        #: op keys that bailed for a structural reason (clock reads,
        #: return values, no cycle within the window): further calls go
        #: straight to raw execution instead of re-sampling.
        self._hopeless: Dict[str, str] = {}
        #: run_repeated invocations seen so far; cross-call entries are
        #: only stored once a second call proves the engine is reused.
        self._calls = 0
        self._config_key = self._compute_config_key()
        # Fixed observation sites (their order is the delta layout).
        from repro.obs.metrics import component_stat_sets
        self._stat_sets: List[StatSet] = [
            s for s in component_stat_sets(system) if s is not self.stats
        ]
        self._busy_sites: List[tuple] = []
        mbm = getattr(system, "mbm", None)
        if mbm is not None:
            self._busy_sites = [(mbm.translator, "busy_cycles"),
                                (mbm.decision, "busy_cycles")]
        self._alert_lists: List[list] = [
            app.alerts for app in getattr(system, "monitors", [])
        ]

    @staticmethod
    def _attach_stats(system) -> StatSet:
        stats = getattr(system, "macroop_stats", None)
        if stats is None:
            stats = StatSet("macroops")
            system.macroop_stats = stats
        return stats

    def _compute_config_key(self) -> str:
        """Digest of everything that changes what an op *does* for a
        given machine state: the cost/config tables and the package
        version (content-addressed keying, like the runner's
        CellCache)."""
        from dataclasses import asdict

        from repro import __version__

        config = self.system.platform.config
        parts: Dict[str, Any] = {
            "version": __version__,
            "system": self.system.name,
            "config": asdict(config),
        }
        return hashlib.sha256(
            json.dumps(parts, sort_keys=True, default=str).encode()
        ).hexdigest()

    # ------------------------------------------------------------------
    # Observation helpers
    # ------------------------------------------------------------------
    def _small_state(self) -> tuple:
        """Cheap exact image of the small mutable component states.

        Everything not covered here or by the write shadow is covered
        by the confirm-time full fingerprint instead (kernel, caches,
        MMU, Hypersec, KVM).
        """
        system = self.system
        platform = system.platform
        mmu = system.cpu.mmu
        gic = platform.gic
        parts: List[Any] = [
            system.cpu.current_el, mmu.asid, mmu.vmid,
            tuple(sorted(system.cpu.regs._values.items())),
            tuple(sorted(platform.dram._open_rows.items())),
            tuple(sorted(gic._masked.items())),
            tuple(sorted(gic._pending.items())),
            tuple(sorted(gic._in_service.items())),
        ]
        mbm = getattr(system, "mbm", None)
        if mbm is not None:
            parts += [tuple(mbm.fifo._entries), mbm.fifo.overrun,
                      tuple(mbm.bitmap_cache._lines.items()),
                      mbm._undelivered]
        for app in getattr(system, "monitors", []):
            bases = getattr(app, "_bases", None)
            parts += [
                tuple(sorted(app._shadow.items())),
                tuple(sorted((a, tuple(q)) for a, q in app._pending.items())),
                None if bases is None else tuple(sorted(bases.items())),
            ]
        return tuple(parts)

    @staticmethod
    def _shallow_strip(state: dict, deep: Tuple[str, ...] = ()) -> dict:
        """Drop observer keys at the top two levels (where this
        codebase's ``state_dict`` convention puts them), recursing
        fully only into the named ``deep`` subtrees."""
        out = {}
        for key, value in state.items():
            if key in _STRIP_KEYS:
                continue
            if key in deep:
                value = _strip(value)
            elif isinstance(value, dict):
                value = {k: v for k, v in value.items()
                         if k not in _STRIP_KEYS}
            out[key] = value
        return out

    def _full_state(self) -> list:
        """Exact normalized state of the big stateful components.

        Plain Python objects compared with ``==`` — taken only while
        verifying a candidate (a handful of times per call).  Cache
        state is read straight off the internals (cheaper than
        ``state_dict``, order-insensitive via the outer dict).  A
        normalization miss (an unstripped deep counter) can only cause
        a false divergence, never a false confirm.
        """
        system = self.system
        caches = system.platform.caches
        parts: List[Any] = [
            # "slab" is the one kernel subtree with deeper stats.
            self._shallow_strip(system.kernel.state_dict(), deep=("slab",)),
            {index: tuple(lines.items())
             for index, lines in caches.l1._sets.items()},
            {index: tuple(lines.items())
             for index, lines in caches.l2._sets.items()},
            self._shallow_strip(system.cpu.mmu.state_dict()),
        ]
        for attr in ("hypersec", "kvm"):
            component = getattr(system, attr, None)
            parts.append(None if component is None
                         else self._shallow_strip(component.state_dict()))
        return parts

    def _memory_digest(self) -> str:
        """Digest of the physical memory image.

        An allocated chunk that decayed back to all zeros is skipped so
        it digests identically to a never-allocated one (sparse writes
        of zero do not allocate; non-zero-then-zero does).
        """
        sha = hashlib.sha256()
        for base, chunks in zip(self.memory._bases, self.memory._chunk_maps):
            sha.update(base.to_bytes(8, "little"))
            for key in sorted(chunks):
                chunk = chunks[key]
                if len(chunk) == _CHUNK_BYTES and chunk == _ZERO_CHUNK:
                    continue
                sha.update(key.to_bytes(8, "little"))
                sha.update(bytes(chunk))
        return sha.hexdigest()

    def _entry_key(self) -> tuple:
        """Hashable content address of the machine's current state."""
        return (
            self._config_key,
            self._memory_digest(),
            hashlib.sha256(repr(self._small_state()).encode()).hexdigest(),
            _digest(self._full_state()),
        )

    def _snapshot(self, index: int, shadow: Dict[int, int],
                  checksum: int) -> _Sample:
        return _Sample(
            index=index,
            shadow=dict(shadow),
            checksum=checksum,
            small=self._small_state(),
            stats=[s.snapshot() for s in self._stat_sets],
            clock=self.clock._cycles,
            attribution=dict(self.clock.attribution),
            busy=tuple(getattr(obj, attr) for obj, attr in self._busy_sites),
            alert_lens=tuple(len(lst) for lst in self._alert_lists),
        )

    def _delta(self, older: _Sample, newer: _Sample) -> Optional[_Delta]:
        stats_delta: List[Dict[str, int]] = []
        for before, after in zip(older.stats, newer.stats):
            changes = {}
            for stat_key, value in after.items():
                diff = value - before.get(stat_key, 0)
                if diff < 0:
                    return None  # a counter ran backwards: not replayable
                if diff:
                    changes[stat_key] = diff
            stats_delta.append(changes)
        attribution_delta = {}
        for label, value in newer.attribution.items():
            diff = value - older.attribution.get(label, 0)
            if diff < 0:
                return None
            if diff:
                attribution_delta[label] = diff
        return _Delta(
            clock=newer.clock - older.clock,
            stats=stats_delta,
            attribution=attribution_delta,
            busy=tuple(b - a for a, b in zip(older.busy, newer.busy)),
            alerts=[list(lst[a:b]) for lst, a, b in
                    zip(self._alert_lists, older.alert_lens,
                        newer.alert_lens)],
        )

    def _apply(self, delta: _Delta, periods: int) -> None:
        self.clock.advance(delta.clock * periods)
        for stat_set, changes in zip(self._stat_sets, delta.stats):
            for stat_key, diff in changes.items():
                stat_set.add(stat_key, diff * periods)
        attribution = self.clock.attribution
        for label, diff in delta.attribution.items():
            attribution[label] = attribution.get(label, 0) + diff * periods
        for (obj, attr), diff in zip(self._busy_sites, delta.busy):
            setattr(obj, attr, getattr(obj, attr) + diff * periods)
        for alert_list, appended in zip(self._alert_lists, delta.alerts):
            if appended:
                # Alerts are frozen dataclasses: sharing references
                # across replayed periods is safe.
                alert_list.extend(appended * periods)

    def _flatten(self, log: List[tuple], shadow: Dict[int, int],
                 checksum: int) -> int:
        """Fold the write log into the shadow, maintaining the rolling
        order-independent checksum used for cheap bucket matching."""
        get = shadow.get
        for entry in log:
            kind = entry[0]
            if kind == "w":
                start, values = entry[1], (entry[2],)
            elif kind == "f":
                start, values = entry[1], (entry[3],) * entry[2]
            else:  # "c": resolve from the (by now final) memory image
                start = entry[1]
                values = PhysicalMemory.read_words(self.memory, start,
                                                   entry[2])
            addr = start
            for value in values:
                old = get(addr)
                if old is None:
                    shadow[addr] = value
                    checksum += (addr * _MIX_A ^ value * _MIX_B) & _MASK64
                elif old != value:
                    shadow[addr] = value
                    checksum += ((addr * _MIX_A ^ value * _MIX_B) & _MASK64) \
                        - ((addr * _MIX_A ^ old * _MIX_B) & _MASK64)
                addr += _WORD
        return checksum & _MASK128

    # ------------------------------------------------------------------
    # The hot loop
    # ------------------------------------------------------------------
    def run_repeated(self, key: str, op: Callable[[], Any],
                     count: int) -> EngineReport:
        """Run ``op()`` ``count`` times, replaying detected cycles.

        Machine state, counters and the clock end bit-identical to the
        plain ``for _ in range(count): op()`` loop.
        """
        self._calls += 1
        report = EngineReport(key=key, count=count)
        if not self.enabled or count < self.min_iterations:
            for _ in range(count):
                op()
            report.raw_ops = count
            if self.enabled:
                report.bail_reason = "short"
                self.stats.add("skipped_short")
            else:
                report.bail_reason = "disabled"
            self.stats.add("raw_ops", count)
            return report

        hopeless = self._hopeless.get(key)
        if hopeless is not None:
            for _ in range(count):
                op()
            report.raw_ops = count
            report.bail_reason = hopeless
            self.stats.add("raw_ops", count)
            return report

        # Cross-call reuse: when a cycle confirmed for this op key is
        # known and the entry state matches its starting point exactly,
        # skip detection and replay immediately.
        known_for_key = self._confirmed.get(key)
        if known_for_key:
            known = known_for_key.get(self._entry_key())
            if known is not None and count >= known.length:
                periods = count // known.length
                self._apply(known.delta, periods)
                for _ in range(count - periods * known.length):
                    op()
                self._note_replay(report, known, periods,
                                  count - periods * known.length)
                self.stats.add("entry_reuse")
                return report

        self._detect_and_replay(key, op, count, report)
        return report

    def _note_replay(self, report: EngineReport, cycle: _Cycle,
                     periods: int, raw_tail: int) -> None:
        report.replayed_ops += periods * cycle.length
        report.raw_ops += raw_tail
        report.cycle_length = cycle.length
        report.replayed_periods += periods
        report.replayed_sim_cycles += cycle.delta.clock * periods
        self.stats.add("hits", periods * cycle.length)
        self.stats.add("cycle_replays", periods)
        self.stats.add("raw_ops", raw_tail)
        self.stats.add("replayed_sim_cycles", cycle.delta.clock * periods)

    def _detect_and_replay(self, key: str, op: Callable[[], Any],
                           count: int, report: EngineReport) -> None:
        memory, clock = self.memory, self.clock
        log: List[tuple] = []
        _TracedMemory._LOG = log
        shadow: Dict[int, int] = {}
        checksum = 0
        flattened = 0
        samples: List[_Sample] = []
        buckets: Dict[tuple, List[int]] = {}
        i = 0
        attempts = 0
        memory.__class__ = _TracedMemory
        clock.__class__ = _TracedClock
        try:
            samples.append(self._snapshot(0, shadow, checksum))
            buckets[(0, 0)] = [0]
            while i < count:
                reads_before = _TracedClock._NOW_READS
                result = op()
                i += 1
                report.recorded_ops += 1
                if result is not None:
                    report.bail_reason = "return_value"
                    break
                if _TracedClock._NOW_READS != reads_before:
                    report.bail_reason = "clock_read"
                    break
                flattened += len(log)
                checksum = self._flatten(log, shadow, checksum)
                log.clear()
                if flattened > self.write_budget:
                    report.bail_reason = "budget"
                    break
                sample = self._snapshot(i, shadow, checksum)
                candidate = self._find_candidate(sample, buckets, samples)
                samples.append(sample)
                buckets.setdefault((len(shadow), checksum),
                                   []).append(len(samples) - 1)
                if candidate is None:
                    if len(samples) > self.max_samples:
                        report.bail_reason = "no_cycle"
                        break
                    continue
                length = sample.index - candidate.index
                if count - i < 2 * length:
                    report.bail_reason = "not_profitable"
                    break
                cycle, i, checksum, confirm = self._verify(
                    op, candidate, sample, i, log, shadow, checksum, report)
                if cycle is None:
                    if confirm is None:  # op disqualified mid-verify
                        break
                    attempts += 1
                    if attempts >= self.confirm_attempts:
                        report.bail_reason = "divergence"
                        break
                    # The verification ops were legitimate samples too:
                    # register the post-verify state and keep detecting.
                    samples.append(confirm)
                    buckets.setdefault(
                        (len(confirm.shadow), confirm.checksum), []
                    ).append(len(samples) - 1)
                    continue
                self.stats.add("cycle_confirms")
                # Remember the cycle under its *starting* state (which
                # is the machine's state right now — the verified cycle
                # is an identity) so a later call entering exactly here
                # replays instantly.  Computing the entry key digests
                # the full machine state, so skip it for single-use
                # engines (perf sweeps build one engine per workload).
                if self._calls > 1:
                    self._confirmed.setdefault(
                        key, {})[self._entry_key()] = cycle
                periods = (count - i) // cycle.length
                self._apply(cycle.delta, periods)
                done = i + periods * cycle.length
                # Finish the remainder raw (tracing no longer needed).
                memory.__class__ = PhysicalMemory
                clock.__class__ = Clock
                for _ in range(count - done):
                    op()
                self._note_replay(report, cycle, periods, count - done)
                self.stats.add("recorded_ops", report.recorded_ops)
                return
            # No usable cycle: run whatever remains raw.
            memory.__class__ = PhysicalMemory
            clock.__class__ = Clock
            remaining = count - i
            for _ in range(remaining):
                op()
            report.raw_ops += remaining
            if not report.bail_reason:
                report.bail_reason = "no_cycle"
            self.stats.add("misses", count)
            self.stats.add("recorded_ops", report.recorded_ops)
            self.stats.add("raw_ops", remaining)
            self.stats.add(f"bail_{report.bail_reason}")
            hopeless = report.bail_reason in ("clock_read", "return_value",
                                              "budget", "divergence")
            if report.bail_reason == "no_cycle":
                # Only structural: a call shorter than the period is not
                # evidence that a longer one would fail too.
                hopeless = len(samples) > self.max_samples
            if hopeless:
                self._hopeless[key] = report.bail_reason
        finally:
            memory.__class__ = PhysicalMemory
            clock.__class__ = Clock
            _TracedMemory._LOG = []

    @staticmethod
    def _find_candidate(sample: _Sample, buckets: Dict[tuple, List[int]],
                        samples: List[_Sample]) -> Optional[_Sample]:
        indices = buckets.get((len(sample.shadow), sample.checksum))
        if not indices:
            return None
        # Latest match first: the shortest (most profitable) period.
        for sample_index in reversed(indices):
            earlier = samples[sample_index]
            if (earlier.small == sample.small
                    and earlier.shadow == sample.shadow):
                return earlier
        return None

    def _verify(self, op: Callable[[], Any], candidate: _Sample,
                sample: _Sample, i: int, log: List[tuple],
                shadow: Dict[int, int], checksum: int,
                report: EngineReport):
        """Constructively verify a candidate cycle by re-running it.

        Returns ``(cycle, i, checksum, confirm_sample)``; ``cycle`` is
        ``None`` on divergence, and both ``cycle`` and
        ``confirm_sample`` are ``None`` when the op disqualified itself
        mid-verify (bail_reason is set on the report).
        """
        length = sample.index - candidate.index
        first = self._delta(candidate, sample)
        fingerprint = self._full_state()
        for _ in range(length):
            reads_before = _TracedClock._NOW_READS
            result = op()
            i += 1
            report.recorded_ops += 1
            disqualified = (result is not None
                            or _TracedClock._NOW_READS != reads_before)
            checksum = self._flatten(log, shadow, checksum)
            log.clear()
            if disqualified:
                report.bail_reason = ("return_value" if result is not None
                                      else "clock_read")
                return None, i, checksum, None
        confirm = self._snapshot(i, shadow, checksum)
        second = self._delta(sample, confirm)
        self.stats.add("integrity_checks")
        if (first is None or second is None or first != second
                or confirm.shadow != sample.shadow
                or confirm.small != sample.small
                or self._full_state() != fingerprint):
            self.stats.add("replay_divergence")
            return None, i, checksum, confirm
        return _Cycle(length=length, delta=second), i, checksum, confirm
