"""Simulation wall-clock speed measurement (simulated accesses / second).

The reproduction's results are produced by millions of simulated memory
accesses funnelled through pure-Python hot paths; how *fast* those paths
run bounds the workload scales and ablation sweeps we can afford.  This
module measures engine throughput on three representative workloads:

``fork_execv``
    LMbench's fork+execv on a Native system — page-table construction,
    COW, page zeroing: the ``PhysicalMemory`` bulk-path stress.
``mmap_storm``
    LMbench's mmap/touch/munmap loop — translation and fault churn: the
    TLB/cache fast-path stress.
``monitored_write_storm``
    Repeated uncached writes to a monitored word on a full Hypernel
    system — bus, snooper, MBM pipeline and ring-buffer stress.
``table1_runner_serial`` / ``table1_runner_parallel``
    A full Table 1 regeneration through :mod:`repro.tools.runner` at
    ``jobs=1`` vs ``jobs=4`` (cache disabled) — the experiment-level
    fan-out path.  Both must report identical simulated work; their
    wall-clock ratio is the parallel speedup ``scripts/check_simspeed.py``
    reports (and gates on hosts with >= 4 cores).
``table1_runner_warmstart``
    The same Table 1 regeneration with every cell restored from a
    shared post-boot snapshot (:mod:`repro.state`) instead of booted.
    The boot images are built untimed during setup, so the measured
    wall clock is the restore-and-run path; simulated accesses/cycles
    must be *identical* to ``table1_runner_serial`` (restore-then-run
    equals boot-then-run — the bit-identical replay contract), and the
    wall-clock gap vs serial is the boot-time saving
    ``scripts/check_simspeed.py`` reports.
``table1_runner_forkserver``
    The same Table 1 regeneration dispatched to the fork-server backend
    (:mod:`repro.tools.forkserver`) at ``jobs=4``: one persistent warm
    server per system configuration forks a copy-on-write worker per
    cell.  Simulated work must be identical to serial; the wall-clock
    ratio vs ``table1_runner_parallel`` is the fork-server speedup the
    gate checks on multi-core hosts.
``table1_runner_service``
    The same Table 1 regeneration submitted to a live ``repro serve``
    daemon (in-process thread, cache disabled) through
    :class:`repro.service.client.ReproServiceClient`.  The daemon boots
    untimed during setup; the measured wall clock is the full client
    round trip — JSON wire encoding, queueing, daemon-side dispatch
    onto the shared fork-server pool, streamed per-cell payloads — so
    the gap vs ``table1_runner_serial`` is the service dispatch
    overhead ``scripts/check_simspeed.py`` reports.  Simulated work
    must be identical to serial (the byte-identity contract on the
    wire).

Two kinds of numbers come out:

* ``accesses_per_sec`` (wall clock) — the figure of merit tracked by
  ``scripts/check_simspeed.py`` across PRs;
* ``accesses`` and ``sim_cycles`` (simulated) — **deterministic**: they
  must be bit-identical run-to-run and machine-to-machine, so the gate
  also uses them to prove perf work changed no simulated behaviour.

``python -m repro bench-simspeed`` runs everything and writes
``BENCH_simspeed.json``.
"""

from __future__ import annotations

import json
import platform as _platform_mod
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.config import PlatformConfig

#: JSON schema version for ``BENCH_simspeed.json``.
SCHEMA_VERSION = 1

#: Default wall-clock regression tolerance (fraction) for the gate.
DEFAULT_TOLERANCE = 0.20


def default_platform_config() -> PlatformConfig:
    """The small platform the speed workloads run on (128 MB DRAM).

    The MBM event ring is kept deliberately small (it never exceeds a
    depth of one on these single-writer workloads): with a small ring
    the free-running head/tail indices wrap quickly, so a steady-state
    monitored-write loop revisits an identical machine state every few
    iterations — which is what lets the macro-op memoizer collapse the
    loop (see ``repro.tools.macroops``).
    """
    return PlatformConfig(
        dram_bytes=128 * 1024 * 1024, secure_bytes=16 * 1024 * 1024,
        mbm_ring_entries=16,
    )


@dataclass
class WorkloadSpeed:
    """Measured throughput of one workload."""

    workload: str
    iterations: int
    wall_seconds: float
    accesses: int        #: simulated accesses performed (deterministic)
    sim_cycles: int      #: simulated cycles elapsed (deterministic)
    accesses_per_sec: float
    #: advisory details (macro-op memoizer counters etc.); never part
    #: of the regression gate's comparisons.
    extras: Dict = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return asdict(self)


def count_accesses(system) -> int:
    """Simulated memory accesses performed so far on ``system``.

    Counts CPU word/block accesses plus the DRAM-level traffic the cache
    hierarchy generated; the exact composition matters less than its
    determinism — the same workload must always produce the same count.

    Observability reads (:func:`repro.obs.collect_metrics`) never show
    up here: StatSet reads, gauge derivation and ``bus.peek`` generate
    no bus transactions, so a payload's access count is byte-identical
    whether or not metrics were collected alongside it.
    """
    cpu = system.cpu.stats
    bus = system.platform.bus.stats
    return (
        cpu.get("reads")
        + cpu.get("writes")
        + cpu.get("block_read_words")
        + cpu.get("block_write_words")
        + bus.get("reads")
        + bus.get("writes")
        + bus.get("line_fills")
        + bus.get("writebacks")
    )


# ----------------------------------------------------------------------
# Workload definitions
# ----------------------------------------------------------------------
def _build_lmbench(config: PlatformConfig):
    from repro.core.hypernel import build_native
    from repro.workloads.lmbench import LmbenchSuite

    system = build_native(platform_config=config)
    suite = LmbenchSuite(system)
    suite.setup()
    return system, suite


def _build_fork_execv(config: PlatformConfig) -> Tuple[object, Callable[[], None]]:
    system, suite = _build_lmbench(config)
    return system, suite.op_fork_execv


def _build_mmap_storm(config: PlatformConfig) -> Tuple[object, Callable[[], None]]:
    system, suite = _build_lmbench(config)
    return system, suite.op_mmap


def _build_monitored_write_storm(
    config: PlatformConfig,
) -> Tuple[object, Callable[[], None]]:
    from repro.core.hypernel import build_hypernel
    from repro.kernel.objects import CRED
    from repro.security import CredIntegrityMonitor

    system = build_hypernel(
        platform_config=config, monitors=[CredIntegrityMonitor()]
    )
    init = system.spawn_init()
    euid_kva = system.kernel.linear_map.kva(
        init.cred_pa + CRED.field("euid").byte_offset
    )
    write = system.kernel.cpu.write

    def op() -> None:
        write(euid_kva, 0)

    return system, op


def _build_table1_runner(jobs: int, backend: str) -> Callable:
    """Aggregate workload: one full Table 1 regeneration via the runner.

    Unlike the single-system workloads above, the work spans several
    simulated machines (some in worker processes), so the builder
    returns ``(None, op)`` where ``op`` itself reports the simulated
    ``(accesses, sim_cycles)`` summed over every cell payload.

    The backend is pinned per workload (serial/pool/forkserver) so each
    entry keeps measuring the same dispatch path as backends evolve;
    ``REPRO_BENCH_BACKEND`` still overrides inside ``run_cells`` —
    that's what lets CI exercise the pool fallback fleet-wide.
    """

    def build(config: PlatformConfig) -> Tuple[None, Callable[[], Tuple[int, int]]]:
        import copy

        from repro.analysis.tables import table1_cells
        from repro.tools.runner import run_cells

        def op() -> Tuple[int, int]:
            cells = table1_cells(
                platform_factory=lambda: copy.deepcopy(config)
            )
            payloads = run_cells(cells, jobs=jobs, cache=None,
                                 backend=backend)
            return (
                sum(p["accesses"] for p in payloads),
                sum(p["sim_cycles"] for p in payloads),
            )

        return None, op

    return build


def _build_table1_runner_warmstart(config: PlatformConfig):
    """Table 1 via the runner with warm-started (restored) cells.

    The shared boot snapshots are created here, in the untimed build
    step; ``op`` then measures only restore-plus-workload.  Snapshots
    go to a private temporary directory so the benchmark never reads a
    stale image from the user's cache.
    """
    import copy
    import tempfile

    from repro.analysis.tables import table1_cells
    from repro.tools.runner import attach_boot_snapshots, run_cells

    snapshot_dir = tempfile.mkdtemp(prefix="repro-warmstart-")
    factory = lambda: copy.deepcopy(config)  # noqa: E731
    attach_boot_snapshots(table1_cells(platform_factory=factory),
                          cache_dir=snapshot_dir)

    def op() -> Tuple[int, int]:
        cells = attach_boot_snapshots(
            table1_cells(platform_factory=factory), cache_dir=snapshot_dir
        )
        payloads = run_cells(cells, jobs=1, cache=None)
        return (
            sum(p["accesses"] for p in payloads),
            sum(p["sim_cycles"] for p in payloads),
        )

    return None, op


def _build_table1_runner_service(config: PlatformConfig):
    """Table 1 through a live service daemon (the dispatch-overhead probe).

    The daemon is booted untimed in the build step — an in-process
    thread with the result cache disabled, so every cell is computed on
    its warm pool.  ``op`` measures the complete client round trip and
    reports the summed deterministic tallies from the streamed
    payloads.  The builder attaches ``op.cleanup`` draining the daemon;
    :func:`run_workload` invokes it in a ``finally`` so a failed
    measurement never leaks the daemon thread or its pool children.
    """
    import copy
    import os
    import tempfile
    import threading

    from repro.analysis.tables import table1_cells
    from repro.service.client import ReproServiceClient
    from repro.service.daemon import DaemonConfig, ReproDaemon

    socket_path = os.path.join(
        tempfile.mkdtemp(prefix="repro-perf-service-"), "perf.sock"
    )
    daemon = ReproDaemon(
        DaemonConfig(socket_path=socket_path, jobs=2, no_cache=True)
    )
    ready = threading.Event()
    thread = threading.Thread(
        target=daemon.serve, kwargs={"ready": ready},
        name="perf-service-daemon", daemon=True,
    )
    thread.start()
    if not ready.wait(30):
        raise RuntimeError("perf service daemon failed to start")
    factory = lambda: copy.deepcopy(config)  # noqa: E731

    def op() -> Tuple[int, int]:
        cells = table1_cells(platform_factory=factory)
        with ReproServiceClient(socket_path=socket_path,
                                client="bench-simspeed") as client:
            payloads = client.run_cells(cells, label="table1_runner_service")
        return (
            sum(p["accesses"] for p in payloads),
            sum(p["sim_cycles"] for p in payloads),
        )

    def cleanup() -> None:
        daemon.request_shutdown()
        thread.join(timeout=30)

    op.cleanup = cleanup
    return None, op


#: name -> (builder, default iteration count).  Builders return either
#: ``(system, op)`` — accesses counted on the system — or ``(None, op)``
#: with ``op`` returning its own ``(accesses, sim_cycles)`` tallies.
WORKLOADS: Dict[str, Tuple[Callable, int]] = {
    "fork_execv": (_build_fork_execv, 100),
    "mmap_storm": (_build_mmap_storm, 250),
    "monitored_write_storm": (_build_monitored_write_storm, 3000),
    "table1_runner_serial": (_build_table1_runner(1, "serial"), 1),
    "table1_runner_parallel": (_build_table1_runner(4, "pool"), 1),
    "table1_runner_warmstart": (_build_table1_runner_warmstart, 1),
    "table1_runner_forkserver": (_build_table1_runner(4, "forkserver"), 1),
    "table1_runner_service": (_build_table1_runner_service, 1),
}

#: The workload pair whose wall-clock ratio is the runner speedup.
RUNNER_SERIAL_WORKLOAD = "table1_runner_serial"
RUNNER_PARALLEL_WORKLOAD = "table1_runner_parallel"
#: Warm-start twin of the serial runner workload: must report the same
#: simulated work; its wall-clock gap vs serial is the boot saving.
RUNNER_WARMSTART_WORKLOAD = "table1_runner_warmstart"
#: Fork-server twin of the parallel workload: same simulated work, but
#: dispatched to persistent warm servers that fork copy-on-write
#: workers.  Its wall-clock ratio vs the pool is the fork-server
#: speedup ``scripts/check_simspeed.py`` reports (and gates on hosts
#: with >= 4 cores when the backend is actually in effect).
RUNNER_FORKSERVER_WORKLOAD = "table1_runner_forkserver"
#: Daemon-backed twin of the serial workload: same simulated work, run
#: through a live ``repro serve`` daemon; its wall-clock gap vs serial
#: is the service dispatch overhead ``scripts/check_simspeed.py``
#: reports.
RUNNER_SERVICE_WORKLOAD = "table1_runner_service"


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------
def run_workload(
    name: str,
    iterations: Optional[int] = None,
    platform_config: Optional[PlatformConfig] = None,
    memoize: Optional[bool] = None,
) -> WorkloadSpeed:
    """Build the workload's system, run it and measure throughput.

    ``memoize`` routes the hot loop through the macro-op engine
    (``None`` = the ``REPRO_MACROOPS`` default).  Simulated accesses
    and cycles are bit-identical either way; only wall clock changes.
    """
    from repro.tools.macroops import MacroOpEngine, memoization_enabled

    try:
        builder, default_iters = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown simspeed workload {name!r}; "
            f"choose from {sorted(WORKLOADS)}"
        ) from None
    iterations = default_iters if iterations is None else iterations
    if iterations <= 0:
        raise ValueError(f"iterations must be positive, got {iterations}")
    memoize = memoization_enabled() if memoize is None else memoize
    system, op = builder(platform_config or default_platform_config())
    extras: Dict = {}
    try:
        if system is None:
            # Aggregate workload: op reports its own deterministic tallies.
            accesses = cycles = 0
            start = time.perf_counter()
            for _ in range(iterations):
                op_accesses, op_cycles = op()
                accesses += op_accesses
                cycles += op_cycles
            wall = time.perf_counter() - start
        else:
            engine = (MacroOpEngine(system, enabled=memoize)
                      if memoize else None)
            accesses_before = count_accesses(system)
            cycles_before = system.platform.clock.now
            start = time.perf_counter()
            if engine is not None:
                report = engine.run_repeated(name, op, iterations)
                extras = {
                    "memoized": True,
                    "replayed_ops": report.replayed_ops,
                    "recorded_ops": report.recorded_ops,
                    "raw_ops": report.raw_ops,
                    "cycle_length": report.cycle_length,
                    "bail_reason": report.bail_reason,
                }
            else:
                for _ in range(iterations):
                    op()
                extras = {"memoized": False}
            wall = time.perf_counter() - start
            accesses = count_accesses(system) - accesses_before
            cycles = system.platform.clock.now - cycles_before
    finally:
        # Workloads owning external machinery (the service daemon)
        # attach a finalizer; it must run even when measurement fails,
        # or the daemon thread and its pool children leak.
        finalizer = getattr(op, "cleanup", None)
        if finalizer is not None:
            finalizer()
    return WorkloadSpeed(
        workload=name,
        iterations=iterations,
        wall_seconds=round(wall, 6),
        accesses=accesses,
        sim_cycles=cycles,
        accesses_per_sec=round(accesses / wall, 1) if wall > 0 else 0.0,
        extras=extras,
    )


#: Suffix naming the memoizer-off twin of a workload in reports.
NOMEMO_SUFFIX = "_nomemo"
#: System workloads that get a twin entry measured with the macro-op
#: memoizer disabled.  The twins pin down both sides of the exactness
#: contract: their ``accesses``/``sim_cycles`` must equal the memoized
#: entry's bit for bit (``scripts/check_simspeed.py`` gates on it).
NOMEMO_WORKLOADS = ("fork_execv", "mmap_storm", "monitored_write_storm")


def _resolve_workload(name: str) -> Tuple[str, Optional[bool]]:
    """Map a report entry name to ``(base workload, memoize override)``."""
    if name.endswith(NOMEMO_SUFFIX):
        base = name[: -len(NOMEMO_SUFFIX)]
        if base in WORKLOADS:
            return base, False
    return name, None


def run_simspeed(
    iters_scale: float = 1.0,
    platform_config: Optional[PlatformConfig] = None,
    workloads: Optional[List[str]] = None,
    repeats: int = 1,
    memoize: Optional[bool] = None,
) -> List[WorkloadSpeed]:
    """Measure every (or the selected) workload.

    ``iters_scale`` scales the default iteration counts; note that the
    deterministic fields (``accesses``, ``sim_cycles``) are only
    comparable between runs using the same scale.

    ``repeats`` measures each workload several times (a fresh system
    each time) and keeps the best throughput — wall clock is noisy on a
    shared machine, the simulation is not.  The deterministic fields
    must agree across repeats; a mismatch raises ``RuntimeError``.

    The default sweep includes a ``*_nomemo`` twin for each workload in
    :data:`NOMEMO_WORKLOADS` — the identical run with the macro-op
    memoizer off.  ``memoize`` overrides the mode for the non-twin
    entries (``None`` = the ``REPRO_MACROOPS`` default); when the
    memoizer is globally disabled the twins are skipped as redundant.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be positive, got {repeats}")
    from repro.tools.macroops import memoization_enabled

    effective = memoization_enabled() if memoize is None else memoize
    if workloads is None:
        names = list(WORKLOADS)
        if effective:
            names += [base + NOMEMO_SUFFIX for base in NOMEMO_WORKLOADS]
    else:
        names = workloads
    results = []
    for name in names:
        base_name, memo_override = _resolve_workload(name)
        workload_memoize = memoize if memo_override is None else memo_override
        default_iters = WORKLOADS[base_name][1]
        iterations = max(1, int(round(default_iters * iters_scale)))
        best: Optional[WorkloadSpeed] = None
        for _ in range(repeats):
            run = run_workload(base_name, iterations=iterations,
                               platform_config=platform_config,
                               memoize=workload_memoize)
            if best is not None and (
                run.accesses != best.accesses
                or run.sim_cycles != best.sim_cycles
            ):
                raise RuntimeError(
                    f"{name}: repeated runs disagree on simulated work "
                    f"(accesses {best.accesses} vs {run.accesses}, cycles "
                    f"{best.sim_cycles} vs {run.sim_cycles}) — the engine "
                    f"is not deterministic"
                )
            if best is None or run.accesses_per_sec > best.accesses_per_sec:
                best = run
        best.workload = name
        results.append(best)
    return results


# ----------------------------------------------------------------------
# Reporting and the regression gate
# ----------------------------------------------------------------------
def report_as_dict(results: List[WorkloadSpeed],
                   iters_scale: float = 1.0) -> Dict:
    """The ``BENCH_simspeed.json`` document for a set of results."""
    return {
        "schema": SCHEMA_VERSION,
        "iters_scale": iters_scale,
        "python": _platform_mod.python_version(),
        "workloads": {r.workload: r.as_dict() for r in results},
    }


def format_report(results: List[WorkloadSpeed]) -> str:
    """Human-readable table of one measurement run."""
    lines = [
        f"{'workload':24s} {'iters':>7s} {'wall s':>8s} "
        f"{'accesses':>10s} {'sim cycles':>12s} {'acc/s':>12s}"
    ]
    for r in results:
        lines.append(
            f"{r.workload:24s} {r.iterations:7d} {r.wall_seconds:8.3f} "
            f"{r.accesses:10d} {r.sim_cycles:12d} {r.accesses_per_sec:12.0f}"
        )
    return "\n".join(lines)


def write_report(results: List[WorkloadSpeed], path: str,
                 iters_scale: float = 1.0) -> None:
    with open(path, "w") as handle:
        json.dump(report_as_dict(results, iters_scale), handle, indent=2)
        handle.write("\n")


def load_report(path: str) -> Dict:
    with open(path) as handle:
        return json.load(handle)


def compare_to_baseline(
    current: Dict,
    baseline: Dict,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Compare two report dicts; returns a list of failure descriptions.

    Two classes of failure:

    * **throughput regression** — a workload's ``accesses_per_sec``
      dropped more than ``tolerance`` below the baseline (machine
      sensitive, hence the generous default);
    * **determinism drift** — with matching iteration counts, the
      simulated ``accesses`` or ``sim_cycles`` differ at all.  These are
      exact invariants: perf work must not change simulated behaviour.

    The ``*_nomemo`` twins are exempt from the throughput floor (their
    exact fields are still checked): they exist to pin the memoizer's
    exactness contract, and their wall clock tracks the deliberately
    unoptimized path — noise there is not a regression in anything the
    project optimizes.
    """
    failures: List[str] = []
    baseline_workloads = baseline.get("workloads", {})
    for name, entry in current.get("workloads", {}).items():
        base = baseline_workloads.get(name)
        if base is None:
            continue
        floor = base["accesses_per_sec"] * (1.0 - tolerance)
        if (entry["accesses_per_sec"] < floor
                and not name.endswith(NOMEMO_SUFFIX)):
            failures.append(
                f"{name}: throughput {entry['accesses_per_sec']:.0f} acc/s "
                f"is below the allowed floor {floor:.0f} "
                f"(baseline {base['accesses_per_sec']:.0f}, "
                f"tolerance {tolerance:.0%})"
            )
        if entry["iterations"] == base["iterations"]:
            for field in ("accesses", "sim_cycles"):
                if entry[field] != base[field]:
                    failures.append(
                        f"{name}: simulated {field} changed "
                        f"({base[field]} -> {entry[field]}) — the engine's "
                        f"behaviour is no longer deterministic vs baseline"
                    )
    return failures
