"""Parallel experiment runner: (environment × workload) cells.

``run_table1``/``run_figure6``/``run_table2`` each iterate over
independent *environments* (the three system configurations, or the two
monitoring granularities), building a fresh simulated machine for each
one.  The simulator is deterministic and seeded (DESIGN.md §5), so
those iterations are embarrassingly parallel and their results are
safely cacheable by input hash.  This module provides the shared
machinery:

:class:`Cell`
    One independent unit of experiment work: an executor ``kind``, the
    ``environment`` it builds (system name or granularity), a workload
    label, a JSON-ish ``spec`` (op list, scale, warmup/iterations) and
    an optional :class:`~repro.config.PlatformConfig`.  Cells must be
    picklable; they are shipped whole to worker processes.

:func:`run_cells`
    Fans cells out over one of three interchangeable backends — the
    fork server (persistent warm workers, copy-on-write machine
    images; see :mod:`repro.tools.forkserver`), a
    ``ProcessPoolExecutor``, or in-process serial execution — with a
    per-job timeout, one retry on worker failure, and graceful
    degradation (``forkserver`` → ``pool`` → ``serial``) on platforms
    that cannot support the faster path.  Results come back in cell
    order, so merging is deterministic and the merged tables are
    byte-identical across backends.

:class:`CellCache`
    A content-addressed on-disk cache (default ``benchmarks/.cache/``).
    Keys hash the cell parameters together with every
    :class:`~repro.config.CostModel` and
    :class:`~repro.kernel.kernel.OpCosts` constant and the package
    version, so edits that can change cycle accounting invalidate
    cached results automatically.

The executor for a cell is resolved from :data:`KIND_EXECUTORS` by
dotted path at execution time (in the worker process), which keeps this
module import-light and works under both ``fork`` and ``spawn`` start
methods.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import signal
import time
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import __version__
from repro.config import PlatformConfig

#: Cache-key schema version; bump when the key recipe or payload
#: layout changes so stale entries can never be misread.
CACHE_SCHEMA = 1

#: Default per-job timeout (seconds).  Generous: a paper-scale cell is
#: minutes of work; the timeout exists to surface a hung worker instead
#: of stalling the pool forever.
DEFAULT_TIMEOUT = 600.0

#: cell kind -> "module:function" executed (in the worker) to run it.
KIND_EXECUTORS: Dict[str, str] = {
    "table1": "repro.analysis.tables:execute_cell",
    "figure6": "repro.analysis.figures:execute_cell",
    "table2": "repro.analysis.monitoring:execute_cell",
    # Test-only workload used by the runner's own test suite: echoes,
    # fails, fails-once (marker file) or sleeps on demand.
    "selftest": "repro.tools.runner:execute_selftest_cell",
}

#: cell kind -> "module:function" returning ``(system_name, build_kwargs)``
#: for the cell's environment.  Used by :func:`attach_boot_snapshots` to
#: key and build shared post-boot images (repro.state warm starts).
KIND_BUILDERS: Dict[str, str] = {
    "table1": "repro.analysis.tables:cell_build_args",
    "figure6": "repro.analysis.figures:cell_build_args",
    "table2": "repro.analysis.monitoring:cell_build_args",
}

#: cell kind -> "module:function" building the pristine machine for a
#: cell's environment (``cell_system``).  A fork server constructs this
#: prototype once and forks a copy-on-write child per cell.
KIND_PROTOTYPES: Dict[str, str] = {
    "table1": "repro.analysis.tables:cell_system",
    "figure6": "repro.analysis.figures:cell_system",
    "table2": "repro.analysis.monitoring:cell_system",
}

#: cell kind -> "module:function" running a cell's workload body on an
#: already-built system (``execute_cell_on``).  The fork-server child
#: entry point; the serial/pool paths reach the same body through
#: :data:`KIND_EXECUTORS`.
KIND_ON_SYSTEM: Dict[str, str] = {
    "table1": "repro.analysis.tables:execute_cell_on",
    "figure6": "repro.analysis.figures:execute_cell_on",
    "table2": "repro.analysis.monitoring:execute_cell_on",
}

#: Valid values for ``run_cells(backend=...)`` and ``REPRO_BENCH_BACKEND``.
BACKENDS = ("auto", "fabric", "forkserver", "pool", "serial")


def validate_backend(value: str, source: str = "backend") -> str:
    """Normalize a backend name, raising a clear error on nonsense.

    Case and surrounding whitespace are forgiven (``"Pool"`` from a CI
    matrix means ``pool``); anything else raises :class:`ValueError`
    naming both the offending ``source`` (the argument or the
    ``REPRO_BENCH_BACKEND`` environment variable) and every valid
    backend.  An unrecognized value must fail loudly here — silently
    degrading to a different backend would misattribute every benchmark
    number produced under the typo.
    """
    normalized = str(value).strip().lower()
    if normalized not in BACKENDS:
        raise ValueError(
            f"{source}: unknown backend {value!r}; valid backends are "
            f"{', '.join(BACKENDS)}"
        )
    return normalized


def resolve_hook(target: str) -> Callable:
    """Resolve a ``"module:function"`` registry entry to the callable."""
    module_name, _, func_name = target.partition(":")
    return getattr(import_module(module_name), func_name)


class RunnerError(RuntimeError):
    """A cell could not be executed (after its retry) or timed out."""

    def __init__(self, message: str, cell: Optional["Cell"] = None):
        super().__init__(message)
        self.cell = cell


@dataclass
class Cell:
    """One independent experiment job.

    ``spec`` should stay JSON-serializable for the cell to be cacheable;
    non-JSON values (e.g. caller-supplied workload objects) are allowed
    but silently make the cell uncacheable.
    """

    kind: str
    environment: str
    workload: str
    spec: Dict[str, Any] = field(default_factory=dict)
    platform_config: Optional[PlatformConfig] = None
    cacheable: bool = True
    #: path to a post-boot snapshot to warm-start from (set by
    #: :func:`attach_boot_snapshots`).  Deliberately *not* part of the
    #: cache key — the snapshot's content hash goes into
    #: ``spec["boot_snapshot"]`` instead, so a cached result is keyed by
    #: what the image contains, never by where it happens to live.
    snapshot_path: Optional[str] = None

    def label(self) -> str:
        return f"{self.kind}:{self.environment}:{self.workload}"


# ----------------------------------------------------------------------
# Cell execution
# ----------------------------------------------------------------------
def _resolve_executor(kind: str) -> Callable[[Cell], Dict[str, Any]]:
    try:
        target = KIND_EXECUTORS[kind]
    except KeyError:
        raise RunnerError(
            f"unknown cell kind {kind!r}; choose from {sorted(KIND_EXECUTORS)}"
        ) from None
    module_name, _, func_name = target.partition(":")
    return getattr(import_module(module_name), func_name)


def execute_cell(cell: Cell) -> Dict[str, Any]:
    """Run one cell to completion and return its payload dict.

    This is the function shipped to worker processes; it must stay
    module-level (picklable by qualified name).
    """
    return _resolve_executor(cell.kind)(cell)


def execute_selftest_cell(cell: Cell) -> Dict[str, Any]:
    """Executor for the test-only ``selftest`` kind."""
    mode = cell.spec.get("mode", "echo")
    if mode == "echo":
        return {"value": cell.spec.get("value"), "accesses": 0, "sim_cycles": 0}
    if mode == "fail":
        raise RuntimeError(f"injected failure for {cell.label()}")
    if mode == "fail_until_marker":
        marker = pathlib.Path(cell.spec["marker"])
        if not marker.exists():
            marker.write_text("first attempt failed\n")
            raise RuntimeError(f"injected first-attempt failure for {cell.label()}")
        return {"value": "ok after retry", "accesses": 0, "sim_cycles": 0}
    if mode == "sleep":
        time.sleep(float(cell.spec.get("seconds", 1.0)))
        return {"value": "slept", "accesses": 0, "sim_cycles": 0}
    if mode == "kill_until_marker":
        # Process-backend fault injection: SIGKILL the worker mid-cell
        # on the first attempt (no exception, no cleanup — the worker
        # just vanishes).  Only meaningful under forkserver/pool; in a
        # serial run this would kill the caller.
        marker = pathlib.Path(cell.spec["marker"])
        if not marker.exists():
            marker.write_text("first attempt killed\n")
            os.kill(os.getpid(), signal.SIGKILL)
        return {"value": "ok after respawn", "accesses": 0, "sim_cycles": 0}
    raise RunnerError(f"unknown selftest mode {mode!r}", cell)


# ----------------------------------------------------------------------
# Content-addressed result cache
# ----------------------------------------------------------------------
def default_cache_dir() -> pathlib.Path:
    """``REPRO_CACHE_DIR`` or ``benchmarks/.cache`` under the cwd."""
    return pathlib.Path(os.environ.get("REPRO_CACHE_DIR", "benchmarks/.cache"))


def cost_fingerprint(platform_config: Optional[PlatformConfig]) -> Dict[str, Any]:
    """Every constant that can change cycle accounting.

    The platform config embeds its :class:`CostModel`; kernel base
    compute costs come from :class:`OpCosts` defaults (cells always
    build kernels with the default :class:`KernelConfig`).
    """
    from repro.kernel.kernel import OpCosts

    config = platform_config if platform_config is not None else PlatformConfig()
    return {
        "platform": dataclasses.asdict(config),
        "op_costs": dataclasses.asdict(OpCosts()),
    }


def cache_key(cell: Cell) -> Optional[str]:
    """Content hash for a cell, or ``None`` if it cannot be cached."""
    if not cell.cacheable:
        return None
    from repro.tools.macroops import memoization_enabled

    document = {
        "schema": CACHE_SCHEMA,
        "version": __version__,
        "kind": cell.kind,
        "environment": cell.environment,
        "workload": cell.workload,
        "spec": cell.spec,
        "costs": cost_fingerprint(cell.platform_config),
        # Payload rows/accesses/cycles are identical either way, but
        # the embedded metrics carry the memoizer's counters, so the
        # two modes must not share cache entries.
        "macroops": memoization_enabled(),
    }
    try:
        blob = json.dumps(document, sort_keys=True)
    except (TypeError, ValueError):
        return None  # non-JSON spec (e.g. injected workload objects)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class CellCache:
    """On-disk JSON store of cell payloads, one file per content hash."""

    def __init__(self, directory: os.PathLike | str):
        self.directory = pathlib.Path(directory)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.json"

    def lookup(self, cell: Cell) -> Optional[Dict[str, Any]]:
        key = cache_key(cell)
        if key is None:
            return None
        path = self._path(key)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            self.misses += 1
            return None
        if entry.get("schema") != CACHE_SCHEMA or "payload" not in entry:
            self.misses += 1
            return None
        self.hits += 1
        return entry["payload"]

    def store(self, cell: Cell, payload: Dict[str, Any]) -> bool:
        key = cache_key(cell)
        if key is None:
            return False
        try:
            blob = json.dumps(
                {"schema": CACHE_SCHEMA, "cell": cell.label(), "payload": payload},
                indent=2,
            )
        except (TypeError, ValueError):
            return False  # non-JSON payload: skip caching, don't fail the run
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = self._path(key).with_suffix(".tmp")
        tmp.write_text(blob + "\n")
        tmp.replace(self._path(key))  # atomic: a reader never sees half a file
        self.stores += 1
        return True


# ----------------------------------------------------------------------
# Cache maintenance (python -m repro cache {info,prune})
# ----------------------------------------------------------------------
def cache_contents(
    directory: Optional[os.PathLike | str] = None,
) -> Dict[str, Any]:
    """Inventory of the on-disk cache: result entries and boot snapshots.

    Returns ``{"directory", "entries", "total_bytes"}`` where each entry
    is ``{"path", "kind", "bytes", "mtime"}`` (kind is ``result`` for
    ``*.json`` payloads, ``snapshot`` for ``snapshots/*.snap`` images).
    """
    base = (pathlib.Path(directory) if directory is not None
            else default_cache_dir())
    entries: List[Dict[str, Any]] = []
    for path in sorted(base.glob("*.json")) + sorted(
        (base / "snapshots").glob("*.snap")
    ):
        try:
            stat = path.stat()
        except OSError:
            continue  # raced with a concurrent prune
        entries.append({
            "path": str(path),
            "kind": "snapshot" if path.suffix == ".snap" else "result",
            "bytes": stat.st_size,
            "mtime": stat.st_mtime,
        })
    return {
        "directory": str(base),
        "entries": entries,
        "total_bytes": sum(entry["bytes"] for entry in entries),
    }


def prune_cache(
    directory: Optional[os.PathLike | str] = None,
    max_age_days: Optional[float] = None,
    max_bytes: Optional[int] = None,
    now: Optional[float] = None,
) -> List[str]:
    """Delete stale cache entries; returns the paths removed.

    Entries older than ``max_age_days`` go first; then, if the survivors
    still exceed ``max_bytes``, the oldest are evicted until the total
    fits.  Content-addressing makes eviction always safe — a pruned
    entry is simply recomputed (or the snapshot re-booted) on next use.
    """
    inventory = cache_contents(directory)
    cutoff = (time.time() if now is None else now)
    doomed: List[Dict[str, Any]] = []
    kept: List[Dict[str, Any]] = []
    for entry in inventory["entries"]:
        if (max_age_days is not None
                and cutoff - entry["mtime"] > max_age_days * 86400.0):
            doomed.append(entry)
        else:
            kept.append(entry)
    if max_bytes is not None:
        kept.sort(key=lambda entry: entry["mtime"])  # oldest first
        total = sum(entry["bytes"] for entry in kept)
        while kept and total > max_bytes:
            evicted = kept.pop(0)
            total -= evicted["bytes"]
            doomed.append(evicted)
    for entry in doomed:
        try:
            pathlib.Path(entry["path"]).unlink()
        except OSError:
            pass
    return [entry["path"] for entry in doomed]


# ----------------------------------------------------------------------
# Warm-start boot snapshots
# ----------------------------------------------------------------------
def attach_boot_snapshots(
    cells: List[Cell],
    cache_dir: Optional[os.PathLike | str] = None,
) -> List[Cell]:
    """Give each cell a shared post-boot snapshot for its environment.

    Cells of the same kind and environment (same build arguments and
    cost fingerprint) share one content-addressed boot image under
    ``<cache_dir>/snapshots/``; each is built at most once per call —
    and at most once *ever* per configuration, since existing images
    are reused.  The executor then restores instead of booting, and the
    image's content hash is folded into ``spec["boot_snapshot"]`` so
    warm results get distinct cache keys from cold ones.

    Restore-then-run is bit-identical to boot-then-run (the repro.state
    contract), so merged tables stay byte-identical either way.
    """
    # Imported lazily: repro.state pulls in the builders, and keeping
    # this module import-light matters for spawn-start worker processes.
    from repro import state
    from repro.core.hypernel import build_system

    directory = (pathlib.Path(cache_dir) if cache_dir is not None
                 else default_cache_dir())
    built: Dict[str, Tuple[str, str]] = {}
    for cell in cells:
        if cell.kind not in KIND_BUILDERS:
            continue
        module_name, _, func_name = KIND_BUILDERS[cell.kind].partition(":")
        build_args = getattr(import_module(module_name), func_name)
        name, kwargs = build_args(cell)
        key = state.boot_image_key(name, kwargs, cell.platform_config)
        if key not in built:
            path, content_hash = state.ensure_boot_snapshot(
                lambda **kw: build_system(name, **kw),
                name,
                kwargs,
                cell.platform_config,
                directory,
            )
            built[key] = (str(path), content_hash)
        path_str, content_hash = built[key]
        cell.snapshot_path = path_str
        cell.spec = dict(cell.spec, boot_snapshot=content_hash)
    return cells


# ----------------------------------------------------------------------
# Fan-out
# ----------------------------------------------------------------------
def _default_executor_factory(jobs: int):
    from concurrent.futures import ProcessPoolExecutor

    return ProcessPoolExecutor(max_workers=jobs)


#: Minimum number of *uncached* cells before ``auto`` considers a
#: parallel backend.  Below this, process spin-up dominates: the whole
#: table1 grid is 3 cells and ran *slower* under the 4-job pool (1.53s)
#: than serial (1.24s).  Explicit ``backend=``/``REPRO_BENCH_BACKEND``
#: choices are unaffected — the threshold only shapes ``auto``.
AUTO_MIN_CELLS = 8


def _resolve_backend(backend: str, jobs: int, executor_factory,
                     pending: Optional[int] = None) -> str:
    """Pick the concrete backend: env override > argument > heuristic.

    ``REPRO_BENCH_BACKEND`` wins over the argument (CI uses it to force
    the pool fallback fleet-wide without threading a flag through every
    entry point).  ``auto`` resolves to serial when fewer than
    :data:`AUTO_MIN_CELLS` cells actually need computing (``pending``,
    when the caller knows it), else to the fork server when the
    platform can fork and ``jobs > 1``, else to the pool — which itself
    degrades to serial below (unchanged legacy behavior).  A caller
    supplying ``executor_factory`` is handed the pool path: the factory
    *is* pool machinery, and tests use it to observe dispatch.
    """
    forced = os.environ.get("REPRO_BENCH_BACKEND")
    if forced:
        choice = validate_backend(forced, source="REPRO_BENCH_BACKEND")
    else:
        choice = validate_backend(backend)
    if choice == "auto":
        if pending is not None and pending < AUTO_MIN_CELLS:
            return "serial"
        from repro.tools import forkserver

        choice = ("forkserver"
                  if jobs > 1 and forkserver.fork_available() else "pool")
    if choice in ("forkserver", "fabric") and executor_factory is not None:
        # The factory *is* pool machinery; tests use it to observe
        # dispatch, which neither the fork server nor a shard daemon
        # on the far side of a socket can honour.
        choice = "pool"
    return choice


def _run_serial(cell: Cell) -> Dict[str, Any]:
    """Execute in-process with the same one-retry policy as the pool."""
    try:
        return execute_cell(cell)
    except RunnerError:
        raise
    except Exception as first:
        try:
            return execute_cell(cell)
        except Exception as second:
            raise RunnerError(
                f"cell {cell.label()} failed after retry: {second!r} "
                f"(first attempt: {first!r})",
                cell,
            ) from second


def run_cells(
    cells: List[Cell],
    jobs: int = 1,
    cache: Optional[CellCache] = None,
    timeout: Optional[float] = DEFAULT_TIMEOUT,
    executor_factory: Optional[Callable[[int], Any]] = None,
    backend: str = "auto",
    integrity: str = "ignore",
    waive: Tuple[str, ...] = (),
    shards: int = 2,
) -> List[Dict[str, Any]]:
    """Execute every cell and return payloads in cell order.

    * ``backend`` selects how uncached cells run: ``fabric`` (a shard
      coordinator fanning the batch across ``shards`` repro daemons —
      see :mod:`repro.service.fabric`; attaches to
      ``REPRO_FABRIC_ENDPOINTS`` or a running ``repro fabric start``
      ledger, else spawns transient local shards), ``forkserver``
      (persistent warm server per environment, one copy-on-write child
      per cell — see :mod:`repro.tools.forkserver`), ``pool``
      (``executor_factory(jobs)``, default ``ProcessPoolExecutor``),
      ``serial`` (in-process), or ``auto`` (serial when fewer than
      :data:`AUTO_MIN_CELLS` uncached cells remain — tiny grids lose
      more to process spin-up than they gain from fan-out — else fork
      server when the platform can fork and ``jobs > 1``, else pool).
      The
      ``REPRO_BENCH_BACKEND`` environment variable overrides the
      argument.  Each step degrades gracefully: no reachable fabric
      shard → fork server, no ``fork`` → pool, no pool (or ``jobs=1``,
      or a single pending cell) → serial.
      The per-cell workload body is identical on every backend, so
      merged results are byte-identical.
    * A cell whose worker raises (or whose pool breaks) is retried once
      — in-process for the pool, from the pristine parent image for the
      fork server; a second failure raises :class:`RunnerError` naming
      the cell.  A job exceeding ``timeout`` seconds raises
      :class:`RunnerError` immediately — a hung worker cannot be
      retried without leaking it.
    * With a ``cache``, cacheable cells are looked up first and
      computed payloads are stored back; a fully warm cache dispatches
      zero jobs (no backend process is ever started).
    * ``integrity="enforce"`` checks the ``"metrics"`` block every cell
      executor embeds in its payload (repro.obs) and raises
      :class:`~repro.errors.IntegrityError` if the monitoring pipeline
      lost events in any cell — *including cached payloads*, so a lossy
      result can never hide in the cache.  ``waive`` names checks
      (``"mbm_fifo.overrun"``-style) to accept.  The default
      ``"ignore"`` keeps enforcement opt-in.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be positive, got {jobs}")
    if integrity not in ("ignore", "enforce"):
        raise ValueError(
            f"integrity must be 'ignore' or 'enforce', got {integrity!r}"
        )

    def _finish(
        payloads: List[Optional[Dict[str, Any]]]
    ) -> List[Dict[str, Any]]:
        if integrity == "enforce":
            from repro.obs.metrics import verify_payload_integrity

            verify_payload_integrity(
                [cell.label() for cell in cells], payloads, waive=waive
            )
        return payloads  # type: ignore[return-value]

    results: List[Optional[Dict[str, Any]]] = [None] * len(cells)
    pending: List[int] = []
    for index, cell in enumerate(cells):
        payload = cache.lookup(cell) if cache is not None else None
        if payload is not None:
            results[index] = payload
        else:
            pending.append(index)

    # Resolve after the cache pass so ``auto`` sees the true amount of
    # work left (a warm cache or a tiny grid should never pay process
    # spin-up).  Resolving on the empty list still validates the name.
    resolved = _resolve_backend(backend, jobs, executor_factory,
                                pending=len(pending))

    if pending:
        if resolved == "fabric":
            from repro.service import fabric

            try:
                payloads = fabric.run_pending(
                    cells, pending, jobs=jobs, timeout=timeout,
                    shards=shards, integrity=integrity, waive=waive,
                )
            except fabric.FabricUnavailable:
                resolved = "forkserver"  # no shard came up: degrade
            else:
                for index in pending:
                    results[index] = payloads[index]
                if cache is not None:
                    for index in pending:
                        cache.store(cells[index], results[index])
                return _finish(results)

        if resolved == "forkserver":
            from repro.tools import forkserver

            try:
                payloads = forkserver.run_pending(cells, pending, jobs, timeout)
            except forkserver.ForkServerUnavailable:
                resolved = "pool"  # platform cannot fork: degrade
            else:
                for index in pending:
                    results[index] = payloads[index]
                if cache is not None:
                    for index in pending:
                        cache.store(cells[index], results[index])
                return _finish(results)

        pool = None
        if resolved == "pool" and jobs > 1 and len(pending) > 1:
            factory = executor_factory or _default_executor_factory
            try:
                pool = factory(min(jobs, len(pending)))
            except (ImportError, NotImplementedError, OSError, PermissionError):
                pool = None  # e.g. sandboxed host without fork: fall back
        if pool is None:
            for index in pending:
                results[index] = _run_serial(cells[index])
        else:
            futures = [(index, pool.submit(execute_cell, cells[index]))
                       for index in pending]
            try:
                for index, future in futures:
                    cell = cells[index]
                    try:
                        results[index] = future.result(timeout=timeout)
                    except _FutureTimeout:
                        raise RunnerError(
                            f"cell {cell.label()} timed out after {timeout:.0f}s",
                            cell,
                        ) from None
                    except RunnerError:
                        raise
                    except Exception as first:
                        # One retry, in-process: also covers a crashed
                        # worker (BrokenProcessPool) without re-raising
                        # into a possibly-broken pool.
                        try:
                            results[index] = execute_cell(cell)
                        except Exception as second:
                            raise RunnerError(
                                f"cell {cell.label()} failed after retry: "
                                f"{second!r} (first attempt: {first!r})",
                                cell,
                            ) from second
            except BaseException:
                # Don't wait on stuck/remaining workers; just detach.
                pool.shutdown(wait=False, cancel_futures=True)
                raise
            pool.shutdown(wait=True)
        if cache is not None:
            for index in pending:
                cache.store(cells[index], results[index])

    return _finish(results)
