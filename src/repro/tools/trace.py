"""Bus tracing: record filtered memory traffic with timestamps.

A :class:`BusTracer` is a logic-analyzer-style snooper: attach it to a
platform's bus, optionally filter by physical range / transaction kind /
initiator, and it records timestamped transactions into a bounded
buffer.  Used for debugging monitors and for the examples' narratives
("show me every write the exploit made").

::

    tracer = BusTracer(platform, base=cred_pa, size=CRED.size_bytes)
    tracer.start()
    ... run workload ...
    tracer.stop()
    print(tracer.to_text())
"""

from __future__ import annotations

from collections import Counter
from dataclasses import asdict, dataclass
from typing import Iterable, List, Optional

from repro.config import PAGE_BYTES, WORD_BYTES
from repro.hw.bus import BusTransaction, TxnKind
from repro.hw.platform import Platform
from repro.utils.bitops import align_down


@dataclass(frozen=True)
class TraceRecord:
    """One captured transaction, with its capture time."""

    cycle: int
    kind: str
    paddr: int
    value: Optional[int]
    nwords: int
    initiator: str

    def as_dict(self) -> dict:
        """JSON-ready form, one record per JSONL line (repro.obs.export)."""
        return asdict(self)

    def covers(self, paddr: int) -> bool:
        """Whether this transaction's span includes the word at ``paddr``.

        Single-word records cover exactly their own address; line and
        block transfers cover ``nwords`` consecutive words.
        """
        return self.paddr <= paddr < self.paddr + self.nwords * WORD_BYTES

    def __str__(self) -> str:
        value = "-" if self.value is None else f"{self.value:#x}"
        return (f"@{self.cycle:>12d}  {self.kind:<11s} {self.paddr:#014x} "
                f"x{self.nwords:<4d} {value:<18s} [{self.initiator}]")


class BusTracer:
    """Bounded, filtered recorder of bus transactions."""

    def __init__(
        self,
        platform: Platform,
        base: int = 0,
        size: Optional[int] = None,
        kinds: Optional[Iterable[TxnKind]] = None,
        initiators: Optional[Iterable[str]] = None,
        capacity: int = 10_000,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.platform = platform
        self.base = base
        self.limit = base + size if size is not None else None
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.initiators = frozenset(initiators) if initiators is not None else None
        self.capacity = capacity
        self.records: List[TraceRecord] = []
        self.dropped = 0
        self._running = False

    # ------------------------------------------------------------------
    def start(self) -> "BusTracer":
        if not self._running:
            self.platform.bus.attach_snooper(self._snoop)
            self._running = True
        return self

    def stop(self) -> "BusTracer":
        if self._running:
            self.platform.bus.detach_snooper(self._snoop)
            self._running = False
        return self

    def __enter__(self) -> "BusTracer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    # ------------------------------------------------------------------
    def _matches(self, txn: BusTransaction) -> bool:
        if self.kinds is not None and txn.kind not in self.kinds:
            return False
        if self.initiators is not None and txn.initiator not in self.initiators:
            return False
        if self.limit is not None:
            end = txn.paddr + txn.nwords * WORD_BYTES
            if txn.paddr >= self.limit or end <= self.base:
                return False
        return True

    def _snoop(self, txn: BusTransaction) -> None:
        if not self._matches(txn):
            return
        if len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(
            TraceRecord(
                cycle=self.platform.clock.now,
                kind=txn.kind.value,
                paddr=txn.paddr,
                value=txn.value,
                nwords=txn.nwords,
                initiator=txn.initiator,
            )
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def to_text(self, last: Optional[int] = None) -> str:
        """The trace as text, optionally only the ``last`` records.

        Over-capacity transactions are counted, not recorded; the text
        ends with a ``(+N dropped)`` suffix when any were lost.
        """
        records = self.records if last is None else self.records[-last:]
        lines = [str(record) for record in records]
        if self.dropped:
            lines.append(f"(+{self.dropped} dropped)")
        return "\n".join(lines) if lines else "(no transactions captured)"

    def summary(self) -> dict:
        """Aggregate statistics over the captured trace.

        Page buckets are span-aware: a multi-word transfer counts in
        every page its ``nwords`` span touches, not just the first.
        """
        kinds = Counter(record.kind for record in self.records)
        initiators = Counter(record.initiator for record in self.records)
        pages: Counter = Counter()
        for record in self.records:
            first = align_down(record.paddr, PAGE_BYTES)
            last = align_down(
                record.paddr + (record.nwords - 1) * WORD_BYTES, PAGE_BYTES
            )
            for page in range(first, last + PAGE_BYTES, PAGE_BYTES):
                pages[page] += 1
        return {
            "records": len(self.records),
            "dropped": self.dropped,
            "by_kind": dict(kinds),
            "by_initiator": dict(initiators),
            "hot_pages": [f"{page:#x}" for page, _ in pages.most_common(5)],
        }

    #: Write-like transaction kinds (mirrors BusTransaction.is_write_like).
    _WRITE_KINDS = frozenset(
        kind.value
        for kind in (TxnKind.WRITE, TxnKind.BLOCK_WRITE, TxnKind.WRITEBACK)
    )

    def writes_to(self, paddr: int) -> List[TraceRecord]:
        """All captured write-like transactions covering the word at
        ``paddr``: exact word writes plus multi-word ``BLOCK_WRITE`` /
        ``WRITEBACK`` transfers whose ``nwords`` span includes it
        (the same overlap rule :meth:`_matches` applies to filters)."""
        return [
            record
            for record in self.records
            if record.kind in self._WRITE_KINDS and record.covers(paddr)
        ]

    def __len__(self) -> int:
        return len(self.records)
