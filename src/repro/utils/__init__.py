"""Shared low-level helpers: bit manipulation, statistics, event hooks."""

from repro.utils.bitops import (
    align_down,
    align_up,
    bit,
    bits,
    extract,
    insert,
    is_aligned,
    mask,
    sign_extend,
)
from repro.utils.events import EventHook
from repro.utils.stats import StatSet

__all__ = [
    "EventHook",
    "StatSet",
    "align_down",
    "align_up",
    "bit",
    "bits",
    "extract",
    "insert",
    "is_aligned",
    "mask",
    "sign_extend",
]
