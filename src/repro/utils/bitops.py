"""Bit-manipulation helpers used across the hardware models.

All functions operate on arbitrary-precision Python integers but are
written against the fixed 64-bit word size of the simulated machine where
relevant.  Bit positions are numbered LSB = 0, matching the ARM ARM.
"""

from __future__ import annotations

from repro.errors import AlignmentError


def bit(position: int) -> int:
    """Return an integer with only ``position`` set (``1 << position``)."""
    if position < 0:
        raise ValueError(f"bit position must be non-negative, got {position}")
    return 1 << position


def mask(width: int) -> int:
    """Return a mask of ``width`` ones in the low bits."""
    if width < 0:
        raise ValueError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def bits(hi: int, lo: int) -> int:
    """Return a mask covering bit positions ``hi`` down to ``lo`` inclusive.

    Mirrors the ARM ARM's ``bits(hi:lo)`` field notation.
    """
    if hi < lo:
        raise ValueError(f"bits({hi}, {lo}): hi must be >= lo")
    return mask(hi - lo + 1) << lo


def extract(value: int, hi: int, lo: int) -> int:
    """Extract the field ``value[hi:lo]`` (inclusive), right-aligned."""
    if hi < lo:
        raise ValueError(f"extract({hi}, {lo}): hi must be >= lo")
    return (value >> lo) & mask(hi - lo + 1)


def insert(value: int, hi: int, lo: int, field: int) -> int:
    """Return ``value`` with bits ``hi:lo`` replaced by ``field``.

    ``field`` must fit in the target width.
    """
    width = hi - lo + 1
    if field < 0 or field > mask(width):
        raise ValueError(f"field {field:#x} does not fit in bits({hi}, {lo})")
    return (value & ~bits(hi, lo)) | (field << lo)


def sign_extend(value: int, width: int) -> int:
    """Sign-extend ``value`` of ``width`` bits to a Python integer."""
    value &= mask(width)
    if value & bit(width - 1):
        return value - (1 << width)
    return value


def is_aligned(value: int, alignment: int) -> bool:
    """True if ``value`` is a multiple of ``alignment`` (a power of two)."""
    return (value & (alignment - 1)) == 0


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment`` (power of two)."""
    return value & ~(alignment - 1)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment`` (power of two)."""
    return (value + alignment - 1) & ~(alignment - 1)


def require_aligned(value: int, alignment: int, what: str = "address") -> None:
    """Raise :class:`AlignmentError` unless ``value`` is aligned."""
    if not is_aligned(value, alignment):
        raise AlignmentError(
            f"{what} {value:#x} is not {alignment}-byte aligned"
        )
