"""A minimal synchronous publish/subscribe hook.

Hardware models expose :class:`EventHook` instances (e.g. the memory bus
publishes each transaction; the MBM publishes each detection) so that
monitors, statistics collectors and tests can observe behaviour without
the models knowing about their observers.

Dispatch is synchronous and in subscription order, which matches the
"combinational fan-out" nature of the signals being modelled.
"""

from __future__ import annotations

from typing import Any, Callable, List


class EventHook:
    """An ordered list of callbacks fired synchronously on :meth:`fire`."""

    def __init__(self, name: str):
        self.name = name
        self._subscribers: List[Callable[..., Any]] = []

    def subscribe(self, callback: Callable[..., Any]) -> Callable[..., Any]:
        """Register ``callback``; returns it so this can decorate."""
        self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: Callable[..., Any]) -> None:
        """Remove a previously registered callback.

        Raises ``ValueError`` if the callback was never subscribed, since
        that almost always indicates a wiring bug.
        """
        self._subscribers.remove(callback)

    def fire(self, *args: Any, **kwargs: Any) -> None:
        """Invoke every subscriber with the given arguments."""
        for callback in list(self._subscribers):
            callback(*args, **kwargs)

    def __len__(self) -> int:
        return len(self._subscribers)

    def __repr__(self) -> str:
        return f"EventHook({self.name}, {len(self)} subscribers)"
