"""Lightweight statistics counters shared by all simulated components.

Every hardware and software model owns a :class:`StatSet`; counters are
created lazily on first increment so the models stay uncluttered.  The
benchmark harness and tests read them to assert on event counts (e.g.
"how many MBM interrupts fired", "how many descriptor fetches did the
nested walk perform").

Hot-path components keep their most frequent counters as plain integer
attributes and register a ``flush_hook`` that folds the pending values
into the ``StatSet`` the moment anybody *reads* it.  Readers therefore
always see exact totals while the per-event cost on the owner's hot path
is a single integer add.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple


class StatSet:
    """A named bag of integer counters with a few convenience helpers."""

    __slots__ = ("name", "_counters", "flush_hook")

    def __init__(self, name: str):
        self.name = name
        self._counters: Dict[str, int] = {}
        #: Optional callable invoked before any read; owners use it to
        #: fold deferred (batched) increments into the counters.
        self.flush_hook: Optional[Callable[[], None]] = None

    def add(self, key: str, amount: int = 1) -> None:
        """Increment counter ``key`` by ``amount``."""
        counters = self._counters
        try:
            counters[key] += amount
        except KeyError:
            counters[key] = amount

    def _flush(self) -> None:
        hook = self.flush_hook
        if hook is not None:
            hook()

    def get(self, key: str) -> int:
        """Current value of ``key`` (0 if never incremented)."""
        self._flush()
        return self._counters.get(key, 0)

    def reset(self) -> None:
        """Zero every counter (including any deferred increments)."""
        self._flush()
        self._counters.clear()

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy of all counters."""
        self._flush()
        return dict(self._counters)

    def state_dict(self) -> Dict[str, int]:
        """Serializable counter state (deferred increments flushed)."""
        return self.snapshot()

    def load_state(self, state: Dict[str, int]) -> None:
        """Replace every counter with the serialized values.

        Owners with batched hot-path counters must zero their pending
        attributes separately; the flush hook stays installed.
        """
        self._counters = {str(k): int(v) for k, v in state.items()}

    def ratio(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator`` as a float, 0.0 when undefined."""
        denom = self.get(denominator)
        if denom == 0:
            return 0.0
        return self.get(numerator) / denom

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        self._flush()
        return iter(sorted(self._counters.items()))

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in self)
        return f"StatSet({self.name}: {body})"


def merge(*stat_sets: StatSet) -> Dict[str, int]:
    """Merge several stat sets into one dict, prefixing keys by set name."""
    merged: Dict[str, int] = {}
    for stats in stat_sets:
        for key, value in stats:
            merged[f"{stats.name}.{key}"] = value
    return merged
