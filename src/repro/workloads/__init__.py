"""Workloads: LMbench micro-operations and application models.

:mod:`repro.workloads.lmbench` drives the nine kernel operations of the
paper's Table 1; :mod:`repro.workloads.apps` models the five application
benchmarks (whetstone, dhrystone, untar, iozone, apache) used in
Figure 6 and Table 2.
"""

from repro.workloads.apps import (
    ApacheWorkload,
    ApplicationWorkload,
    DhrystoneWorkload,
    IozoneWorkload,
    UntarWorkload,
    WhetstoneWorkload,
    default_applications,
)
from repro.workloads.lmbench import LMBENCH_OPS, LmbenchSuite

__all__ = [
    "ApacheWorkload",
    "ApplicationWorkload",
    "DhrystoneWorkload",
    "IozoneWorkload",
    "LMBENCH_OPS",
    "LmbenchSuite",
    "UntarWorkload",
    "WhetstoneWorkload",
    "default_applications",
]
